"""StoreBackedView: lazy content loading for policy evaluation."""

import pytest

from repro.core.cache import CacheManager
from repro.core.store import ObjectStore, StoreBackedView, StoredMeta
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive


@pytest.fixture()
def store():
    cluster = DriveCluster(num_drives=1)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return ObjectStore(clients, b"s" * 32)


def _view(store, content=b"'fact'(42)", cache=None):
    meta = StoredMeta(key="obj")
    store.store_version(meta, content, policy_hash="ph")
    return StoreBackedView(meta, store, cache), meta


def test_metadata_served_without_content_reads(store):
    view, _meta = _view(store)
    drive_gets_before = store.clients[0].drive.stats.gets
    info = view.info(0)
    assert info.size == len(b"'fact'(42)")
    assert info.policy_hash == "ph"
    assert info.content_hash  # from metadata, no disk read
    assert store.clients[0].drive.stats.gets == drive_gets_before


def test_tuples_load_lazily_on_first_access(store):
    view, _meta = _view(store)
    info = view.info(0)
    drive_gets_before = store.clients[0].drive.stats.gets
    tuples = info.tuples
    assert tuples[0].name == "fact"
    assert store.clients[0].drive.stats.gets == drive_gets_before + 1
    # Second access reuses the parsed result.
    _ = info.tuples
    assert store.clients[0].drive.stats.gets == drive_gets_before + 1


def test_content_loads_through_object_cache(store):
    caches = CacheManager()
    view, _meta = _view(store, cache=caches)
    _ = view.info(0).tuples
    # §4.2: objects accessed during policy evaluation get cached.
    assert caches.get_object("obj@0") is not None
    # A second view never hits the drive.
    view2 = StoreBackedView(_meta, store, caches)
    drive_gets_before = store.clients[0].drive.stats.gets
    assert view2.info(0).tuples[0].name == "fact"
    assert store.clients[0].drive.stats.gets == drive_gets_before


def test_unknown_version_is_none(store):
    view, _meta = _view(store)
    assert view.info(99) is None


def test_current_version_tracks_meta(store):
    view, meta = _view(store)
    assert view.current_version == meta.current_version == 0
