"""Sharded front-end: routing, policy broadcast, transaction pinning."""

import pytest

from repro.core.controller import PesosController
from repro.core.request import Request
from repro.core.sharding import ShardedPesos
from repro.errors import ConfigurationError
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from tests.core.conftest import ALICE, BOB


def _controller():
    cluster = DriveCluster(num_drives=1)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(clients, storage_key=b"k" * 32)


@pytest.fixture()
def balancer():
    return ShardedPesos([_controller() for _ in range(3)])


def _keys_on_distinct_shards(balancer, count=2):
    """Find keys mapping to `count` different shards."""
    found = {}
    index = 0
    while len(found) < count:
        key = f"key-{index}"
        shard = balancer.shard_index(key)
        found.setdefault(shard, key)
        index += 1
    return list(found.values())


def test_needs_a_shard():
    with pytest.raises(ConfigurationError):
        ShardedPesos([])


def test_routing_is_deterministic(balancer):
    assert balancer.shard_index("k") == balancer.shard_index("k")


def test_put_get_through_balancer(balancer):
    put = balancer.handle(
        Request(method="put", key="obj", value=b"v"), ALICE
    )
    assert put.ok
    get = balancer.handle(Request(method="get", key="obj"), ALICE)
    assert get.value == b"v"
    # Only the owning shard stored it.
    owner = balancer.shard_for("obj")
    others = [s for s in balancer.shards if s is not owner]
    assert owner._get_meta("obj") is not None
    assert all(s._get_meta("obj") is None for s in others)


def test_keys_spread_across_shards(balancer):
    for index in range(60):
        balancer.handle(
            Request(method="put", key=f"k{index}", value=b"v"), ALICE
        )
    assert all(count > 0 for count in balancer.routed)


def test_policy_broadcast_and_enforcement(balancer):
    source = (
        f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')"
    )
    policy = balancer.handle(
        Request(method="put_policy", value=source.encode()), ALICE
    )
    assert policy.ok
    # The policy exists on every shard with the same id.
    keys = _keys_on_distinct_shards(balancer, 3)
    for key in keys:
        assert balancer.handle(
            Request(method="put", key=key, value=b"v",
                    policy_id=policy.policy_id),
            ALICE,
        ).ok
        denied = balancer.handle(Request(method="get", key=key), BOB)
        assert denied.status == 403


def test_bad_policy_broadcast_fails(balancer):
    response = balancer.handle(
        Request(method="put_policy", value=b"read :- ("), ALICE
    )
    assert response.status == 400


def test_async_status_routed_to_owning_shard(balancer):
    response = balancer.handle(
        Request(method="put", key="obj", value=b"v", asynchronous=True),
        ALICE,
    )
    assert response.status == 202
    status = balancer.handle(
        Request(method="status", operation_id=response.operation_id), ALICE
    )
    assert status.ok
    assert status.version == 0


def test_unknown_operation_id(balancer):
    response = balancer.handle(
        Request(method="status", operation_id="op-unknown"), ALICE
    )
    assert response.status == 410


def test_single_shard_transaction_commits(balancer):
    key_a, _key_b = _keys_on_distinct_shards(balancer)
    txid = balancer.handle(Request(method="create_tx"), ALICE).txid
    assert balancer.handle(
        Request(method="add_write", key=key_a, value=b"tx-value", txid=txid),
        ALICE,
    ).ok
    commit = balancer.handle(Request(method="commit_tx", txid=txid), ALICE)
    assert commit.ok
    assert commit.txid == txid  # public id preserved
    assert balancer.handle(
        Request(method="get", key=key_a), ALICE
    ).value == b"tx-value"


def test_cross_shard_transaction_rejected(balancer):
    key_a, key_b = _keys_on_distinct_shards(balancer)
    txid = balancer.handle(Request(method="create_tx"), ALICE).txid
    balancer.handle(
        Request(method="add_write", key=key_a, value=b"v", txid=txid), ALICE
    )
    rejected = balancer.handle(
        Request(method="add_write", key=key_b, value=b"v", txid=txid), ALICE
    )
    assert rejected.status == 409
    assert "cross-shard" in rejected.error


def test_unknown_txid(balancer):
    response = balancer.handle(
        Request(method="add_read", key="k", txid="tx-ghost"), ALICE
    )
    assert response.status == 409


def test_empty_transaction_commit(balancer):
    txid = balancer.handle(Request(method="create_tx"), ALICE).txid
    assert balancer.handle(
        Request(method="commit_tx", txid=txid), ALICE
    ).ok


def test_total_requests(balancer):
    balancer.handle(Request(method="put", key="k", value=b"v"), ALICE)
    balancer.handle(Request(method="get", key="k"), ALICE)
    assert balancer.total_requests() == 2


# -- per-shard admission ----------------------------------------------------

def test_per_shard_admission_throttles_only_the_hot_shard():
    from repro.core.admission import AdmissionConfig

    balancer = ShardedPesos(
        [_controller() for _ in range(3)],
        admission=AdmissionConfig(rate_per_second=0.001, burst=1.0),
    )
    hot, cold = _keys_on_distinct_shards(balancer, count=2)
    first = balancer.handle(
        Request(method="put", key=hot, value=b"v"), ALICE, now=0.0
    )
    assert first.ok
    limited = balancer.handle(
        Request(method="put", key=hot, value=b"v"), ALICE, now=0.0
    )
    assert limited.status == 429
    assert limited.retry_after is not None
    # The same client still has a full bucket on every other shard.
    other = balancer.handle(
        Request(method="put", key=cold, value=b"v"), ALICE, now=0.0
    )
    assert other.ok


def test_per_shard_admission_snapshot_and_seed_offsets():
    from repro.core.admission import AdmissionConfig

    balancer = ShardedPesos(
        [_controller() for _ in range(3)],
        admission=AdmissionConfig(seed=5),
    )
    assert balancer.admission is not None
    seeds = [ctrl.config.seed for ctrl in balancer.admission]
    assert seeds == [5, 6, 7]
    snapshots = balancer.admission_snapshot()
    assert len(snapshots) == 3
    assert all(s["admitted"] == 0 for s in snapshots)


def test_admission_off_by_default(balancer):
    assert balancer.admission is None
    assert balancer.admission_snapshot() == []
