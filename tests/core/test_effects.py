"""Effects recorder semantics."""

from repro.core.effects import DISK_READ, EffectsRecorder, NullRecorder


def test_record_and_drain():
    effects = EffectsRecorder()
    effects.record(DISK_READ, 0, 1024)
    effects.record("encrypt", 512)
    events = effects.drain()
    assert events == [(DISK_READ, 0, 1024), ("encrypt", 512)]
    assert effects.drain() == []  # drained


def test_totals_survive_drain():
    effects = EffectsRecorder()
    effects.record(DISK_READ, 0, 1)
    effects.drain()
    effects.record(DISK_READ, 1, 2)
    assert effects.totals[DISK_READ] == 2


def test_cache_hit_rate():
    effects = EffectsRecorder()
    effects.record_cache("policy", hit=True)
    effects.record_cache("policy", hit=True)
    effects.record_cache("policy", hit=False)
    assert effects.cache_hit_rate("policy") == 2 / 3
    assert effects.cache_hit_rate("unknown-region") == 0.0


def test_cache_events_tagged_by_region():
    effects = EffectsRecorder()
    effects.record_cache("object", hit=False)
    assert effects.drain() == [("cache_miss", "object")]


def test_null_recorder_is_silent():
    effects = NullRecorder()
    effects.record("anything", 1, 2)
    effects.record_cache("region", hit=True)
    assert effects.drain() == []
