"""Storage attestation and replica scrub/repair."""

import hashlib
import json

import pytest

from repro.core.controller import (
    ControllerConfig,
    PesosController,
    verify_attestation,
)
from repro.core.request import Request
from repro.core.store import placement
from repro.crypto.certs import CertificateAuthority
from repro.errors import IntegrityError, ObjectNotFound
from tests.core.conftest import ALICE, BOB


@pytest.fixture(scope="module")
def signing_keys():
    return CertificateAuthority("ctrl-ca", key_bits=512).issue_keypair(
        "controller", key_bits=512
    )


@pytest.fixture()
def attesting_controller(clients, signing_keys):
    return PesosController(
        clients, storage_key=b"k" * 32, signing_keys=signing_keys
    )


def test_attestation_roundtrip(attesting_controller, signing_keys):
    controller = attesting_controller
    controller.put(ALICE, "doc", b"important bytes")
    response = controller.handle(
        Request(method="attest", key="doc"), ALICE, now=123.0
    )
    assert response.ok
    signature = bytes.fromhex(response.extra["signature"])
    statement = verify_attestation(
        response.value, signature, signing_keys.public_key
    )
    assert statement["key"] == "doc"
    assert statement["version"] == 0
    assert statement["content_hash"] == hashlib.sha256(
        b"important bytes"
    ).hexdigest()
    assert statement["timestamp"] == 123.0


def test_attestation_covers_policy_binding(attesting_controller, signing_keys):
    controller = attesting_controller
    policy = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(K)\nupdate :- sessionKeyIs(k'{ALICE}')"
    )
    controller.put(ALICE, "doc", b"v", policy_id=policy.policy_id)
    response = controller.handle(Request(method="attest", key="doc"), ALICE)
    statement = json.loads(response.value)
    assert statement["policy_id"] == policy.policy_id
    assert statement["policy_hash"] == policy.policy_id  # hash == id


def test_forged_attestation_detected(attesting_controller, signing_keys):
    controller = attesting_controller
    controller.put(ALICE, "doc", b"v")
    response = controller.handle(Request(method="attest", key="doc"), ALICE)
    tampered = response.value.replace(b'"version":0', b'"version":7')
    with pytest.raises(IntegrityError):
        verify_attestation(
            tampered,
            bytes.fromhex(response.extra["signature"]),
            signing_keys.public_key,
        )


def test_attestation_respects_read_policy(attesting_controller):
    controller = attesting_controller
    policy = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')"
    )
    controller.put(ALICE, "private", b"v", policy_id=policy.policy_id)
    denied = controller.handle(Request(method="attest", key="private"), BOB)
    assert denied.status == 403


def test_attestation_missing_object(attesting_controller):
    response = attesting_controller.handle(
        Request(method="attest", key="ghost"), ALICE
    )
    assert response.status == 404


def test_attestation_requires_signing_key(controller):
    controller.put(ALICE, "doc", b"v")
    response = controller.handle(Request(method="attest", key="doc"), ALICE)
    assert response.status == 400


# ---------------------------------------------------------------------------
# Scrub and repair
# ---------------------------------------------------------------------------

@pytest.fixture()
def replicated(clients):
    return PesosController(
        clients,
        storage_key=b"k" * 32,
        config=ControllerConfig(replication_factor=2),
    )


def test_scrub_reports_healthy_replicas(replicated):
    replicated.put(ALICE, "obj", b"data")
    report = replicated.scrub_object("obj")
    assert len(report) == 2  # one version x two replicas
    assert all(status == "ok" for _v, _d, status in report)


def test_scrub_detects_missing_replica(replicated, cluster):
    replicated.put(ALICE, "obj", b"data")
    primary = placement("obj", 3, 2)[0]
    # Simulate data loss on the primary.
    drive = cluster.drive(primary)
    victim_keys = [k for k in list(drive._entries) if k.startswith(b"v/obj")]
    for key in victim_keys:
        del drive._entries[key]
        drive._sorted_keys.remove(key)
    statuses = {d: s for _v, d, s in replicated.scrub_object("obj")}
    assert statuses[primary] == "missing"


def test_scrub_detects_corruption(replicated, cluster):
    replicated.put(ALICE, "obj", b"data")
    primary = placement("obj", 3, 2)[0]
    drive = cluster.drive(primary)
    for key, entry in drive._entries.items():
        if key.startswith(b"v/obj"):
            entry.value = b"\x00" * len(entry.value)  # bit rot
    statuses = {d: s for _v, d, s in replicated.scrub_object("obj")}
    assert statuses[primary] == "corrupt"


def test_repair_restores_replica(replicated, cluster):
    replicated.put(ALICE, "obj", b"data")
    primary = placement("obj", 3, 2)[0]
    drive = cluster.drive(primary)
    for key, entry in drive._entries.items():
        if key.startswith(b"v/obj"):
            entry.value = b"\x00" * len(entry.value)
    assert replicated.repair_object("obj") == 1
    assert all(s == "ok" for _v, _d, s in replicated.scrub_object("obj"))


def test_scrub_offline_drive(replicated, cluster):
    replicated.put(ALICE, "obj", b"data")
    primary = placement("obj", 3, 2)[0]
    cluster.drive(primary).fail()
    statuses = {d: s for _v, d, s in replicated.scrub_object("obj")}
    assert statuses[primary] == "offline"


def test_scrub_missing_object_raises(replicated):
    with pytest.raises(ObjectNotFound):
        replicated.scrub_object("ghost")
