"""Transactions through the controller's request interface."""

import pytest

from repro.core.request import Request
from tests.core.conftest import ALICE, BOB


def _tx(controller, fingerprint):
    response = controller.handle(Request(method="create_tx"), fingerprint)
    assert response.ok
    return response.txid


def test_transactional_read_write(controller):
    controller.put(ALICE, "account-a", b"100")
    controller.put(ALICE, "account-b", b"50")
    txid = _tx(controller, ALICE)
    controller.handle(
        Request(method="add_read", key="account-a", txid=txid), ALICE
    )
    controller.handle(
        Request(method="add_write", key="account-a", value=b"75", txid=txid),
        ALICE,
    )
    controller.handle(
        Request(method="add_write", key="account-b", value=b"75", txid=txid),
        ALICE,
    )
    commit = controller.handle(Request(method="commit_tx", txid=txid), ALICE)
    assert commit.ok
    results = controller.handle(
        Request(method="tx_results", txid=txid), ALICE
    )
    assert results.ok
    assert b"read:account-a=100" in results.value  # read saw pre-tx value
    assert b"write:account-a=v1" in results.value
    assert controller.get(ALICE, "account-a").value == b"75"
    assert controller.get(ALICE, "account-b").value == b"75"


def test_transaction_isolated_to_session(controller):
    txid = _tx(controller, ALICE)
    response = controller.handle(
        Request(method="add_read", key="x", txid=txid), BOB
    )
    assert response.status == 409


def test_policy_denial_aborts_whole_transaction(controller):
    policy_id = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "guarded", b"v0", policy_id=policy_id)
    controller.put(ALICE, "free", b"v0")
    txid = _tx(controller, BOB)
    controller.handle(
        Request(method="add_write", key="free", value=b"bob", txid=txid), BOB
    )
    controller.handle(
        Request(method="add_write", key="guarded", value=b"bob", txid=txid),
        BOB,
    )
    commit = controller.handle(Request(method="commit_tx", txid=txid), BOB)
    assert commit.status == 409
    # Atomicity: the permitted write must not have been applied either.
    assert controller.get(ALICE, "free").value == b"v0"
    results = controller.handle(Request(method="tx_results", txid=txid), BOB)
    assert results.status == 409


def test_transactional_read_denied_aborts(controller):
    policy_id = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "secret", b"v", policy_id=policy_id)
    txid = _tx(controller, BOB)
    controller.handle(
        Request(method="add_read", key="secret", txid=txid), BOB
    )
    commit = controller.handle(Request(method="commit_tx", txid=txid), BOB)
    assert commit.status == 409


def test_abort_discards_writes(controller):
    controller.put(ALICE, "k", b"v0")
    txid = _tx(controller, ALICE)
    controller.handle(
        Request(method="add_write", key="k", value=b"v1", txid=txid), ALICE
    )
    assert controller.handle(
        Request(method="abort_tx", txid=txid), ALICE
    ).ok
    assert controller.get(ALICE, "k").value == b"v0"


def test_commit_unknown_tx(controller):
    response = controller.handle(
        Request(method="commit_tx", txid="tx-000099"), ALICE
    )
    assert response.status == 409


def test_transaction_creates_new_objects(controller):
    txid = _tx(controller, ALICE)
    controller.handle(
        Request(method="add_write", key="new-obj", value=b"fresh", txid=txid),
        ALICE,
    )
    assert controller.handle(
        Request(method="commit_tx", txid=txid), ALICE
    ).ok
    assert controller.get(ALICE, "new-obj").value == b"fresh"


def test_async_commit(controller):
    controller.put(ALICE, "k", b"v0")
    txid = _tx(controller, ALICE)
    controller.handle(
        Request(method="add_write", key="k", value=b"v1", txid=txid), ALICE
    )
    response = controller.handle(
        Request(method="commit_tx", txid=txid, asynchronous=True), ALICE
    )
    assert response.status == 202
    status = controller.handle(
        Request(method="status", operation_id=response.operation_id), ALICE
    )
    assert status.ok
    assert controller.get(ALICE, "k").value == b"v1"
