"""Controller integration: request handling, caching, async, errors."""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import Request
from tests.core.conftest import ALICE, BOB


def test_put_get_roundtrip(controller):
    put = controller.put(ALICE, "greeting", b"hello world")
    assert put.ok
    assert put.version == 0
    get = controller.get(ALICE, "greeting")
    assert get.value == b"hello world"
    assert get.version == 0


def test_get_missing_404(controller):
    response = controller.get(ALICE, "ghost")
    assert response.status == 404


def test_update_bumps_version(controller):
    controller.put(ALICE, "k", b"v0")
    response = controller.put(ALICE, "k", b"v1")
    assert response.version == 1
    assert controller.get(ALICE, "k").value == b"v1"


def test_read_old_version_with_history(controller):
    controller.put(ALICE, "k", b"v0")
    controller.put(ALICE, "k", b"v1")
    old = controller.get(ALICE, "k", version=0)
    assert old.value == b"v0"
    assert old.version == 0


def test_read_unknown_version_404(controller):
    controller.put(ALICE, "k", b"v0")
    assert controller.get(ALICE, "k", version=5).status == 404


def test_delete_removes_object(controller):
    controller.put(ALICE, "k", b"v")
    assert controller.delete(ALICE, "k").ok
    assert controller.get(ALICE, "k").status == 404


def test_delete_missing_404(controller):
    assert controller.delete(ALICE, "ghost").status == 404


def test_put_policy_returns_content_hash(controller):
    response = controller.put_policy(ALICE, "read :- sessionKeyIs(K)")
    assert response.ok
    assert len(response.policy_id) == 64
    same = controller.put_policy(ALICE, "read :- sessionKeyIs(K)")
    assert same.policy_id == response.policy_id


def test_put_policy_syntax_error_400(controller):
    response = controller.put_policy(ALICE, "read :- broken(")
    assert response.status == 400
    assert "expected" in response.error


def test_get_policy_roundtrip(controller):
    policy_id = controller.put_policy(ALICE, "read :- eq(1, 1)").policy_id
    response = controller.handle(
        Request(method="get_policy", policy_id=policy_id), ALICE
    )
    assert response.ok
    from repro.policy.binary import CompiledPolicy

    restored = CompiledPolicy.from_bytes(response.value)
    assert restored.policy_hash() == policy_id


def test_get_policy_missing_404(controller):
    response = controller.handle(
        Request(method="get_policy", policy_id="nope"), ALICE
    )
    assert response.status == 404


def test_put_with_unknown_policy_rejected(controller):
    response = controller.handle(
        Request(method="put", key="k", value=b"v", policy_id="unknown"), ALICE
    )
    assert response.status == 400


def test_policy_enforced_on_get(controller):
    policy_id = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    controller.put(ALICE, "private", b"secret", policy_id=policy_id)
    assert controller.get(ALICE, "private").ok
    denied = controller.get(BOB, "private")
    assert denied.status == 403
    assert "denies read" in denied.error


def test_policy_enforced_on_update(controller):
    policy_id = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}') \\/ sessionKeyIs(k'{BOB}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v0", policy_id=policy_id)
    assert controller.get(BOB, "doc").ok
    assert controller.put(BOB, "doc", b"evil").status == 403
    assert controller.put(ALICE, "doc", b"v1").ok


def test_policy_enforced_on_delete(controller):
    policy_id = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')\n"
        f"delete :- sessionKeyIs(k'fp-admin')",
    ).policy_id
    controller.put(ALICE, "doc", b"v", policy_id=policy_id)
    assert controller.delete(ALICE, "doc").status == 403
    assert controller.delete("fp-admin", "doc").ok


def test_object_without_policy_is_open(controller):
    controller.put(ALICE, "open", b"v")
    assert controller.get(BOB, "open").ok
    assert controller.put(BOB, "open", b"w").ok


def test_missing_permission_denies(controller):
    # Policy grants only read; update/delete must be denied.
    policy_id = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    # Creation is governed by the attached policy, which has no update
    # clause -> even the owner cannot create. Use enforcement order:
    response = controller.put(ALICE, "locked", b"v", policy_id=policy_id)
    assert response.status == 403


def test_policy_change_governed_by_current_policy(controller):
    open_policy = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    stricter = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    controller.put(ALICE, "doc", b"v", policy_id=open_policy)
    # Bob cannot swap the policy (current policy denies his update).
    assert (
        controller.put(BOB, "doc", b"v", policy_id=stricter).status == 403
    )
    # Alice can.
    assert controller.put(ALICE, "doc", b"v2", policy_id=stricter).ok
    # And afterwards even Alice cannot update (new policy has no update).
    assert controller.put(ALICE, "doc", b"v3").status == 403


def test_async_put_returns_operation_id(controller):
    response = controller.handle(
        Request(method="put", key="k", value=b"v", asynchronous=True), ALICE
    )
    assert response.status == 202
    assert response.operation_id
    status = controller.handle(
        Request(method="status", operation_id=response.operation_id), ALICE
    )
    assert status.ok
    assert status.version == 0
    assert controller.get(ALICE, "k").value == b"v"


def test_async_failure_visible_via_status(controller):
    policy_id = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    controller.put(ALICE, "k", b"v", policy_id=policy_id)
    response = controller.handle(
        Request(method="put", key="k", value=b"evil", asynchronous=True), BOB
    )
    assert response.status == 202
    status = controller.handle(
        Request(method="status", operation_id=response.operation_id), BOB
    )
    assert status.status == 403


def test_async_result_private_to_session(controller):
    response = controller.handle(
        Request(method="put", key="k", value=b"v", asynchronous=True), ALICE
    )
    other = controller.handle(
        Request(method="status", operation_id=response.operation_id), BOB
    )
    assert other.status == 410


def test_invalid_method_400(controller):
    assert controller.handle(Request(method="bogus"), ALICE).status == 400


def test_meta_cache_avoids_disk_reads(controller):
    controller.put(ALICE, "hot", b"v")
    controller.effects.totals.clear()
    for _ in range(5):
        controller.get(ALICE, "hot")
    # All five reads served from object + meta caches: no disk reads.
    assert controller.effects.totals.get("disk_read", 0) == 0


def test_object_cache_serves_policy_eval_objects(controller):
    # §4.2: objects fetched during policy evaluation get cached.
    log_policy = controller.put_policy(
        ALICE, "read :- objSays(this, V, 'ok'(1))\nupdate :- eq(1, 1)"
    ).policy_id
    controller.put(ALICE, "obj", b"'ok'(1)", policy_id=log_policy)
    controller.get(ALICE, "obj")
    hits_before = controller.caches.objects.stats.hits
    controller.get(ALICE, "obj")
    assert controller.caches.objects.stats.hits > hits_before


def test_sessions_created_per_fingerprint(controller):
    controller.put(ALICE, "a", b"1")
    controller.put(BOB, "b", b"2")
    assert len(controller.sessions) == 2


def test_enforcement_disabled_baseline(clients):
    config = ControllerConfig(enforce_policies=False)
    controller = PesosController(clients, storage_key=b"k" * 32, config=config)
    policy_id = controller.put_policy(
        ALICE, f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    controller.put(ALICE, "k", b"v", policy_id=policy_id)
    # Baseline build skips checks entirely.
    assert controller.get(BOB, "k").ok


def test_replication_factor_three(replicated_controller, cluster):
    replicated_controller.put(ALICE, "k", b"v")
    for drive in cluster:
        assert drive.key_count == 2  # meta + value everywhere


def test_read_fails_over_on_drive_failure(replicated_controller, cluster):
    replicated_controller.put(ALICE, "k", b"v")
    cluster.drive(0).fail()
    cluster.drive(1).fail()
    # Cache cleared to force a disk read.
    replicated_controller.caches.objects.clear()
    replicated_controller.caches.keys.clear()
    assert replicated_controller.get(ALICE, "k").value == b"v"
