"""VLL transaction manager semantics."""

import pytest

from repro.core.txn import ABORTED, COMMITTED, QUEUED, Transaction, VllManager
from repro.errors import TransactionError


def _manager(executor=None):
    return VllManager(executor or (lambda tx: {"ok": True}))


def test_create_and_get():
    mgr = _manager()
    tx = mgr.create("fp")
    assert mgr.get(tx.txid, "fp") is tx


def test_get_enforces_ownership():
    mgr = _manager()
    tx = mgr.create("fp")
    with pytest.raises(TransactionError):
        mgr.get(tx.txid, "other")


def test_unknown_txid():
    with pytest.raises(TransactionError):
        _manager().get("tx-999999", "fp")


def test_uncontended_commit_executes_immediately():
    seen = []
    mgr = _manager(lambda tx: seen.append(tx.txid) or {"done": 1})
    tx = mgr.create("fp")
    tx.add_read("a")
    tx.add_write("b", b"v")
    mgr.commit(tx)
    assert tx.state == COMMITTED
    assert seen == [tx.txid]
    assert mgr.executed_immediately == 1
    assert mgr.locked_keys() == set()


def test_keys_deduplicated_and_ordered():
    tx = Transaction(txid="t", fingerprint="fp")
    tx.add_read("a")
    tx.add_read("a")
    tx.add_write("a", b"v")
    tx.add_write("b", b"v")
    assert tx.keys() == ["a", "b"]


def test_ops_rejected_after_commit():
    mgr = _manager()
    tx = mgr.create("fp")
    mgr.commit(tx)
    with pytest.raises(TransactionError):
        tx.add_read("x")
    with pytest.raises(TransactionError):
        mgr.commit(tx)


def test_abort_open_transaction():
    mgr = _manager()
    tx = mgr.create("fp")
    tx.add_write("a", b"v")
    mgr.abort(tx)
    assert tx.state == ABORTED
    assert mgr.locked_keys() == set()


def test_abort_committed_rejected():
    mgr = _manager()
    tx = mgr.create("fp")
    mgr.commit(tx)
    with pytest.raises(TransactionError):
        mgr.abort(tx)


def test_executor_abort_rolls_back():
    def failing(tx):
        raise TransactionError("policy denied inside txn")

    mgr = _manager(failing)
    tx = mgr.create("fp")
    tx.add_write("a", b"v")
    mgr.commit(tx)
    assert tx.state == ABORTED
    assert "policy denied" in tx.error
    assert mgr.locked_keys() == set()
    assert mgr.aborted == 1


def test_contended_commit_queues_then_runs():
    """While tx A executes, B commits on overlapping keys and queues."""
    mgr_holder = {}
    order = []

    def executor(tx):
        order.append(tx.txid)
        if tx.txid == "tx-000001":
            # Re-entrant commit while A holds the lock on "shared".
            b = mgr_holder["mgr"].get("tx-000002", "fp")
            mgr_holder["mgr"].commit(b)
            assert b.state == QUEUED  # blocked on A's lock
        return {"ok": tx.txid}

    mgr = VllManager(executor)
    mgr_holder["mgr"] = mgr
    a = mgr.create("fp")
    a.add_write("shared", b"va")
    b = mgr.create("fp")
    b.add_write("shared", b"vb")
    mgr.commit(a)
    assert a.state == COMMITTED
    assert b.state == COMMITTED  # drained from the queue after A
    assert order == [a.txid, b.txid]
    assert mgr.executed_from_queue == 1
    assert mgr.locked_keys() == set()


def test_queued_transaction_can_abort():
    def executor(tx):
        if tx.txid == "tx-000001":
            mgr2 = holder["mgr"]
            queued = mgr2.get("tx-000002", "fp")
            mgr2.commit(queued)
            mgr2.abort(queued)
        return {}

    holder = {}
    mgr = VllManager(executor)
    holder["mgr"] = mgr
    a = mgr.create("fp")
    a.add_write("k", b"v")
    b = mgr.create("fp")
    b.add_write("k", b"v")
    mgr.commit(a)
    assert b.state == ABORTED
    assert mgr.locked_keys() == set()


def test_disjoint_transactions_do_not_queue():
    mgr = _manager()
    a = mgr.create("fp")
    a.add_write("x", b"v")
    b = mgr.create("fp")
    b.add_write("y", b"v")
    mgr.commit(a)
    mgr.commit(b)
    assert mgr.executed_immediately == 2
    assert mgr.executed_from_queue == 0
