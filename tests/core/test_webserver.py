"""Web server layer: HTTP front-end and TLS sessions."""

import pytest

from repro.core.request import Request, build_http_request, parse_http_response
from repro.core.webserver import WebServer
from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.errors import CertificateError, PesosError
from tests.core.conftest import ALICE


@pytest.fixture()
def server(controller):
    return WebServer(controller)


def _http(request):
    return build_http_request(request)


def test_http_put_get_roundtrip(server):
    put_raw = server.handle_bytes(
        _http(Request(method="put", key="k", value=b"v")), ALICE
    )
    assert parse_http_response(put_raw).status == 200
    get_raw = server.handle_bytes(
        _http(Request(method="get", key="k")), ALICE
    )
    response = parse_http_response(get_raw)
    assert response.status == 200
    assert response.value == b"v"


def test_http_malformed_request_is_400(server):
    response = parse_http_response(
        server.handle_bytes(b"GET / HTTP/1.1\r\n\r\n", ALICE)
    )
    assert response.status == 400
    assert server.stats.errors == 1


def test_http_policy_denial_maps_to_403(server, controller):
    policy = controller.put_policy(ALICE, f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')")
    server.handle_bytes(
        _http(Request(method="put", key="k", value=b"v",
                      policy_id=policy.policy_id)),
        ALICE,
    )
    raw = server.handle_bytes(_http(Request(method="get", key="k")), "fp-eve")
    assert parse_http_response(raw).status == 403


def test_stats_accumulate(server):
    server.handle_bytes(_http(Request(method="put", key="k", value=b"v")), ALICE)
    assert server.stats.requests == 1
    assert server.stats.bytes_in > 0
    assert server.stats.bytes_out > 0


@pytest.fixture()
def tls_server(controller):
    ca = CertificateAuthority("pesos-ca", key_bits=512)
    trust = TrustStore()
    trust.add(ca)
    server_keys = ca.issue_keypair("pesos-controller", key_bits=512)
    return (
        WebServer(controller, server_keys=server_keys, client_trust=trust),
        ca,
    )


def test_tls_session_roundtrip(tls_server):
    server, ca = tls_server
    alice_keys = ca.issue_keypair("alice", key_bits=512)
    connection, client_channel = server.accept(alice_keys)
    assert connection.fingerprint == alice_keys.fingerprint()

    record = client_channel.send(
        _http(Request(method="put", key="doc", value=b"secret"))
    )
    reply = connection.serve(record)
    response = parse_http_response(client_channel.recv(reply))
    assert response.status == 200
    assert connection.requests_served == 1


def test_tls_session_identity_feeds_policies(tls_server):
    server, ca = tls_server
    alice_keys = ca.issue_keypair("alice2", key_bits=512)
    mallory_keys = ca.issue_keypair("mallory", key_bits=512)
    alice_conn, alice_chan = server.accept(alice_keys)
    mallory_conn, mallory_chan = server.accept(mallory_keys)

    policy = server.controller.put_policy(
        alice_keys.fingerprint(),
        f"read :- sessionKeyIs(k'{alice_keys.fingerprint()}')\n"
        f"update :- sessionKeyIs(k'{alice_keys.fingerprint()}')",
    )
    record = alice_chan.send(
        _http(Request(method="put", key="doc", value=b"secret",
                      policy_id=policy.policy_id))
    )
    alice_chan.recv(alice_conn.serve(record))

    # Mallory's TLS identity is hers; the policy denies her.
    record = mallory_chan.send(_http(Request(method="get", key="doc")))
    response = parse_http_response(
        mallory_chan.recv(mallory_conn.serve(record))
    )
    assert response.status == 403


def test_untrusted_client_cannot_connect(tls_server):
    server, _ca = tls_server
    rogue_ca = CertificateAuthority("rogue", key_bits=512)
    rogue_keys = rogue_ca.issue_keypair("rogue-client", key_bits=512)
    with pytest.raises(CertificateError):
        server.accept(rogue_keys)


def test_tls_requires_configuration(server):
    ca = CertificateAuthority("x", key_bits=512)
    with pytest.raises(PesosError, match="no TLS identity"):
        server.accept(ca.issue_keypair("c", key_bits=512))
