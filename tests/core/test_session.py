"""Session lifecycle: create, resume, expire, evict."""

import pytest

from repro.core.session import SESSION_SOFT_BYTES, SessionManager
from repro.errors import SessionError


def test_connect_creates_session():
    mgr = SessionManager()
    session = mgr.connect("fp-1", now=0.0)
    assert session.fingerprint == "fp-1"
    assert mgr.created == 1
    assert len(mgr) == 1


def test_reconnect_resumes_live_session():
    mgr = SessionManager(expiry_seconds=100)
    first = mgr.connect("fp-1", now=0.0)
    first.operations.append("op-1")
    again = mgr.connect("fp-1", now=50.0)
    assert again is first
    assert again.operations == ["op-1"]
    assert mgr.resumed == 1


def test_expired_session_replaced():
    mgr = SessionManager(expiry_seconds=100)
    first = mgr.connect("fp-1", now=0.0)
    later = mgr.connect("fp-1", now=500.0)
    assert later is not first
    assert mgr.expired == 1


def test_lookup_requires_existing():
    mgr = SessionManager()
    with pytest.raises(SessionError):
        mgr.lookup("nobody", now=0.0)


def test_lookup_expired_raises():
    mgr = SessionManager(expiry_seconds=10)
    mgr.connect("fp-1", now=0.0)
    with pytest.raises(SessionError):
        mgr.lookup("fp-1", now=100.0)


def test_empty_fingerprint_rejected():
    with pytest.raises(SessionError):
        SessionManager().connect("", now=0.0)


def test_touch_tracks_activity():
    mgr = SessionManager()
    session = mgr.connect("fp-1", now=0.0)
    session.touch(5.0)
    session.touch(9.0)
    assert session.last_active == 9.0
    assert session.requests_handled == 2


def test_nonce_refresh_changes_value():
    mgr = SessionManager()
    session = mgr.connect("fp-1", now=0.0)
    old = session.nonce
    assert session.refresh_nonce() != old


def test_expire_idle_sweep():
    mgr = SessionManager(expiry_seconds=10)
    mgr.connect("a", now=0.0)
    mgr.connect("b", now=8.0)
    assert mgr.expire_idle(now=15.0) == 1
    assert len(mgr) == 1


def test_max_sessions_evicts_oldest():
    mgr = SessionManager(max_sessions=2)
    mgr.connect("a", now=0.0)
    mgr.connect("b", now=1.0)
    mgr.connect("c", now=2.0)
    assert len(mgr) == 2
    with pytest.raises(SessionError):
        mgr.lookup("a", now=2.0)


def test_memory_accounting():
    mgr = SessionManager()
    mgr.connect("a", now=0.0)
    mgr.connect("b", now=0.0)
    assert mgr.memory_in_use() == 2 * SESSION_SOFT_BYTES
