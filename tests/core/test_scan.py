"""Range scans (GETKEYRANGE) and read-modify-write through the stack."""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import (
    Request,
    Response,
    build_http_request,
    parse_http_request,
    parse_http_response,
    render_http_response,
)
from repro.errors import RequestError
from tests.core.conftest import ALICE, BOB, make_clients


def _load(controller, count=12, prefix="obj"):
    keys = [f"{prefix}{i:04d}" for i in range(count)]
    for key in keys:
        assert controller.put(ALICE, key, f"v-{key}".encode()).ok
    return keys


def _scan(controller, fingerprint, start, count):
    return controller.handle(
        Request(method="scan", key=start, scan_count=count), fingerprint
    )


def _lines(response):
    return response.value.decode().splitlines() if response.value else []


def test_scan_returns_sorted_range_with_versions(controller):
    keys = _load(controller)
    response = _scan(controller, ALICE, keys[0], 5)
    assert response.ok
    lines = _lines(response)
    assert len(lines) == 5
    returned = [line.split("@")[0] for line in lines]
    assert returned == sorted(returned) == keys[:5]
    assert all(line.endswith("@0") for line in lines)


def test_scan_starts_mid_keyspace(controller):
    keys = _load(controller)
    response = _scan(controller, ALICE, keys[4], 4)
    assert [line.split("@")[0] for line in _lines(response)] == keys[4:8]


def test_scan_merges_across_all_drives(controller):
    """Keys are placement-hashed across drives; a logical range scan
    must union every drive's metadata range, not just one replica's."""
    keys = _load(controller, count=24)
    response = _scan(controller, ALICE, keys[0], 24)
    assert [line.split("@")[0] for line in _lines(response)] == keys


def test_scan_count_is_clamped_not_refused():
    clients, _cluster = make_clients()
    controller = PesosController(
        clients,
        storage_key=b"k" * 32,
        config=ControllerConfig(max_scan_count=4),
    )
    keys = _load(controller)
    response = _scan(controller, ALICE, keys[0], 100)
    assert response.ok
    assert len(_lines(response)) == 4


def test_scan_requires_positive_count(controller):
    with pytest.raises(RequestError):
        Request(method="scan", key="a", scan_count=0).validate()


def test_scan_skips_policy_denied_records(controller):
    """A scan over mixed-policy records returns what the caller may
    read and counts the rest, instead of failing the whole range."""
    policy = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    open_keys = _load(controller, count=4, prefix="open")
    for i in range(4):
        assert controller.put(
            ALICE, f"priv{i:04d}", b"secret", policy_id=policy
        ).ok
    response = _scan(controller, BOB, "open0000", 8)
    assert response.ok
    returned = [line.split("@")[0] for line in _lines(response)]
    assert returned == open_keys
    assert response.extra["denied"] == 4
    alice_view = _scan(controller, ALICE, "open0000", 8)
    assert len(_lines(alice_view)) == 8


def test_scan_http_framing_roundtrip():
    request = Request(method="scan", key="user000001", scan_count=25)
    parsed = parse_http_request(build_http_request(request))
    assert parsed.method == "scan"
    assert parsed.key == "user000001"
    assert parsed.scan_count == 25


def test_scan_response_extras_survive_http():
    response = Response(
        status=200,
        value=b"a@0\nb@1\n",
        extra={"scanned": 2, "denied": 0, "read_version": 7},
    )
    parsed = parse_http_response(render_http_response(response))
    assert parsed.extra["scanned"] == 2
    assert parsed.extra["denied"] == 0
    assert parsed.extra["read_version"] == 7
    assert parsed.value == response.value


def test_rmw_reads_then_writes_atomically(controller):
    controller.put(ALICE, "counter", b"1")
    response = controller.handle(
        Request(method="rmw", key="counter", value=b"2"), ALICE
    )
    assert response.ok
    assert response.version == 1  # the write bumped the version
    assert response.extra["read_version"] == 0  # ...after reading v0
    assert controller.get(ALICE, "counter").value == b"2"


def test_rmw_missing_key_404(controller):
    response = controller.handle(
        Request(method="rmw", key="ghost", value=b"x"), ALICE
    )
    assert response.status == 404


def test_rmw_respects_write_policy(controller):
    policy = controller.put_policy(
        ALICE, f"read :- eq(1, 1)\nupdate :- sessionKeyIs(k'{ALICE}')"
    ).policy_id
    controller.put(ALICE, "locked", b"v0", policy_id=policy)
    denied = controller.handle(
        Request(method="rmw", key="locked", value=b"v1"), BOB
    )
    assert denied.status == 403
    assert controller.get(ALICE, "locked").value == b"v0"
    allowed = controller.handle(
        Request(method="rmw", key="locked", value=b"v1"), ALICE
    )
    assert allowed.ok


def test_scan_observes_rmw_version_bumps(controller):
    keys = _load(controller, count=3)
    controller.handle(
        Request(method="rmw", key=keys[1], value=b"new"), ALICE
    )
    lines = _lines(_scan(controller, ALICE, keys[0], 3))
    by_key = dict(line.split("@") for line in lines)
    assert by_key[keys[0]] == "0"
    assert by_key[keys[1]] == "1"


def test_scan_replicated_store_deduplicates(replicated_controller):
    """With replication factor 3 every drive holds every key: the scan
    must still return each key exactly once."""
    keys = _load(replicated_controller, count=6)
    lines = _lines(_scan(replicated_controller, ALICE, keys[0], 12))
    returned = [line.split("@")[0] for line in lines]
    assert returned == keys
