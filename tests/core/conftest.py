"""Shared controller fixtures."""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.kinetic.client import KineticClient
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

ALICE = "fp-alice"
BOB = "fp-bob"
ADMIN = "fp-admin"


def make_clients(num_drives=3):
    cluster = DriveCluster(num_drives=num_drives)
    return (
        cluster.connect_all(KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY),
        cluster,
    )


@pytest.fixture()
def cluster():
    return DriveCluster(num_drives=3)


@pytest.fixture()
def clients(cluster):
    return cluster.connect_all(KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY)


@pytest.fixture()
def controller(clients):
    return PesosController(clients, storage_key=b"k" * 32)


@pytest.fixture()
def replicated_controller(clients):
    config = ControllerConfig(replication_factor=3)
    return PesosController(clients, storage_key=b"k" * 32, config=config)
