"""Cache manager regions and effect reporting."""

from repro.core.cache import CacheConfig, CacheManager
from repro.core.effects import EffectsRecorder
from repro.core.store import StoredMeta
from repro.policy.compiler import compile_policy


def _policy(fp="x"):
    return compile_policy(f"read :- sessionKeyIs(k'{fp}')")


def test_policy_region_roundtrip():
    caches = CacheManager()
    policy = _policy()
    caches.put_policy("id1", policy)
    assert caches.get_policy("id1") is policy
    assert caches.get_policy("missing") is None


def test_object_region_roundtrip():
    caches = CacheManager()
    caches.put_object("k@0", b"value")
    assert caches.get_object("k@0") == b"value"
    caches.invalidate_object("k@0")
    assert caches.get_object("k@0") is None


def test_meta_region_roundtrip():
    caches = CacheManager()
    meta = StoredMeta(key="k")
    caches.put_meta("k", meta)
    assert caches.get_meta("k") is meta
    caches.invalidate_meta("k")
    assert caches.get_meta("k") is None


def test_effects_reported():
    effects = EffectsRecorder()
    caches = CacheManager(effects=effects)
    caches.get_policy("missing")
    caches.put_policy("p", _policy())
    caches.get_policy("p")
    assert effects.cache_hit_rate("policy") == 0.5


def test_policy_entry_cap():
    config = CacheConfig(policy_entries=2)
    caches = CacheManager(config)
    for index in range(4):
        caches.put_policy(f"p{index}", _policy(str(index)))
    assert len(caches.policies) == 2


def test_object_byte_budget_enforced():
    config = CacheConfig(object_bytes=1024)
    caches = CacheManager(config)
    for index in range(10):
        caches.put_object(f"k{index}", b"x" * 300)
    assert caches.objects.total_weight <= 1024


def test_memory_in_use_sums_regions():
    caches = CacheManager()
    caches.put_object("k", b"x" * 100)
    policy = _policy()
    caches.put_policy("p", policy)
    assert caches.memory_in_use() == 100 + policy.size_bytes() + 0


def test_region_stats_exposed():
    caches = CacheManager()
    caches.get_object("missing")
    stats = caches.region_stats()
    assert stats["object"].misses == 1
