"""Unit tests for rollback/fork protection (:mod:`repro.core.freshness`).

Covers the Merkle layer (membership/absence proofs, tamper rejection),
the epoch-keyed proof cache, the write-ahead pin protocol, counter
sealing across enclave restarts, every bootstrap fork-detection path,
and the operator surfaces (health, metrics, audit chain).
"""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.core.freshness import (
    FreshnessAuthority,
    FreshnessEnvironment,
    FreshnessProof,
    MerkleTree,
    ProofCache,
    object_label,
    policy_label,
    record_digest,
)
from repro.core.store import ObjectStore, StoredMeta
from repro.errors import ForkDetected, FreshnessError, StaleReplica
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.telemetry import Telemetry, render_prometheus

FP = "fp-freshness"

OPEN_POLICY = "read :- sessionKeyIs(K)\nupdate :- sessionKeyIs(K)"


def _store(num_drives=3, replication=2, **kwargs):
    cluster = DriveCluster(num_drives=num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    store = ObjectStore(
        clients, b"f" * 32, replication_factor=replication, **kwargs
    )
    return store, cluster


def _verified_store(env=None, **kwargs):
    """A store with a bootstrapped freshness authority attached."""
    store, cluster = _store(**kwargs)
    env = env or FreshnessEnvironment.ephemeral()
    authority = FreshnessAuthority(env)
    authority.bootstrap(store)
    assert not authority.forked
    store.freshness = authority
    return store, cluster, authority, env


def _fleet_state(cluster):
    """Deep-copy every drive's at-rest state (an adversary snapshot)."""
    snapshot = []
    for drive in cluster.drives:
        snapshot.append(
            (
                {
                    key: (entry.value, entry.version)
                    for key, entry in drive._entries.items()
                },
                list(drive._sorted_keys),
                drive._used_bytes,
            )
        )
    return snapshot


def _restore_fleet(cluster, snapshot):
    """Silently roll every drive back to a captured state."""
    from repro.kinetic.drive import _Entry

    for drive, (entries, sorted_keys, used_bytes) in zip(
        cluster.drives, snapshot
    ):
        drive._entries = {
            key: _Entry(value=value, version=version)
            for key, (value, version) in entries.items()
        }
        drive._sorted_keys = list(sorted_keys)
        drive._used_bytes = used_bytes


# -- Merkle tree proofs ----------------------------------------------------


def test_membership_proof_roundtrip():
    tree = MerkleTree()
    digests = {}
    for index in range(40):
        label = object_label(f"key-{index}")
        digest = record_digest(f"record-{index}".encode())
        tree.set(label, digest)
        digests[label] = digest
    for label, digest in digests.items():
        proof = tree.prove(label)
        assert tree.verify(tree.root, proof) == digest


def test_absence_proof_roundtrip():
    tree = MerkleTree()
    for index in range(10):
        tree.set(object_label(f"key-{index}"), record_digest(b"x"))
    proof = tree.prove(object_label("never-written"))
    assert tree.verify(tree.root, proof) is None


def test_tampered_proof_is_rejected():
    tree = MerkleTree()
    tree.set(object_label("a"), record_digest(b"one"))
    tree.set(object_label("b"), record_digest(b"two"))
    proof = tree.prove(object_label("a"))
    forged = FreshnessProof(
        label=proof.label,
        slot=proof.slot,
        items=tuple(
            (name, record_digest(b"EVIL")) for name, _d in proof.items
        ),
        siblings=proof.siblings,
    )
    with pytest.raises(FreshnessError):
        tree.verify(tree.root, forged)


def test_proof_for_wrong_slot_is_rejected():
    tree = MerkleTree()
    tree.set(object_label("a"), record_digest(b"one"))
    proof = tree.prove(object_label("a"))
    mislabeled = FreshnessProof(
        label=object_label("b"),  # slot no longer matches the label
        slot=proof.slot,
        items=proof.items,
        siblings=proof.siblings,
    )
    with pytest.raises(FreshnessError):
        tree.verify(tree.root, mislabeled)


def test_delete_restores_previous_root():
    tree = MerkleTree()
    tree.set(object_label("a"), record_digest(b"one"))
    root_before = tree.root
    tree.set(object_label("b"), record_digest(b"two"))
    assert tree.root != root_before
    tree.set(object_label("b"), None)
    assert tree.root == root_before
    assert len(tree) == 1


# -- proof cache -----------------------------------------------------------


def test_proof_cache_is_invalidated_by_epoch_advance():
    cache = ProofCache()
    cache.put(7, "o/key", "digest")
    assert cache.get(7, "o/key") == (True, "digest")
    # A pin advance bumps the epoch; the old entry must not serve.
    assert cache.get(8, "o/key") == (False, None)
    assert cache.hits == 1 and cache.misses == 1


def test_proof_cache_overflow_clears_deterministically():
    cache = ProofCache(capacity=2)
    cache.put(1, "a", "d1")
    cache.put(1, "b", "d2")
    cache.put(1, "c", "d3")  # over capacity: whole map dropped first
    assert len(cache) == 1
    assert cache.get(1, "a") == (False, None)
    assert cache.get(1, "c") == (True, "d3")


def test_put_policy_invalidates_warm_proof_cache():
    store, _cluster, authority, _env = _verified_store()
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"payload", "")
    store.read_meta("obj")  # miss: verifies one proof, warms the cache
    hits_before = authority.cache.hits
    store.read_meta("obj")
    assert authority.cache.hits == hits_before + 1
    # A policy write pins a new root (epoch advance): every cached
    # proof — object entries included — is stale and must re-verify.
    store.write_policy("pol-x", b"policy-blob")
    misses_before = authority.cache.misses
    store.read_meta("obj")
    assert authority.cache.misses == misses_before + 1


# -- pin protocol ----------------------------------------------------------


def test_prepare_settle_advances_counter_twice():
    _store_, _cluster, authority, env = _verified_store()
    epoch0 = authority.epoch
    label = object_label("obj")
    authority.prepare(label, "d" * 64)
    assert env.counter.read() == epoch0 + 1
    assert label in authority.pending
    authority.settle(label)
    assert env.counter.read() == epoch0 + 2
    assert not authority.pending
    assert authority.tree.get(label) == "d" * 64


def test_abort_reverts_leaf_but_keeps_pending():
    _store_, _cluster, authority, _env = _verified_store()
    label = object_label("obj")
    authority.prepare(label, "a" * 64)
    authority.settle(label)
    root_before = authority.root
    authority.prepare(label, "b" * 64)
    authority.abort(label)
    # The leaf is reverted (the quorum never took the write)...
    assert authority.tree.get(label) == "a" * 64
    assert authority.root == root_before
    # ...but the pending entry survives: a minority replica may hold
    # the new record, and reads must accept either side.
    expected, allowed = authority.acceptable(label)
    assert expected == "a" * 64
    assert allowed == {"a" * 64, "b" * 64}


def test_every_pin_seals_fresh_counter_state():
    _store_, _cluster, authority, env = _verified_store()
    saves_before = env.pin_store.saves
    authority.prepare(object_label("k"), "c" * 64)
    authority.settle(object_label("k"))
    assert env.pin_store.saves == saves_before + 2
    assert authority.seals == authority.pins


# -- bootstrap and fork detection ------------------------------------------


def test_counter_sealing_survives_enclave_restart():
    store, _cluster, authority, env = _verified_store()
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v1", "")
    store.write_policy("pol-1", b"blob")
    root = authority.root
    # Same trusted hardware, new controller process: the sealed pin
    # unseals, matches the hardware counter, and the rebuilt tree
    # reproduces the pinned root.
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert not restarted.forked and restarted.active
    assert restarted.root == root
    assert restarted.epoch == env.counter.read()


def test_trust_on_first_use_adopts_existing_fleet():
    store, _cluster = _store()
    meta = StoredMeta(key="pre-existing")
    store.store_version(meta, b"v1", "")
    store.write_policy("pol-1", b"blob")
    authority = FreshnessAuthority(FreshnessEnvironment.ephemeral())
    authority.bootstrap(store)
    assert not authority.forked and authority.active
    assert len(authority.tree) == 2
    assert authority.tree.get(object_label("pre-existing")) is not None
    assert authority.tree.get(policy_label("pol-1")) is not None


def test_destroyed_pin_storage_is_a_fork():
    store, _cluster, _authority, env = _verified_store()
    store.store_version(StoredMeta(key="obj"), b"v1", "")
    env.pin_store.blob = None  # host deleted the sealed state
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert restarted.forked
    assert "counter" in restarted.fork_reason


def test_replayed_stale_pin_blob_is_a_fork():
    store, _cluster, _authority, env = _verified_store()
    store.store_version(StoredMeta(key="obj"), b"v1", "")
    stale_blob = env.pin_store.blob
    store.store_version(StoredMeta(key="obj2"), b"v2", "")
    env.pin_store.blob = stale_blob  # host replayed an old seal
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert restarted.forked
    assert "stale sealed" in restarted.fork_reason


def test_foreign_seal_is_a_fork():
    store, _cluster, _authority, env = _verified_store()
    env.pin_store.blob = b"not-a-seal-at-all"
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert restarted.forked
    assert "unseal" in restarted.fork_reason


def test_rolled_back_fleet_is_a_fork():
    store, cluster, _authority, env = _verified_store()
    store.store_version(StoredMeta(key="obj"), b"v1", "")
    old_fleet = _fleet_state(cluster)
    store.store_version(StoredMeta(key="obj"), b"v2", "")
    store.write_policy("pol-1", b"blob")
    _restore_fleet(cluster, old_fleet)  # cloud restored an old image
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert restarted.forked
    assert "never pinned" in restarted.fork_reason


def test_crashed_prepare_resolves_without_fork():
    """A pin whose drive write never landed is not a fork.

    The pending journal sealed with the pin lets bootstrap prove the
    divergence is exactly the unsettled mutation, adopt what the
    drives actually hold, and re-pin.
    """
    store, _cluster, authority, env = _verified_store()
    store.store_version(StoredMeta(key="obj"), b"v1", "")
    # Simulate a crash between prepare and the drive write: the tree
    # and seal carry the new leaf, the fleet still holds the old one.
    authority.prepare(object_label("obj2"), "e" * 64)
    store.freshness = None
    restarted = FreshnessAuthority(env)
    restarted.bootstrap(store)
    assert not restarted.forked and restarted.active
    # The phantom label was adopted as the drives prove it: absent.
    assert restarted.tree.get(object_label("obj2")) is None


# -- verified reads --------------------------------------------------------


def test_proven_absence_answers_without_drive_io():
    store, _cluster, _authority, _env = _verified_store()
    store.store_version(StoredMeta(key="exists"), b"v", "")
    sent_before = [client.requests_sent for client in store.clients]
    assert store.read_meta("never-written") is None
    assert [c.requests_sent for c in store.clients] == sent_before


def test_uniformly_stale_replicas_raise_stale_replica():
    store, cluster, authority, _env = _verified_store(replication=3)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v1", "")
    old_fleet = _fleet_state(cluster)
    store.store_version(meta, b"v2", "")
    _restore_fleet(cluster, old_fleet)  # every replica rolled back
    with pytest.raises(StaleReplica):
        store.read_meta("obj")
    assert authority.stale_rejected >= 1


def test_minority_stale_replica_is_outvoted_and_reseeded():
    store, cluster, authority, _env = _verified_store(replication=3)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v1", "")
    old_fleet = _fleet_state(cluster)
    store.store_version(meta, b"v2", "")
    _restore_fleet(cluster, old_fleet[:1])  # only drive 0 rolls back
    read = store.read_meta("obj")
    assert read is not None
    assert read.current_version == meta.current_version
    # The stale replica was re-seeded inline: a scrub is clean and a
    # second read hits no stale copy.
    rejected = authority.stale_rejected
    assert store.read_meta("obj").current_version == meta.current_version
    assert authority.stale_rejected == rejected


# -- anti-entropy ----------------------------------------------------------


def test_policy_repair_refuses_content_address_mismatch():
    from repro.core.antientropy import KIND_POLICY, AntiEntropyRepairer
    from repro.policy.compiler import compile_source

    store, _cluster = _store()
    blob = compile_source(OPEN_POLICY).to_bytes()
    # A valid compiled policy stored under a *different* id: exactly
    # what a rollback adversary would feed the repairer.
    store.write_policy("wrong-id", blob)
    store.journal.mark(KIND_POLICY, "wrong-id")
    repairer = AntiEntropyRepairer(store)
    report = repairer.run_once()
    assert "wrong-id" in report["pending"]
    assert (KIND_POLICY, "wrong-id") in store.journal


# -- operator surfaces -----------------------------------------------------


def _controller(env, telemetry=None, **overrides):
    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(
        clients,
        storage_key=b"c" * 32,
        config=ControllerConfig(**overrides),
        telemetry=telemetry,
        freshness_env=env,
    )
    return controller, cluster


def test_health_and_metrics_expose_freshness_state():
    telemetry = Telemetry()
    env = FreshnessEnvironment.ephemeral()
    controller, _cluster = _controller(env, telemetry=telemetry)
    assert controller.put(FP, "obj", b"value").ok
    assert controller.get(FP, "obj").ok
    report = controller.health()
    block = report["freshness"]
    assert block["active"] and not block["forked"]
    assert block["epoch"] == env.counter.read() > 0
    assert block["proof_cache"]["hits"] + block["proof_cache"]["misses"] > 0
    text = render_prometheus(telemetry.registry)
    assert "pesos_freshness_pins_total" in text
    assert 'pesos_freshness_proofs_total{outcome="verified"}' in text
    assert "pesos_fork_detected 0" in text


def test_forked_controller_refuses_requests_and_goes_critical():
    env = FreshnessEnvironment.ephemeral()
    controller, cluster = _controller(env)
    assert controller.put(FP, "obj", b"value").ok
    env.pin_store.blob = None  # destroy the sealed pin across restart
    telemetry = Telemetry()
    restarted = PesosController(
        cluster.connect_all(
            KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
        ),
        storage_key=b"c" * 32,
        config=ControllerConfig(),
        telemetry=telemetry,
        freshness_env=env,
    )
    assert restarted.freshness.forked
    response = restarted.get(FP, "obj")
    assert response.status == 503
    assert not response.ok
    report = restarted.health()
    assert report["status"] == "critical"
    assert "pesos_fork_detected 1" in render_prometheus(telemetry.registry)


def test_pin_events_are_hash_chained_into_the_audit_log():
    env = FreshnessEnvironment.ephemeral()
    controller, _cluster = _controller(env, audit_log_size=4096)
    assert controller.put(FP, "obj", b"value").ok
    assert controller.delete(FP, "obj").ok
    records = controller.auditor.log.tail(limit=256)
    pins = [record for record in records if record.operation == "pin"]
    assert len(pins) == controller.freshness.pins
    assert pins[-1].key == f"epoch:{env.counter.read()}"
    assert pins[-1].policy_hash == controller.freshness.root
    assert controller.auditor.verify()["ok"]


def test_fork_event_is_audited():
    env = FreshnessEnvironment.ephemeral()
    controller, cluster = _controller(env, audit_log_size=4096)
    assert controller.put(FP, "obj", b"value").ok
    env.pin_store.blob = None
    restarted = PesosController(
        cluster.connect_all(
            KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
        ),
        storage_key=b"c" * 32,
        config=ControllerConfig(audit_log_size=4096),
        freshness_env=env,
    )
    records = restarted.auditor.log.tail(limit=16)
    forks = [record for record in records if record.decision == "fork"]
    assert forks and "counter" in forks[-1].detail
    assert restarted.auditor.verify()["ok"]
