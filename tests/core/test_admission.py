"""Admission control: token buckets, bounded queue, AIMD, determinism."""

import pytest

from repro.core.admission import (
    ADMITTED,
    SHED_DEADLINE,
    SHED_QUEUE_DELAY,
    SHED_QUEUE_FULL,
    SHED_RATE,
    AdmissionConfig,
    AdmissionController,
    AdmissionQueue,
    AdaptiveLimiter,
    TokenBucket,
    _QueueEntry,
)
from repro.core.request import Request
from repro.core.session import SessionManager
from repro.telemetry import Telemetry


def _entry(seq, priority=1, at=0.0, deadline=None):
    return _QueueEntry(
        seq=seq, token=seq, priority=priority, enqueued_at=at,
        deadline=deadline,
    )


# -- token bucket ----------------------------------------------------------

def test_bucket_allows_burst_then_refuses():
    bucket = TokenBucket(rate=1.0, burst=3.0, tokens=3.0, updated=0.0)
    assert all(bucket.try_take(0.0) for _ in range(3))
    assert not bucket.try_take(0.0)


def test_bucket_refills_with_virtual_time():
    bucket = TokenBucket(rate=2.0, burst=4.0, tokens=0.0, updated=0.0)
    assert not bucket.try_take(0.0)
    assert bucket.try_take(0.5)  # 0.5s * 2/s = 1 token
    assert bucket.seconds_until() == pytest.approx(0.5)


def test_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0, tokens=2.0, updated=0.0)
    bucket.try_take(100.0)
    assert bucket.tokens <= 2.0


def test_bucket_clock_never_runs_backwards():
    bucket = TokenBucket(rate=1.0, burst=5.0, tokens=0.0, updated=10.0)
    bucket.try_take(5.0)  # stale observation must not grow tokens
    assert bucket.tokens == 0.0
    assert bucket.updated == 10.0


# -- bounded priority queue ------------------------------------------------

def test_queue_dispatches_priority_then_fifo():
    queue = AdmissionQueue(depth=8, max_delay=1.0)
    queue.push(_entry(0, priority=1))
    queue.push(_entry(1, priority=2))
    queue.push(_entry(2, priority=2))
    assert [queue.pop().seq for _ in range(3)] == [1, 2, 0]


def test_queue_overflow_sheds_lowest_priority_newest():
    queue = AdmissionQueue(depth=2, max_delay=1.0)
    queue.push(_entry(0, priority=1))
    queue.push(_entry(1, priority=1))
    incoming = _entry(2, priority=2)
    victim = queue.push(incoming)
    assert victim is not None and victim.seq == 1  # newest low-priority
    assert len(queue) == 2
    assert queue.pop().seq == 2


def test_queue_overflow_rejects_incoming_when_it_ranks_lowest():
    queue = AdmissionQueue(depth=1, max_delay=1.0)
    queue.push(_entry(0, priority=2))
    incoming = _entry(1, priority=1)
    assert queue.push(incoming) is incoming
    assert len(queue) == 1


def test_queue_victim_skips_drained_priority_classes():
    # A class whose deque drained empty must not be picked as victim.
    queue = AdmissionQueue(depth=2, max_delay=1.0)
    queue.push(_entry(0, priority=0))
    assert queue.pop().seq == 0  # leaves empty class-0 deque behind
    queue.push(_entry(1, priority=1))
    queue.push(_entry(2, priority=1))
    victim = queue.push(_entry(3, priority=2))
    assert victim is not None and victim.seq == 2


def test_queue_expires_overdue_and_missed_deadlines():
    queue = AdmissionQueue(depth=8, max_delay=0.5)
    queue.push(_entry(0, at=0.0))                    # overdue at 1.0
    queue.push(_entry(1, at=0.9))                    # still fresh
    queue.push(_entry(2, at=0.9, deadline=0.95))     # missed deadline
    expired = queue.expire(1.0)
    assert [entry.seq for entry in expired] == [0, 2]
    assert len(queue) == 1


def test_queue_tracks_peak_depth():
    queue = AdmissionQueue(depth=8, max_delay=1.0)
    for seq in range(3):
        queue.push(_entry(seq))
    queue.pop()
    assert queue.peak_depth == 3


# -- AIMD limiter ----------------------------------------------------------

def test_limiter_additive_increase_multiplicative_decrease():
    config = AdmissionConfig(
        initial_limit=8, min_limit=1, max_limit=10,
        additive_increase=1, multiplicative_backoff=0.5,
        latency_target=0.01,
    )
    limiter = AdaptiveLimiter(config)
    limiter.observe(0.005)
    assert limiter.limit == 9
    limiter.observe(0.5)
    assert limiter.limit == 4
    for _ in range(20):
        limiter.observe(0.001)
    assert limiter.limit == 10  # capped at max


def test_limiter_never_below_min():
    limiter = AdaptiveLimiter(AdmissionConfig(initial_limit=2, min_limit=1))
    for _ in range(10):
        limiter.observe(1.0)
    assert limiter.limit == 1


# -- controller: rate path -------------------------------------------------

def _rate_controller(rate=1.0, burst=2.0, **kwargs):
    return AdmissionController(
        AdmissionConfig(rate_per_second=rate, burst=burst, **kwargs),
        sessions=SessionManager(),
    )


def test_rate_limit_sheds_429_with_retry_after():
    admission = _rate_controller(rate=1.0, burst=1.0)
    request = Request(method="get", key="k")
    assert admission.check(request, "fp-a", 0.0).admitted
    decision = admission.check(request, "fp-a", 0.0)
    assert not decision.admitted
    assert decision.reason == SHED_RATE
    response = decision.to_response()
    assert response.status == 429
    assert response.retry_after is not None and response.retry_after > 0


def test_rate_state_is_per_fingerprint():
    admission = _rate_controller(rate=1.0, burst=1.0)
    request = Request(method="get", key="k")
    assert admission.check(request, "fp-a", 0.0).admitted
    assert not admission.check(request, "fp-a", 0.0).admitted
    assert admission.check(request, "fp-b", 0.0).admitted


def test_rate_bucket_lives_on_the_session():
    sessions = SessionManager()
    admission = AdmissionController(
        AdmissionConfig(rate_per_second=1.0), sessions=sessions
    )
    admission.check(Request(method="get", key="k"), "fp-a", 5.0)
    session = sessions.lookup("fp-a", now=5.0)
    assert isinstance(session.bucket, TokenBucket)


def test_rate_state_expires_with_the_session():
    sessions = SessionManager(expiry_seconds=10.0)
    admission = AdmissionController(
        AdmissionConfig(rate_per_second=0.001, burst=1.0), sessions=sessions
    )
    request = Request(method="get", key="k")
    assert admission.check(request, "fp-a", 0.0).admitted
    assert not admission.check(request, "fp-a", 1.0).admitted
    # Long idle: the session (and its drained bucket) expires; the
    # reconnecting client starts with a fresh burst.
    assert admission.check(request, "fp-a", 1000.0).admitted


def test_rate_limiting_disabled_by_default():
    admission = AdmissionController(sessions=SessionManager())
    for _ in range(100):
        assert admission.check(Request(method="get", key="k"), "fp", 0.0).admitted


# -- controller: queue path ------------------------------------------------

def _offer(admission, token, method="get", fp="fp", now=0.0, vnow=0.0,
           deadline=None):
    return admission.offer(
        token, Request(method=method, key="k"), fp, now, vnow,
        deadline=deadline,
    )


def test_offer_dispatch_roundtrip():
    admission = AdmissionController(sessions=SessionManager())
    assert _offer(admission, "t0").admitted
    assert admission.dispatch(0.0, budget=4) == ["t0"]
    assert admission.dispatch(0.0, budget=4) == []


def test_queue_full_sheds_503_and_reports_victims():
    admission = AdmissionController(
        AdmissionConfig(queue_depth=2), sessions=SessionManager()
    )
    _offer(admission, "r0", method="get")
    _offer(admission, "r1", method="get")
    decision = _offer(admission, "w0", method="put")  # outranks queued gets
    assert decision.admitted
    shed = admission.take_shed()
    assert [token for token, _d in shed] == ["r1"]
    shed_response = shed[0][1].to_response()
    assert shed_response.status == 503
    assert shed_response.retry_after is not None


def test_stale_entries_shed_at_dispatch():
    admission = AdmissionController(
        AdmissionConfig(max_queue_delay=0.5), sessions=SessionManager()
    )
    _offer(admission, "old", vnow=0.0)
    _offer(admission, "fresh", vnow=0.9)
    assert admission.dispatch(1.0, budget=8) == ["fresh"]
    shed = admission.take_shed()
    assert [token for token, _d in shed] == ["old"]
    assert shed[0][1].reason == SHED_QUEUE_DELAY


def test_deadline_shed_reason_distinguished():
    admission = AdmissionController(
        AdmissionConfig(max_queue_delay=100.0), sessions=SessionManager()
    )
    _offer(admission, "doomed", vnow=0.0, deadline=0.5)
    admission.dispatch(1.0, budget=8)
    [(token, decision)] = admission.take_shed()
    assert token == "doomed"
    assert decision.reason == SHED_DEADLINE


def test_snapshot_counts_every_outcome():
    admission = AdmissionController(
        AdmissionConfig(queue_depth=1), sessions=SessionManager()
    )
    _offer(admission, "a", method="get")
    _offer(admission, "b", method="get")  # incoming shed: queue full
    snapshot = admission.snapshot()
    assert snapshot["admitted"] == 1
    assert snapshot["shed"] == {SHED_QUEUE_FULL: 1}
    assert snapshot["queue_depth"] == 1
    assert snapshot["limit"] >= 1


# -- determinism -----------------------------------------------------------

def _exercise(admission):
    for index in range(16):
        _offer(admission, f"t{index}",
               method="put" if index % 3 else "get",
               vnow=index * 0.01)
    admission.dispatch(0.2, budget=4)
    return list(admission.decision_log)


def test_decision_log_is_replayable():
    config = AdmissionConfig(queue_depth=4, max_queue_delay=0.05, seed=9)
    first = _exercise(AdmissionController(config, sessions=SessionManager()))
    second = _exercise(AdmissionController(config, sessions=SessionManager()))
    assert first == second
    assert any(entry[1] != ADMITTED for entry in first)


def test_jitter_depends_on_seed():
    a = AdmissionController(
        AdmissionConfig(queue_depth=1, seed=1), sessions=SessionManager()
    )
    b = AdmissionController(
        AdmissionConfig(queue_depth=1, seed=2), sessions=SessionManager()
    )
    for admission in (a, b):
        _offer(admission, "x")
        _offer(admission, "y")
    assert a.decision_log != b.decision_log


def test_trace_lines_render_retry_after_fixed_width():
    admission = AdmissionController(
        AdmissionConfig(queue_depth=1), sessions=SessionManager()
    )
    _offer(admission, "x")
    _offer(admission, "y")
    lines = admission.trace_lines()
    assert lines[0].endswith("|-")          # admitted: no hint
    assert "." in lines[1].split("|")[-1]   # shed: formatted float


# -- telemetry -------------------------------------------------------------

def test_decisions_and_sheds_hit_the_registry():
    telemetry = Telemetry()
    admission = AdmissionController(
        AdmissionConfig(queue_depth=1),
        sessions=SessionManager(),
        telemetry=telemetry,
    )
    _offer(admission, "x")
    _offer(admission, "y")
    counter = telemetry.registry.get("pesos_admission_decisions_total")
    assert counter.labels(ADMITTED).value == 1
    assert counter.labels(SHED_QUEUE_FULL).value == 1
    spans = [s.name for s in telemetry.tracer.recent()]
    assert "admission.shed" in spans
