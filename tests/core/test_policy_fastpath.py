"""Controller integration for the compiled policy fast path.

The fast path (``ControllerConfig.compile_policies``, default on) must
be invisible everywhere except throughput: responses, denial mapping,
and the tamper-evident audit chain are byte-identical to the
interpreter-only controller, and mutations invalidate cached
decisions before the next check can observe stale state.
"""

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import Request, build_http_request, parse_http_response
from repro.core.webserver import WebServer
from tests.core.conftest import ADMIN, ALICE, BOB, make_clients


def _controller(compile_policies: bool) -> PesosController:
    clients, _cluster = make_clients()
    config = ControllerConfig(
        compile_policies=compile_policies, audit_log_size=64
    )
    return PesosController(clients, storage_key=b"k" * 32, config=config)


def _scripted_run(controller: PesosController) -> list:
    """A fixed request mix: grants, denials, policy swap, delete."""
    outcomes = []

    def note(response):
        outcomes.append((response.status, response.error, response.value))

    acl = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}') \\/ sessionKeyIs(k'{BOB}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')\n"
        f"delete :- sessionKeyIs(k'{ADMIN}')",
    ).policy_id
    note(controller.put(ALICE, "doc", b"v0", policy_id=acl))
    for _ in range(3):  # repeats exercise the decision cache
        note(controller.get(ALICE, "doc"))
        note(controller.get(BOB, "doc"))
    note(controller.put(BOB, "doc", b"evil"))  # denied
    note(controller.get("fp-mallory", "doc"))  # denied
    stricter = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    note(controller.put(ALICE, "doc", b"v1", policy_id=stricter))
    note(controller.get(BOB, "doc"))  # now denied
    note(controller.get(ALICE, "doc"))
    note(controller.delete(ADMIN, "doc"))  # old policy no longer applies
    return outcomes


def test_fast_path_is_response_and_audit_identical():
    fast = _controller(compile_policies=True)
    slow = _controller(compile_policies=False)
    assert fast.policy_engine is not None
    assert slow.policy_engine is None
    assert _scripted_run(fast) == _scripted_run(slow)
    # Same decisions, same clause paths, same chained digests: the
    # audit-compatibility guarantee, end to end.
    assert len(fast.auditor.log) == len(slow.auditor.log)
    assert len(fast.auditor.log) > 0
    assert fast.auditor.log.head == slow.auditor.log.head


def test_repeat_reads_hit_the_decision_cache():
    controller = _controller(compile_policies=True)
    acl = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v", policy_id=acl)
    for _ in range(4):
        assert controller.get(ALICE, "doc").ok
    stats = controller.policy_engine.decisions.stats
    assert stats.hits >= 3


def test_mutations_advance_the_decision_epoch():
    controller = _controller(compile_policies=True)
    acl = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    epoch0 = controller.policy_engine.decisions.epoch
    controller.put(ALICE, "doc", b"v0", policy_id=acl)
    assert controller.policy_engine.decisions.epoch > epoch0
    controller.get(ALICE, "doc")
    before = controller.policy_engine.decisions.epoch
    controller.put(ALICE, "doc", b"v1")
    assert controller.policy_engine.decisions.epoch > before
    assert len(controller.policy_engine.decisions) == 0


def test_policy_swap_is_never_served_stale():
    controller = _controller(compile_policies=True)
    permissive = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}') \\/ sessionKeyIs(k'{BOB}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v0", policy_id=permissive)
    for _ in range(3):
        assert controller.get(BOB, "doc").ok  # warm the cache
    stricter = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v1", policy_id=stricter)
    assert controller.get(BOB, "doc").status == 403
    assert controller.get(ALICE, "doc").ok


def test_handle_batch_prewarms_and_answers_identically():
    fast = _controller(compile_policies=True)
    slow = _controller(compile_policies=False)
    fingerprints = [ALICE, BOB, "fp-carol"]
    batch = []
    for controller in (fast, slow):
        acl = controller.put_policy(
            ALICE,
            "read :- "
            + " \\/ ".join(f"sessionKeyIs(k'{fp}')" for fp in fingerprints)
            + f"\nupdate :- sessionKeyIs(k'{ALICE}')",
        ).policy_id
        controller.put(ALICE, "doc", b"payload", policy_id=acl)
        for fp in fingerprints:  # establish sessions
            controller.get(fp, "doc")
    for fp in fingerprints * 2:
        batch.append(
            (build_http_request(Request(method="get", key="doc")), fp)
        )
    batch.append(
        (build_http_request(Request(method="get", key="doc")), "fp-mallory")
    )
    fast_out = WebServer(fast).handle_batch(list(batch), now=1.0)
    slow_out = WebServer(slow).handle_batch(list(batch), now=1.0)
    fast_parsed = [parse_http_response(raw) for raw in fast_out]
    slow_parsed = [parse_http_response(raw) for raw in slow_out]
    assert [(r.status, r.value) for r in fast_parsed] == [
        (r.status, r.value) for r in slow_parsed
    ]
    assert all(r.status == 200 for r in fast_parsed[:-1])
    assert fast_parsed[-1].status == 403
    # The batch grouped same-policy reads and seeded the cache, so the
    # per-request path served hits.
    assert fast.policy_engine.decisions.stats.hits >= len(fingerprints)


def test_decision_cache_metrics_exported():
    controller = _controller(compile_policies=True)
    acl = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v", policy_id=acl)
    controller.get(ALICE, "doc")
    controller.get(ALICE, "doc")
    families = {
        family.name: family for family in controller._derived_metrics()
    }
    family = families["pesos_policy_decision_cache_events_total"]
    events = {
        sample.labels["event"]: sample.value for sample in family.samples
    }
    assert events["hit"] >= 1
    assert events["miss"] >= 1


def test_fast_path_can_be_disabled():
    controller = _controller(compile_policies=False)
    acl = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    ).policy_id
    controller.put(ALICE, "doc", b"v", policy_id=acl)
    assert controller.get(ALICE, "doc").ok
    assert controller.get(BOB, "doc").status == 403
