"""Request model and HTTP framing round-trips."""

import pytest

from repro.core.request import (
    Request,
    Response,
    build_http_request,
    parse_http_request,
    parse_http_response,
    render_http_response,
)
from repro.errors import RequestError


def test_validate_accepts_basic_put():
    Request(method="put", key="k", value=b"v").validate()


def test_unknown_method_rejected():
    with pytest.raises(RequestError):
        Request(method="frobnicate").validate()


def test_put_requires_key():
    with pytest.raises(RequestError):
        Request(method="put", value=b"v").validate()


def test_async_only_for_write_methods():
    Request(method="put", key="k", asynchronous=True).validate()
    with pytest.raises(RequestError):
        Request(method="get", key="k", asynchronous=True).validate()


def test_status_requires_operation_id():
    with pytest.raises(RequestError):
        Request(method="status").validate()
    Request(method="status", operation_id="op-1").validate()


def test_put_policy_requires_source():
    with pytest.raises(RequestError):
        Request(method="put_policy").validate()


def test_attest_requires_key():
    with pytest.raises(RequestError):
        Request(method="attest").validate()
    Request(method="attest", key="obj").validate()


def test_http_request_roundtrip():
    original = Request(
        method="put",
        key="photos/cat.jpg",
        value=b"binary image data",
        policy_id="ph123",
        version=4,
        asynchronous=True,
        log_key="photos/cat.jpg.log",
    )
    wire = build_http_request(original)
    parsed = parse_http_request(wire)
    assert parsed.method == "put"
    assert parsed.key == "photos/cat.jpg"
    assert parsed.value == b"binary image data"
    assert parsed.policy_id == "ph123"
    assert parsed.version == 4
    assert parsed.asynchronous
    assert parsed.log_key == "photos/cat.jpg.log"


def test_http_request_minimal():
    parsed = parse_http_request(b"POST /get/mykey HTTP/1.1\r\n\r\n")
    assert parsed.method == "get"
    assert parsed.key == "mykey"
    assert parsed.version is None


def test_http_request_rejects_get_verb():
    with pytest.raises(RequestError):
        parse_http_request(b"GET /get/mykey HTTP/1.1\r\n\r\n")


def test_http_request_rejects_garbage():
    with pytest.raises(RequestError):
        parse_http_request(b"\xff\xfe not http")


def test_http_request_missing_method():
    with pytest.raises(RequestError):
        parse_http_request(b"POST / HTTP/1.1\r\n\r\n")


def test_http_response_roundtrip():
    original = Response(
        status=200,
        value=b"object bytes",
        version=7,
        policy_id="ph",
        operation_id="op-1",
        txid="tx-1",
    )
    parsed = parse_http_response(render_http_response(original))
    assert parsed.status == 200
    assert parsed.value == b"object bytes"
    assert parsed.version == 7
    assert parsed.policy_id == "ph"
    assert parsed.operation_id == "op-1"
    assert parsed.txid == "tx-1"


def test_http_error_response_roundtrip():
    original = Response(status=403, error="policy denies read on x")
    parsed = parse_http_response(render_http_response(original))
    assert parsed.status == 403
    assert parsed.error == "policy denies read on x"
    assert not parsed.ok


def test_response_ok_predicate():
    assert Response(status=200).ok
    assert Response(status=202).ok
    assert not Response(status=404).ok
