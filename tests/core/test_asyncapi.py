"""Async operation tracker: ids, buffering, the 2048-result bound."""

import pytest

from repro.core.asyncapi import RESULT_BUFFER_SIZE, AsyncTracker
from repro.errors import ResultExpired


def test_begin_issues_unique_ids():
    tracker = AsyncTracker()
    a = tracker.begin("fp")
    b = tracker.begin("fp")
    assert a.operation_id != b.operation_id


def test_pending_then_done():
    tracker = AsyncTracker()
    entry = tracker.begin("fp")
    assert not tracker.query(entry.operation_id, "fp").done
    tracker.complete(entry.operation_id, {"status": 200})
    result = tracker.query(entry.operation_id, "fp")
    assert result.done
    assert result.result == {"status": 200}


def test_results_scoped_to_client():
    tracker = AsyncTracker()
    entry = tracker.begin("fp-owner")
    tracker.complete(entry.operation_id, "secret")
    with pytest.raises(ResultExpired):
        tracker.query(entry.operation_id, "fp-other")


def test_buffer_bounded_at_2048():
    tracker = AsyncTracker()
    first = tracker.begin("fp")
    for _ in range(RESULT_BUFFER_SIZE):
        tracker.begin("fp")
    assert len(tracker) == RESULT_BUFFER_SIZE
    with pytest.raises(ResultExpired):
        tracker.query(first.operation_id, "fp")
    assert tracker.discarded == 1


def test_complete_after_eviction_is_noop():
    tracker = AsyncTracker(buffer_size=1)
    first = tracker.begin("fp")
    tracker.begin("fp")
    tracker.complete(first.operation_id, "late result")  # must not raise
    with pytest.raises(ResultExpired):
        tracker.query(first.operation_id, "fp")


def test_unknown_id_expired():
    with pytest.raises(ResultExpired):
        AsyncTracker().query("op-00000001", "fp")


def test_completed_after_evict_counter():
    tracker = AsyncTracker(buffer_size=1)
    first = tracker.begin("fp")
    tracker.begin("fp")  # evicts first (still pending)
    assert tracker.completed_after_evict == 0
    assert tracker.complete(first.operation_id, "late result") is False
    assert tracker.completed_after_evict == 1
    # Completing a live entry does not touch the counter.
    second = tracker.begin("fp")
    assert tracker.complete(second.operation_id, "ok") is True
    assert tracker.completed_after_evict == 1
