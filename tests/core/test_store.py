"""Object store: layout, encryption, replication, failover."""

import pytest

from repro.core.store import ObjectStore, StoredMeta, placement
from repro.errors import ConfigurationError, DriveOffline, ReplicationDegraded
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive


def _store(num_drives=3, replication=1, **kwargs):
    cluster = DriveCluster(num_drives=num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return (
        ObjectStore(
            clients, b"s" * 32, replication_factor=replication, **kwargs
        ),
        cluster,
    )


def test_placement_is_deterministic():
    assert placement("key-1", 4, 2) == placement("key-1", 4, 2)


def test_placement_replicas_are_consecutive():
    spots = placement("some-key", 5, 3)
    assert len(spots) == 3
    assert spots[1] == (spots[0] + 1) % 5
    assert spots[2] == (spots[0] + 2) % 5


def test_placement_capped_at_drive_count():
    assert len(placement("k", 2, 5)) == 2


def test_placement_spreads_keys():
    primaries = {placement(f"key-{i}", 4, 1)[0] for i in range(100)}
    assert primaries == {0, 1, 2, 3}


def test_meta_roundtrip():
    meta = StoredMeta(key="obj")
    assert not meta.exists
    store, _ = _store()
    store.store_version(meta, b"hello", policy_hash="ph")
    loaded = store.read_meta("obj")
    assert loaded.exists
    assert loaded.current_version == 0
    assert loaded.latest().size == 5
    assert loaded.latest().policy_hash == "ph"
    assert loaded.policy_id == ""


def test_missing_meta_is_none():
    store, _ = _store()
    assert store.read_meta("ghost") is None


def test_value_roundtrip_encrypted_on_disk():
    store, cluster = _store(num_drives=1)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"super secret payload", "")
    assert store.read_value("obj", 0) == b"super secret payload"
    # The drive never sees plaintext.
    drive = cluster.drive(0)
    raw = drive._entries[ObjectStore.value_key("obj", 0)].value
    assert b"super secret payload" not in raw


def test_versions_accumulate_with_history():
    store, _ = _store(keep_history=True)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v0", "")
    store.store_version(meta, b"v1", "")
    store.store_version(meta, b"v2", "")
    assert meta.current_version == 2
    assert store.read_value("obj", 0) == b"v0"
    assert store.read_value("obj", 2) == b"v2"


def test_history_disabled_drops_old_versions():
    store, cluster = _store(num_drives=1, keep_history=False)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v0", "")
    store.store_version(meta, b"v1", "")
    assert list(meta.versions) == [1]
    # Updates overwrite a single latest slot: one value key + one meta
    # key on the drive, and no delete traffic.
    assert cluster.drive(0).key_count == 2
    assert cluster.drive(0).stats.deletes == 0
    assert store.read_value("obj", 1) == b"v1"


def test_replication_writes_all_replicas():
    store, cluster = _store(num_drives=3, replication=3)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    # meta + value on every drive.
    for drive in cluster:
        assert drive.key_count == 2


def test_no_replication_writes_one_drive():
    store, cluster = _store(num_drives=3, replication=1)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    populated = [drive for drive in cluster if drive.key_count > 0]
    assert len(populated) == 1


def test_read_failover_to_replica():
    store, cluster = _store(num_drives=3, replication=2)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    primary = placement("obj", 3, 2)[0]
    cluster.drive(primary).fail()
    assert store.read_value("obj", 0) == b"data"
    assert store.read_meta("obj").exists


def test_read_fails_when_all_replicas_down():
    store, cluster = _store(num_drives=3, replication=2)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    for index in placement("obj", 3, 2):
        cluster.drive(index).fail()
    with pytest.raises(DriveOffline):
        store.read_value("obj", 0)


def test_write_survives_one_replica_down_with_quorum_one():
    store, cluster = _store(num_drives=3, replication=2, write_quorum=1)
    replicas = placement("obj", 3, 2)
    cluster.drive(replicas[1]).fail()
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")  # succeeds on remaining replica
    assert store.read_value("obj", 0) == b"data"
    # The partial write is journaled for anti-entropy.
    assert ("object", "obj") in store.journal


def test_default_quorum_refuses_partial_write():
    """Every replica must persist by default; a partial write raises
    ReplicationDegraded (a DriveOffline, so clients see a 503)."""
    store, cluster = _store(num_drives=3, replication=2)
    replicas = placement("obj", 3, 2)
    cluster.drive(replicas[1]).fail()
    with pytest.raises(ReplicationDegraded):
        store.store_version(StoredMeta(key="obj"), b"data", "")
    # The replica that did take the write diverges: journaled.
    assert ("object", "obj") in store.journal


def test_write_quorum_validated():
    with pytest.raises(ConfigurationError):
        _store(num_drives=3, replication=2, write_quorum=3)
    with pytest.raises(ConfigurationError):
        _store(num_drives=3, replication=2, write_quorum=0)


def test_write_fails_when_all_replicas_down():
    store, cluster = _store(num_drives=3, replication=2)
    for index in placement("obj", 3, 2):
        cluster.drive(index).fail()
    with pytest.raises(DriveOffline):
        store.store_version(StoredMeta(key="obj"), b"data", "")


def test_delete_object_removes_everything():
    store, cluster = _store(num_drives=1)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"v0", "")
    store.store_version(meta, b"v1", "")
    store.delete_object(meta)
    assert cluster.drive(0).key_count == 0


def test_policy_blob_roundtrip():
    store, _ = _store()
    store.write_policy("abcd", b"compiled-policy-bytes")
    assert store.read_policy("abcd") == b"compiled-policy-bytes"
    assert store.read_policy("missing") is None


def test_requires_clients():
    with pytest.raises(ConfigurationError):
        ObjectStore([], b"s" * 32)


def test_meta_weight_positive():
    meta = StoredMeta(key="obj")
    assert meta.weight() > 0
