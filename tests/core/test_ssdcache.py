"""Untrusted SSD cache tier: hits, attacks, controller integration."""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.core.ssdcache import SimulatedSsd, SsdCacheTier
from tests.core.conftest import ALICE


@pytest.fixture()
def tier():
    return SsdCacheTier(device=SimulatedSsd(), max_entries=64)


def test_put_get_roundtrip(tier):
    tier.put("k@0", b"cached value")
    assert tier.get("k@0") == b"cached value"
    assert tier.stats.hits == 1


def test_miss_returns_none(tier):
    assert tier.get("absent") is None
    assert tier.stats.misses == 1


def test_ssd_holds_only_ciphertext(tier):
    tier.put("k@0", b"plaintext payload")
    blob = tier.device.snapshot("k@0")
    assert b"plaintext payload" not in blob


def test_tampered_blob_treated_as_miss(tier):
    tier.put("k@0", b"value")
    tier.device.tamper("k@0")
    assert tier.get("k@0") is None
    assert tier.stats.integrity_failures == 1
    # The poisoned entry is gone; a re-put heals it.
    tier.put("k@0", b"value")
    assert tier.get("k@0") == b"value"


def test_rollback_attack_detected(tier):
    """Replaying an older, validly sealed blob must fail freshness."""
    tier.put("config", b"allow nobody")
    old_blob = tier.device.snapshot("config")
    tier.put("config", b"allow everyone")  # legitimate update
    tier.device.rollback("config", old_blob)  # adversary replays v1
    assert tier.get("config") is None
    assert tier.stats.integrity_failures == 1


def test_substituted_blob_from_other_key_detected(tier):
    tier.put("a", b"value-a")
    tier.put("b", b"value-b")
    tier.device.rollback("a", tier.device.snapshot("b"))
    assert tier.get("a") is None
    assert tier.stats.integrity_failures == 1


def test_withheld_blob_is_a_miss(tier):
    tier.put("k", b"v")
    tier.device.discard("k")
    assert tier.get("k") is None
    assert tier.stats.integrity_failures == 0  # withholding != tampering


def test_eviction_bounds_freshness_table():
    tier = SsdCacheTier(max_entries=4)
    for index in range(10):
        tier.put(f"k{index}", b"v")
    assert len(tier) <= 4
    assert tier.enclave_bytes() <= 4 * SsdCacheTier.RECORD_BYTES


def test_evicted_entry_unusable(tier):
    small = SsdCacheTier(max_entries=1)
    small.put("a", b"va")
    small.put("b", b"vb")  # evicts a's freshness record
    # The blob may still sit on the SSD, but without the record it
    # cannot be validated.
    assert small.get("a") is None


def test_invalidate(tier):
    tier.put("k", b"v")
    tier.invalidate("k")
    assert tier.get("k") is None
    assert tier.device.read("k") is None


# -- controller integration -------------------------------------------------

@pytest.fixture()
def ssd_controller(clients):
    return PesosController(
        clients,
        storage_key=b"k" * 32,
        config=ControllerConfig(ssd_cache_entries=1024),
    )


def test_controller_serves_reads_from_ssd(ssd_controller):
    controller = ssd_controller
    controller.put(ALICE, "obj", b"value")
    # Drop the enclave caches so the next read must go below L1.
    controller.caches.objects.clear()
    controller.effects.totals.clear()
    response = controller.get(ALICE, "obj")
    assert response.value == b"value"
    assert controller.ssd_cache.stats.hits == 1
    # No drive read happened.
    assert controller.effects.totals.get("disk_read", 0) == 0


def test_controller_falls_back_to_disk_on_ssd_tamper(ssd_controller):
    controller = ssd_controller
    controller.put(ALICE, "obj", b"value")
    controller.caches.objects.clear()
    controller.ssd_cache.device.tamper("obj@0")
    response = controller.get(ALICE, "obj")
    assert response.value == b"value"  # healed from the trusted drives
    assert controller.ssd_cache.stats.integrity_failures == 1


def test_controller_delete_invalidates_ssd(ssd_controller):
    controller = ssd_controller
    controller.put(ALICE, "obj", b"value")
    controller.delete(ALICE, "obj")
    assert controller.ssd_cache.get("obj@0") is None


def test_controller_without_tier_has_none(controller):
    assert controller.ssd_cache is None
