"""Consistent hashing and elastic drive membership."""

import pytest

from repro.core.hashring import ElasticStore, HashRing
from repro.core.store import ObjectStore, StoredMeta
from repro.errors import ConfigurationError
from repro.kinetic.client import KineticClient
from repro.kinetic.drive import KineticDrive


def _ring(names=("d0", "d1", "d2")):
    return HashRing(list(names), vnodes=64)


def test_placement_deterministic():
    ring = _ring()
    assert ring.placement("key", 2) == ring.placement("key", 2)


def test_placement_distinct_drives():
    ring = _ring()
    spots = ring.placement("key", 3)
    assert len(spots) == len(set(spots)) == 3


def test_replicas_capped_at_membership():
    ring = _ring(("only",))
    assert ring.placement("key", 5) == ["only"]


def test_distribution_roughly_uniform():
    ring = _ring(("d0", "d1", "d2", "d3"))
    counts = {name: 0 for name in ring.drives}
    for index in range(4000):
        counts[ring.placement(f"key-{index}", 1)[0]] += 1
    assert max(counts.values()) < 2.2 * min(counts.values())


def test_adding_drive_moves_few_keys():
    ring = _ring(("d0", "d1", "d2"))
    before = {f"k{i}": ring.placement(f"k{i}", 1)[0] for i in range(2000)}
    ring.add_drive("d3")
    moved = sum(
        1 for key, owner in before.items()
        if ring.placement(key, 1)[0] != owner
    )
    # Ideal is 1/4 of keys; allow generous slack for vnode variance.
    assert 0.10 < moved / 2000 < 0.45


def test_removing_drive_only_moves_its_keys():
    ring = _ring(("d0", "d1", "d2"))
    before = {f"k{i}": ring.placement(f"k{i}", 1)[0] for i in range(1000)}
    ring.remove_drive("d2")
    for key, owner in before.items():
        new_owner = ring.placement(key, 1)[0]
        if owner != "d2":
            assert new_owner == owner  # unaffected keys stay put


def test_duplicate_add_rejected():
    ring = _ring()
    with pytest.raises(ConfigurationError):
        ring.add_drive("d0")


def test_remove_unknown_rejected():
    ring = _ring()
    with pytest.raises(ConfigurationError):
        ring.remove_drive("ghost")


def test_empty_ring_rejects_placement():
    with pytest.raises(ConfigurationError):
        HashRing([]).placement("key")


# -- elastic store -----------------------------------------------------------

def _drive_and_client(name):
    drive = KineticDrive(name)
    client = KineticClient(
        drive, KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return drive, client


def _elastic(names=("d0", "d1", "d2"), replication=1):
    drives, clients = zip(*(_drive_and_client(n) for n in names))
    store = ObjectStore(
        list(clients), b"s" * 32, replication_factor=replication
    )
    elastic = ElasticStore(store, list(names))
    return elastic, list(drives)


def _load(elastic, count=60):
    for index in range(count):
        meta = StoredMeta(key=f"obj-{index}")
        elastic.store_version(meta, f"value-{index}".encode(), "")


def test_elastic_write_read(elastic=None):
    elastic, _drives = _elastic()
    _load(elastic, 10)
    assert elastic.read_value("obj-3", 0) == b"value-3"


def test_all_objects_survive_drive_addition():
    elastic, drives = _elastic()
    _load(elastic)
    new_drive, new_client = _drive_and_client("d3")
    plan = elastic.add_drive("d3", new_client)
    assert len(plan) > 0  # some keys moved
    for index in range(60):
        assert elastic.read_value(f"obj-{index}", 0) == f"value-{index}".encode()
    assert new_drive.key_count > 0  # the new drive took load


def test_addition_moves_a_minority_of_keys():
    elastic, _drives = _elastic()
    _load(elastic, 100)
    _d, client = _drive_and_client("d3")
    plan = elastic.add_drive("d3", client)
    assert len(plan) < 55  # ~25% expected, never a majority


def test_moved_keys_cleaned_from_old_drives():
    elastic, drives = _elastic()
    _load(elastic)
    _d, client = _drive_and_client("d3")
    plan = elastic.add_drive("d3", client)
    from repro.core.store import ObjectStore

    moved_keys = {key for key, _old, _new in plan.moves}
    for key in moved_keys:
        holders = [
            drive.drive_id
            for drive in drives
            if ObjectStore.meta_key(key) in drive._entries
        ]
        assert holders == []  # old copies deleted


def test_all_objects_survive_drive_removal():
    elastic, drives = _elastic()
    _load(elastic)
    elastic.remove_drive("d1")
    for index in range(60):
        assert elastic.read_value(f"obj-{index}", 0) == f"value-{index}".encode()
    assert drives[1].drive_id == "d1"


def test_removal_with_replication():
    elastic, _drives = _elastic(replication=2)
    _load(elastic, 40)
    elastic.remove_drive("d0")
    for index in range(40):
        assert elastic.read_value(f"obj-{index}", 0) == f"value-{index}".encode()


def test_remove_unknown_drive_rejected():
    elastic, _drives = _elastic()
    with pytest.raises(ConfigurationError):
        elastic.remove_drive("ghost")


def test_id_client_count_mismatch_rejected():
    _drive, client = _drive_and_client("d0")
    store = ObjectStore([client], b"s" * 32)
    with pytest.raises(ConfigurationError):
        ElasticStore(store, ["d0", "d1"])
