"""Quorum writes, circuit breaker, read-repair, and the health surface."""

import json

import pytest

from repro.core.health import CLOSED, OPEN
from repro.core.store import ObjectStore, StoredMeta, placement
from repro.core.webserver import WebServer
from repro.errors import IntegrityError, ReplicationDegraded
from repro.faults import DriveFaultSpec
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.telemetry import Telemetry, render_prometheus

from tests.faults.conftest import FP, chaos_stack


def _store(num_drives=3, replication=2, **kwargs):
    cluster = DriveCluster(num_drives=num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return (
        ObjectStore(
            clients, b"s" * 32, replication_factor=replication, **kwargs
        ),
        cluster,
    )


# -- circuit breaker -------------------------------------------------------


def test_breaker_opens_after_threshold_failures():
    store, cluster = _store(write_quorum=1, breaker_threshold=3)
    dead = placement("obj", 3, 2)[0]
    cluster.drive(dead).fail()
    meta = StoredMeta(key="obj")
    for _ in range(3):
        store.store_version(meta, b"data", "")
    assert store.health.state_of(dead).state == OPEN


def test_breaker_skips_open_drive():
    """Once open, the dead drive stops seeing requests at all."""
    store, cluster = _store(write_quorum=1, breaker_threshold=2)
    dead = placement("obj", 3, 2)[0]
    cluster.drive(dead).fail()
    meta = StoredMeta(key="obj")
    for _ in range(4):
        store.store_version(meta, b"data", "")
    sent_while_open = store.clients[dead].requests_sent
    store.store_version(meta, b"data", "")
    assert store.clients[dead].requests_sent == sent_while_open


def test_half_open_probe_recovers_the_drive():
    store, cluster = _store(
        write_quorum=1, breaker_threshold=2, breaker_cooldown_ops=4
    )
    dead = placement("obj", 3, 2)[0]
    cluster.drive(dead).fail()
    meta = StoredMeta(key="obj")
    for _ in range(3):
        store.store_version(meta, b"data", "")
    assert store.health.state_of(dead).state == OPEN
    cluster.drive(dead).recover()
    # Writes keep flowing; after the cooldown a probe closes the breaker.
    for _ in range(6):
        store.store_version(meta, b"data", "")
    assert store.health.state_of(dead).state == CLOSED
    assert store.health.state_of(dead).probes >= 1


def test_quorum_can_reopen_a_breaker_skipped_drive():
    """When skipping an open breaker would fail the quorum, the store
    probes the drive anyway rather than refusing a write it could
    serve."""
    store, cluster = _store(
        replication=2, breaker_threshold=1, breaker_cooldown_ops=10**6
    )
    dead = placement("obj", 3, 2)[0]
    cluster.drive(dead).fail()
    meta = StoredMeta(key="obj")
    with pytest.raises(ReplicationDegraded):
        store.store_version(meta, b"data", "")
    assert store.health.state_of(dead).state == OPEN
    cluster.drive(dead).recover()
    # Breaker is still open (huge cooldown), but quorum=2 forces the
    # last-resort probe and the write succeeds on both replicas.
    store.store_version(meta, b"data", "")
    assert store.read_value("obj", meta.current_version) == b"data"


# -- read failover and repair ----------------------------------------------


def test_read_fails_over_corrupt_replica_and_repairs_it():
    store, cluster = _store(replication=2)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"important-data", "")
    primary = placement("obj", 3, 2)[0]
    disk_key = ObjectStore.value_key("obj", 0)
    entry = cluster.drive(primary)._entries[disk_key]
    entry.value = bytes([entry.value[0] ^ 0x01]) + entry.value[1:]
    # The corrupt primary fails AEAD open; the replica serves the read.
    assert store.read_value("obj", 0) == b"important-data"
    # ...and the primary was re-seeded inline: a scrub is now clean.
    report = store.scrub(meta)
    assert all(status == "ok" for _v, _d, status in report)


def test_all_replicas_corrupt_raises_integrity_error():
    store, cluster = _store(replication=2)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"important-data", "")
    disk_key = ObjectStore.value_key("obj", 0)
    for index in placement("obj", 3, 2):
        entry = cluster.drive(index)._entries[disk_key]
        entry.value = bytes([entry.value[0] ^ 0x01]) + entry.value[1:]
    with pytest.raises(IntegrityError):
        store.read_value("obj", 0)


def test_read_past_missing_replica_journals_key():
    store, cluster = _store(replication=2)
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    primary = placement("obj", 3, 2)[0]
    del cluster.drive(primary)._entries[ObjectStore.value_key("obj", 0)]
    assert store.read_value("obj", 0) == b"data"
    # Inline repair restored the copy on the answering-but-empty drive.
    assert ObjectStore.value_key("obj", 0) in cluster.drive(primary)._entries


# -- anti-entropy ----------------------------------------------------------


def test_anti_entropy_converges_after_recovery():
    from repro.core.antientropy import AntiEntropyRepairer

    store, cluster = _store(replication=2, write_quorum=1)
    dead = placement("obj", 3, 2)[1]
    cluster.drive(dead).fail()
    meta = StoredMeta(key="obj")
    store.store_version(meta, b"data", "")
    assert ("object", "obj") in store.journal
    repairer = AntiEntropyRepairer(store)
    # While the drive is down the key stays journaled (deferred).
    report = repairer.run_once()
    assert ("object", "obj") in store.journal
    cluster.drive(dead).recover()
    report = repairer.run_until_converged()
    assert len(store.journal) == 0
    assert "obj" in report["converged"]
    scrub = store.scrub(store.read_meta("obj"))
    assert all(status == "ok" for _v, _d, status in scrub)


def test_anti_entropy_repairs_policies_by_rewrite():
    from repro.core.antientropy import AntiEntropyRepairer

    store, cluster = _store(replication=2, write_quorum=1)
    dead = placement("pol-1", 3, 2)[1]
    cluster.drive(dead).fail()
    store.write_policy("pol-1", b"compiled-bytes")
    assert ("policy", "pol-1") in store.journal
    cluster.drive(dead).recover()
    AntiEntropyRepairer(store).run_until_converged()
    assert len(store.journal) == 0
    key = ObjectStore.policy_key("pol-1")
    assert key in cluster.drive(dead)._entries


# -- controller degradation and the health surface -------------------------


def test_controller_503_with_retry_after_below_quorum():
    stack = chaos_stack(
        num_drives=3,
        specs={0: DriveFaultSpec(crash_at=0), 1: DriveFaultSpec(crash_at=0)},
        replication_factor=3,
    )
    server = WebServer(stack.controller)
    raw = server.handle_bytes(
        b"POST /put/doc HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", FP
    )
    head = raw.split(b"\r\n\r\n", 1)[0].decode()
    assert head.startswith("HTTP/1.1 503")
    assert "Retry-After: 1" in head


def test_health_endpoint_reports_status_transitions():
    stack = chaos_stack(num_drives=3, replication_factor=2)
    server = WebServer(stack.controller)

    def health():
        raw = server.handle_bytes(b"GET /_health HTTP/1.1\r\n\r\n", FP)
        head, body = raw.split(b"\r\n\r\n", 1)
        return head.decode().split(" ")[1], json.loads(body)

    status, report = health()
    assert status == "200"
    assert report["status"] == "ok"
    assert len(report["drives"]) == 3
    # One drive down: degraded (quorum still reachable) but not critical.
    stack.cluster.drive(0).fail()
    stack.controller.put(FP, "poke", b"x")  # let the store notice
    status, report = health()
    assert report["drives"][0]["online"] is False
    assert report["status"] in ("degraded", "critical")
    # All drives down: critical, and the endpoint itself serves 503.
    for drive in stack.cluster:
        drive.fail()
    status, report = health()
    assert status == "503"
    assert report["status"] == "critical"


def test_health_endpoint_works_without_telemetry():
    from repro.telemetry import NULL_TELEMETRY

    stack = chaos_stack(num_drives=2)
    server = WebServer(stack.controller, telemetry=NULL_TELEMETRY)
    raw = server.handle_bytes(b"GET /_health HTTP/1.1\r\n\r\n", FP)
    assert raw.split(b" ")[1] == b"200"
    # The rest of the admin surface still requires telemetry.
    raw = server.handle_bytes(b"GET /_metrics HTTP/1.1\r\n\r\n", FP)
    assert raw.split(b" ")[1] == b"503"


def test_resilience_metrics_exposed():
    telemetry = Telemetry()
    stack = chaos_stack(
        num_drives=3,
        specs={0: DriveFaultSpec(drop_every=2)},
        replication_factor=2,
        telemetry=telemetry,
    )
    for i in range(12):
        assert stack.controller.put(FP, f"k{i}", b"v").ok
    text = render_prometheus(telemetry.registry)
    assert "pesos_drive_health{" in text
    assert "pesos_drive_online{" in text
    assert "pesos_drive_retries_total{" in text
    assert 'error="TransientIOError"' in text
    assert "pesos_dirty_journal_keys" in text
