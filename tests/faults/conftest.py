"""Shared chaos-test fixtures.

``CHAOS_SEED`` parameterizes the whole suite from the environment so
CI can sweep seeds (three fixed ones in the chaos job) without any
test edits; locally it defaults to 0.

:func:`chaos_stack` builds the full resilient stack — fault-wrapped
cluster, retrying clients, quorum-aware controller — in one call.
"""

import os
from dataclasses import dataclass

from repro.core.controller import ControllerConfig, PesosController
from repro.faults import FaultInjector
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.kinetic.retry import RetryPolicy

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

FP = "fp-chaos"


@dataclass
class ChaosStack:
    """Everything one chaos scenario touches."""

    cluster: DriveCluster
    injector: FaultInjector
    clients: list
    controller: PesosController


def chaos_stack(
    num_drives: int = 3,
    specs=None,
    seed: int = CHAOS_SEED,
    retry_policy: RetryPolicy | None = RetryPolicy(),
    telemetry=None,
    freshness_env=None,
    **config_overrides,
) -> ChaosStack:
    """Build cluster → wrap with faults → connect → controller.

    ``specs`` follows :meth:`FaultInjector.wrap_cluster`: one spec for
    every drive, or a dict of drive index to spec.  Drives whose
    schedule starts offline are tolerated (degraded bootstrap).

    ``freshness_env`` enables rollback/fork protection; passing the
    same environment across two chaos_stack calls (against the same
    cluster) models a controller restart on surviving hardware.
    """
    cluster = DriveCluster(num_drives=num_drives)
    injector = FaultInjector(seed=seed)
    injector.wrap_cluster(cluster, specs)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY,
        KineticDrive.DEMO_KEY,
        allow_degraded=True,
        retry_policy=retry_policy,
        telemetry=telemetry,
    )
    controller = PesosController(
        clients,
        storage_key=b"chaos-key".ljust(32, b"\0"),
        config=ControllerConfig(**config_overrides),
        telemetry=telemetry,
        freshness_env=freshness_env,
    )
    return ChaosStack(
        cluster=cluster,
        injector=injector,
        clients=clients,
        controller=controller,
    )


def restart_controller(
    stack: ChaosStack,
    freshness_env=None,
    telemetry=None,
    **config_overrides,
) -> PesosController:
    """Model a controller restart over the surviving drive fleet.

    A fresh controller (fresh caches, fresh sessions) bootstraps
    against the stack's existing fault-wrapped cluster.  Passing the
    original ``freshness_env`` models the trusted hardware (enclave
    identity, monotonic counter, pin slot) persisting across the
    restart — which is what makes fork detection possible.
    """
    clients = stack.cluster.connect_all(
        KineticDrive.DEMO_IDENTITY,
        KineticDrive.DEMO_KEY,
        allow_degraded=True,
        retry_policy=RetryPolicy(),
        telemetry=telemetry,
    )
    controller = PesosController(
        clients,
        storage_key=b"chaos-key".ljust(32, b"\0"),
        config=ControllerConfig(**config_overrides),
        telemetry=telemetry,
        freshness_env=freshness_env,
    )
    stack.clients = clients
    stack.controller = controller
    return controller
