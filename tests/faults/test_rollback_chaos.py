"""Rollback / replay / fork chaos against the freshness authority.

The acceptance bar (ISSUE 7): across 100+ seeded scenarios composing
rollback-to-old-version, replay-of-stale-replica and fork-across-
restart attacks with crashes and quorum degradation, the store serves
**zero stale acknowledged reads** (every read is either proof-verified
current or a 5xx) and detects **every fork** at bootstrap.

Seeds derive from ``CHAOS_SEED`` so the CI matrix sweeps disjoint
regions of the scenario space.
"""

import random

import pytest

from repro.core.cache import CacheConfig
from repro.core.freshness import FreshnessEnvironment
from repro.faults import DriveFaultSpec
from repro.kinetic.retry import RetryPolicy

from tests.faults.conftest import (
    CHAOS_SEED,
    FP,
    chaos_stack,
    restart_controller,
)

BASE = CHAOS_SEED * 1000

OPEN_POLICY = "read :- sessionKeyIs(K)\nupdate :- sessionKeyIs(K)"


def _freshness_stack(seed, specs=None, env=None, **overrides):
    env = env or FreshnessEnvironment.ephemeral()
    stack = chaos_stack(
        num_drives=3,
        specs=specs,
        seed=seed,
        retry_policy=RetryPolicy(max_attempts=8),
        freshness_env=env,
        replication_factor=3,
        write_quorum=2,
        # Effectively no enclave object/key caching (1-byte budgets):
        # every read in these scenarios must go to the (attacked)
        # drives and verify a proof.
        cache=CacheConfig(object_bytes=1, key_bytes=1),
        **overrides,
    )
    assert not stack.controller.freshness.forked
    return stack, env


# -- rollback + replay under degraded quorum -------------------------------


@pytest.mark.parametrize("offset", range(60))
def test_rollback_and_replay_never_serve_stale_reads(offset):
    """In-place rollback of one drive + probabilistic replay + (for
    half the seeds) a crash of a second drive: reads are either the
    latest acknowledged value or a 5xx — never stale data."""
    seed = BASE + offset
    rng = random.Random(seed)
    stack, _env = _freshness_stack(
        seed,
        specs={2: DriveFaultSpec(replay_rate=0.2, drop_rate=0.02)},
        anti_entropy_interval=20,
    )
    controller = stack.controller

    keys = [f"obj-{index}" for index in range(6)]
    acked = {}
    for key in keys:
        value = b"v0:" + key.encode()
        response = controller.put(FP, key, value)
        assert response.ok, response.error
        acked[key] = value
    for round_no in range(2):  # overwrites stock the replay buffers
        for key in keys:
            value = f"v{round_no + 1}:{key}".encode()
            response = controller.put(FP, key, value)
            if response.ok:
                acked[key] = value

    # Arm the attack: drive 0 snapshots now and silently rolls back a
    # few dozen global ops later; for half the seeds drive 1 crashes
    # across that window, so the stale replica reappears exactly while
    # the read quorum is degraded.
    start = stack.injector.global_op
    stack.injector.reschedule(
        0,
        DriveFaultSpec(
            capture_at=start, rollback_at=start + rng.randrange(5, 40)
        ),
    )
    crashed = rng.random() < 0.5
    if crashed:
        stack.injector.reschedule(
            1,
            DriveFaultSpec(
                crash_at=start + rng.randrange(3, 20),
                recover_at=start + 150,
            ),
        )

    wrong = []
    for index in range(50):
        key = rng.choice(keys)
        if rng.random() < 0.35:
            value = f"w{index}:{key}".encode()
            response = controller.put(FP, key, value)
            if response.ok:
                acked[key] = value
        else:
            response = controller.get(FP, key)
            if response.ok:
                if response.value != acked[key]:
                    wrong.append((key, response.value, acked[key]))
            else:
                # Refusing is allowed under attack; lying is not.  A
                # 4xx here would mean an acked object vanished.
                assert response.status >= 500, (key, response.status)
    assert not wrong, f"stale reads served: {wrong}"
    assert stack.injector.stats.rollbacks == 1

    # Attack over: clear every fault, let anti-entropy converge, and
    # require every acked value back.
    for index in range(3):
        stack.injector.reschedule(index, DriveFaultSpec())
    controller.anti_entropy.run_until_converged()
    for key in keys:
        response = controller.get(FP, key)
        assert response.ok, (key, response.error)
        assert response.value == acked[key]


@pytest.mark.parametrize("offset", range(5))
def test_total_replay_is_refused_not_served(offset):
    """Every drive answering GETs from its stale retained copy: the
    verified read must fail closed (503), and serve correct data again
    the moment the replay stops."""
    seed = BASE + 600 + offset
    stack, _env = _freshness_stack(seed)
    controller = stack.controller
    assert controller.put(FP, "obj", b"old").ok
    assert controller.put(FP, "obj", b"new").ok  # stocks replay buffers
    authority = controller.freshness
    for index in range(3):
        stack.injector.reschedule(index, DriveFaultSpec(replay_rate=1.0))
    response = controller.get(FP, "obj")
    assert not response.ok and response.status >= 500
    assert authority.stale_rejected > 0
    assert stack.injector.stats.replays > 0
    for index in range(3):
        stack.injector.reschedule(index, DriveFaultSpec())
    response = controller.get(FP, "obj")
    assert response.ok and response.value == b"new"


# -- fork across restart ---------------------------------------------------


@pytest.mark.parametrize("offset", range(40))
def test_fork_across_restart_is_always_detected(offset):
    """The whole fleet restored to an old image across a controller
    restart (same trusted hardware): bootstrap must refuse to serve."""
    seed = BASE + 200 + offset
    rng = random.Random(seed)
    stack, env = _freshness_stack(seed)
    controller = stack.controller

    for index in range(rng.randrange(2, 6)):
        assert controller.put(FP, f"pre-{index}", b"pre").ok
    if rng.random() < 0.3:
        assert controller.put_policy(FP, OPEN_POLICY).ok
    for drive in stack.injector.drives:
        drive.capture_snapshot()
    for index in range(rng.randrange(1, 4)):  # pins past the snapshot
        assert controller.put(FP, f"post-{index}", b"post").ok
    for drive in stack.injector.drives:
        assert drive.restore_snapshot("fork")
    assert stack.injector.stats.forks == 3

    restarted = restart_controller(stack, freshness_env=env)
    assert restarted.freshness.forked, "fork went undetected"
    assert "never pinned" in restarted.freshness.fork_reason
    assert restarted.health()["status"] == "critical"
    response = restarted.get(FP, "pre-0")
    assert response.status == 503 and not response.ok


@pytest.mark.parametrize("offset", range(10))
def test_stale_pin_replay_across_restart_is_detected(offset):
    """The host replays an old sealed pin blob (drives untouched):
    the monotonic counter exposes it at bootstrap."""
    seed = BASE + 300 + offset
    stack, env = _freshness_stack(seed)
    controller = stack.controller
    assert controller.put(FP, "obj", b"v1").ok
    stale_blob = env.pin_store.blob
    assert controller.put(FP, "obj", b"v2").ok
    env.pin_store.blob = stale_blob

    restarted = restart_controller(stack, freshness_env=env)
    assert restarted.freshness.forked
    assert "stale sealed" in restarted.freshness.fork_reason
    assert restarted.get(FP, "obj").status == 503


@pytest.mark.parametrize("offset", range(5))
def test_clean_restart_after_chaos_is_not_a_fork(offset):
    """No-attack control: transient drops plus a restart on the same
    hardware must bootstrap active and keep serving verified reads."""
    seed = BASE + 400 + offset
    stack, env = _freshness_stack(
        seed, specs={1: DriveFaultSpec(drop_rate=0.05)}
    )
    controller = stack.controller
    acked = {}
    for index in range(8):
        key = f"obj-{index}"
        value = f"v:{key}".encode()
        response = controller.put(FP, key, value)
        if response.ok:
            acked[key] = value
    assert acked
    # Quiesce the faults so the restart sees a reachable fleet (an
    # unreachable-at-bootstrap fleet forks to the safe side; see
    # docs/freshness.md).
    stack.injector.reschedule(1, DriveFaultSpec())

    restarted = restart_controller(stack, freshness_env=env)
    assert not restarted.freshness.forked, restarted.freshness.fork_reason
    assert restarted.health()["status"] != "critical"
    for key, value in acked.items():
        response = restarted.get(FP, key)
        assert response.ok and response.value == value
