"""End-to-end chaos acceptance: the ISSUE scenario.

A three-drive cluster with ``replication_factor=3, write_quorum=2``
loses one replica mid-workload (plus a permanently flaky second drive)
and must finish a YCSB-style run with **zero failed requests and zero
lost acknowledged writes**, open the victim's circuit breaker visibly,
and converge all replicas once the drive returns.
"""

from repro.core.request import Request
from repro.faults import DriveFaultSpec
from repro.kinetic.retry import RetryPolicy
from repro.telemetry import Telemetry, render_prometheus
from repro.ycsb.workload import READ, WORKLOAD_A, generate_trace

from tests.faults.conftest import CHAOS_SEED, FP, chaos_stack

CHAOS_WORKLOAD = WORKLOAD_A.scaled(
    record_count=60, operation_count=400, value_size=64
)

VICTIM = 1  # loses a crash window mid-run
FLAKY = 2   # drops ~5% of ops for the whole run (retries absorb it)


def _run_scenario(seed, telemetry=None):
    """Load, crash, run, recover; returns everything worth asserting."""
    stack = chaos_stack(
        num_drives=3,
        specs={FLAKY: DriveFaultSpec(drop_rate=0.05)},
        seed=seed,
        retry_policy=RetryPolicy(max_attempts=8),
        telemetry=telemetry,
        replication_factor=3,
        write_quorum=2,
        breaker_cooldown_ops=32,
        anti_entropy_interval=25,
    )
    controller = stack.controller
    trace = generate_trace(CHAOS_WORKLOAD, seed=seed + 1)

    acked: dict[str, bytes] = {}
    for key in trace.load_keys:
        value = b"v0:" + key.encode()
        response = controller.put(FP, key, value)
        assert response.ok, response.error
        acked[key] = value

    # Kill the victim 100 global ops into the measured run; bring it
    # back with enough run left for the breaker to probe it closed.
    start = stack.injector.global_op
    stack.injector.reschedule(
        VICTIM,
        DriveFaultSpec(crash_at=start + 100, recover_at=start + 700),
    )

    errors = 0
    breaker_states = set()
    for index, operation in enumerate(trace.operations):
        if operation.op == READ:
            response = controller.get(FP, operation.key)
            if response.ok:
                # Zero lost acked writes, checked *during* the outage:
                # every read observes the latest acknowledged value.
                assert response.value == acked[operation.key]
            else:
                errors += 1
        else:
            value = f"v{index}:{operation.key}".encode()
            response = controller.handle(
                Request(method="put", key=operation.key, value=value), FP
            )
            if response.ok:
                acked[operation.key] = value
            else:
                errors += 1
        if index % 20 == 0:
            report = controller.health()
            breaker_states.add(report["drives"][VICTIM]["breaker"])
    return stack, acked, errors, breaker_states


def test_acceptance_zero_errors_zero_lost_writes():
    telemetry = Telemetry()
    stack, acked, errors, breaker_states = _run_scenario(
        CHAOS_SEED, telemetry=telemetry
    )
    controller = stack.controller

    # 1. The run completed with zero failed requests: reads failed
    #    over, writes met the 2/3 quorum throughout the outage.
    assert errors == 0

    # 2. The victim's breaker opened while it was down — visible in
    #    the /_health report sampled during the run...
    assert "open" in breaker_states
    # ...and the degradation shows in /_metrics.
    text = render_prometheus(telemetry.registry)
    assert 'pesos_replication_degraded_total{outcome="partial"}' in text
    assert "pesos_drive_health{" in text
    assert "pesos_repair_runs_total" in text

    # 3. The drive is back and the journal remembers what it missed.
    assert stack.cluster.drive(VICTIM).online
    assert controller.anti_entropy.runs > 0  # the request pump fired

    # 4. Anti-entropy converges every replica once the drive is back.
    report = controller.anti_entropy.run_until_converged(max_passes=64)
    assert len(controller.store.journal) == 0, report["pending"]

    # 5. Zero lost acked writes, checked from disk: flush the enclave
    #    caches and re-read every key through the store.
    controller.caches.objects.clear()
    controller.caches.keys.clear()
    for key, value in acked.items():
        response = controller.get(FP, key)
        assert response.ok, f"{key}: {response.error}"
        assert response.value == value

    # 6. Replicas are identical: a full scrub shows every version of
    #    every object healthy on all three drives.
    for key in acked:
        meta = controller.store.read_meta(key)
        scrub = controller.store.scrub(meta)
        assert scrub and all(s == "ok" for _v, _d, s in scrub), key


def test_same_seed_reproduces_identical_chaos():
    """The whole stack — faults, retries, breaker, repair — replays
    identically from one seed."""

    def fingerprint(seed):
        stack, acked, errors, states = _run_scenario(seed)
        return (
            stack.injector.stats.as_tuple(),
            sorted(acked.items()),
            errors,
            tuple(c.retries for c in stack.clients),
            tuple(c.retry_delay_seconds for c in stack.clients),
        )

    assert fingerprint(CHAOS_SEED) == fingerprint(CHAOS_SEED)


def test_different_seeds_diverge():
    def drops(seed):
        stack, _acked, _errors, _states = _run_scenario(seed)
        return stack.injector.stats.drops

    assert drops(CHAOS_SEED) != drops(CHAOS_SEED + 1000)
