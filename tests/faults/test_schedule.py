"""Fault schedules: determinism is the whole point."""

from repro.faults import NO_FAULT, DriveFaultSpec, FaultSchedule

from tests.faults.conftest import CHAOS_SEED

FLAKY = DriveFaultSpec(
    drop_rate=0.05, corrupt_rate=0.02, slow_rate=0.1, slow_seconds=0.004
)


def test_same_seed_identical_timeline():
    a = FaultSchedule("disk-0", FLAKY, CHAOS_SEED)
    b = FaultSchedule("disk-0", FLAKY, CHAOS_SEED)
    assert a.timeline(2000) == b.timeline(2000)


def test_different_seed_different_timeline():
    a = FaultSchedule("disk-0", FLAKY, CHAOS_SEED)
    b = FaultSchedule("disk-0", FLAKY, CHAOS_SEED + 1)
    assert a.timeline(2000) != b.timeline(2000)


def test_different_drives_different_timelines():
    """Per-drive PRF streams are independent, not shared state."""
    a = FaultSchedule("disk-0", FLAKY, CHAOS_SEED)
    b = FaultSchedule("disk-1", FLAKY, CHAOS_SEED)
    assert a.timeline(2000) != b.timeline(2000)


def test_decision_is_order_independent():
    """decide(N) is a pure function of (seed, drive, N): evaluating
    out of order, twice, or interleaved gives the same answers."""
    schedule = FaultSchedule("disk-2", FLAKY, CHAOS_SEED)
    forward = [schedule.decide(op) for op in range(500)]
    backward = [schedule.decide(op) for op in reversed(range(500))]
    assert forward == list(reversed(backward))


def test_drop_every_nth():
    schedule = FaultSchedule("disk-0", DriveFaultSpec(drop_every=5))
    drops = [op for op in range(25) if schedule.decide(op).drop]
    assert drops == [4, 9, 14, 19, 24]


def test_default_spec_injects_nothing():
    schedule = FaultSchedule("disk-0", DriveFaultSpec(), CHAOS_SEED)
    assert schedule.timeline(1000) == []
    # ...and takes the shared no-allocation fast path.
    assert schedule.decide(123) is NO_FAULT


def test_crash_and_recovery_windows():
    spec = DriveFaultSpec(
        crash_at=100, recover_at=200, offline_windows=((10, 20),)
    )
    schedule = FaultSchedule("disk-0", spec)
    assert schedule.scheduled_online(9)
    assert not schedule.scheduled_online(10)
    assert not schedule.scheduled_online(19)
    assert schedule.scheduled_online(20)
    assert schedule.scheduled_online(99)
    assert not schedule.scheduled_online(150)
    assert schedule.scheduled_online(200)


def test_crash_without_recovery_is_permanent():
    schedule = FaultSchedule("disk-0", DriveFaultSpec(crash_at=50))
    assert schedule.scheduled_online(49)
    assert not schedule.scheduled_online(10**9)


def test_corruption_bit_deterministic_and_in_range():
    schedule = FaultSchedule("disk-0", FLAKY, CHAOS_SEED)
    for nbytes in (1, 7, 4096):
        bit = schedule.corruption_bit(42, nbytes)
        assert bit == schedule.corruption_bit(42, nbytes)
        assert 0 <= bit < nbytes * 8
