"""Chaos + overload composition.

Overload shedding and drive faults hit the same request path at the
same time: the admission queue sheds while retries and quorum
degradation slow the drives underneath.  The invariant that must
survive the composition is the acked-write contract — every 2xx put
remains readable with the acknowledged bytes, no matter how many
neighbours were shed or how many drive ops were dropped — and every
shed response still carries its Retry-After hint.
"""

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.engine import ConcurrentEngine
from repro.core.request import Request
from repro.faults import DriveFaultSpec
from repro.kinetic.retry import RetryPolicy

from tests.faults.conftest import CHAOS_SEED, FP, chaos_stack

FLAKY = 2  # drops ~5% of its ops for the whole run


def _scenario(seed):
    stack = chaos_stack(
        num_drives=3,
        specs={FLAKY: DriveFaultSpec(drop_rate=0.05)},
        seed=seed,
        retry_policy=RetryPolicy(max_attempts=8),
        replication_factor=3,
        write_quorum=2,
    )
    admission = AdmissionController(
        AdmissionConfig(queue_depth=6, max_queue_delay=0.02, seed=seed)
    )
    requests = [
        Request(method="put", key=f"load-{index:03d}", value=f"v{index}".encode())
        for index in range(48)
    ]
    with ConcurrentEngine(
        stack.controller,
        seed=seed,
        hardware_threads=4,
        admission=admission,
    ) as engine:
        for index, request in enumerate(requests):
            engine.submit(request, FP, now=float(index))
        responses = engine.run()
        trace = engine.trace_bytes()
    return stack, engine, requests, responses, trace


def test_no_acked_write_lost_under_faults_and_shedding():
    stack, engine, requests, responses, _trace = _scenario(CHAOS_SEED)
    assert engine.stats.shed_requests > 0, "scenario must actually shed"
    shed = [r for r in responses if r.status in (429, 503) and r.error]
    assert all(r.retry_after is not None for r in shed)
    acked = {
        request.key: request.value
        for request, response in zip(requests, responses)
        if response.ok
    }
    assert acked, "scenario must ack some writes"
    for key, value in acked.items():
        read = stack.controller.handle(
            Request(method="get", key=key), FP, 99.0
        )
        assert read.ok, f"acked write {key} unreadable: {read.error}"
        assert read.value == value


def test_composition_is_replayable():
    first = _scenario(CHAOS_SEED)[4]
    second = _scenario(CHAOS_SEED)[4]
    assert b"--admission--" in first
    assert first == second
