"""The fault injector: transparent wrapping, drops, crashes, retries."""

import pytest

from repro.errors import DriveOffline, TransientIOError
from repro.faults import DriveFaultSpec, FaultInjector
from repro.kinetic.client import KineticClient
from repro.kinetic.drive import KineticDrive
from repro.kinetic.retry import NO_RETRY, RetryPolicy

from tests.faults.conftest import CHAOS_SEED


def _wrapped_client(spec, retry_policy=None, seed=CHAOS_SEED):
    injector = FaultInjector(seed=seed)
    drive = injector.wrap(KineticDrive(drive_id="disk-0"), spec)
    client = KineticClient(
        drive=drive,
        identity=KineticDrive.DEMO_IDENTITY,
        hmac_key=KineticDrive.DEMO_KEY,
        retry_policy=retry_policy,
    )
    return injector, drive, client


def test_wrapper_is_transparent():
    injector = FaultInjector()
    inner = KineticDrive(drive_id="disk-7")
    wrapped = injector.wrap(inner, DriveFaultSpec())
    assert wrapped.drive_id == "disk-7"
    assert wrapped.online is True
    assert wrapped.key_count == 0
    wrapped.fail()
    assert inner.online is False
    wrapped.recover()


def test_no_spec_changes_nothing():
    _injector, _drive, client = _wrapped_client(None)
    client.put(b"k", b"v")
    assert client.get(b"k")[0] == b"v"


def test_drop_surfaces_as_transient_error_without_retry():
    _injector, _drive, client = _wrapped_client(DriveFaultSpec(drop_every=1))
    with pytest.raises(TransientIOError):
        client.put(b"k", b"v")


def test_dropped_request_was_not_applied():
    """Drops happen before the drive applies the op: retry-safe."""
    injector, drive, client = _wrapped_client(DriveFaultSpec(drop_every=1))
    with pytest.raises(TransientIOError):
        client.put(b"k", b"v")
    assert drive.key_count == 0
    assert injector.stats.drops == 1


def test_retry_policy_rides_through_drops():
    injector, drive, client = _wrapped_client(
        DriveFaultSpec(drop_every=2), retry_policy=RetryPolicy()
    )
    for i in range(20):
        client.put(b"k%d" % i, b"v")
    assert drive.key_count == 20
    assert injector.stats.drops > 0
    assert client.retries == injector.stats.drops
    assert client.retry_delay_seconds > 0.0  # backoff charged, not slept


def test_no_retry_policy_constant():
    assert NO_RETRY.max_attempts == 1


def test_retry_budget_exhausts():
    """Every attempt dropped: the transient error finally escapes."""
    _injector, _drive, client = _wrapped_client(
        DriveFaultSpec(drop_every=1), retry_policy=RetryPolicy(max_attempts=3)
    )
    with pytest.raises(TransientIOError):
        client.put(b"k", b"v")


def test_backoff_grows_and_is_capped():
    policy = RetryPolicy(
        base_delay=0.002, multiplier=2.0, max_delay=0.005, jitter=0.0
    )
    rng = None  # jitter disabled: rng unused
    assert policy.delay(1, rng) == pytest.approx(0.002)
    assert policy.delay(2, rng) == pytest.approx(0.004)
    assert policy.delay(3, rng) == pytest.approx(0.005)  # capped


def test_crash_window_hits_idle_drives_too():
    """The global clock crashes drive 1 even if only drive 0 serves."""
    injector = FaultInjector(seed=CHAOS_SEED)
    active = injector.wrap(KineticDrive(drive_id="disk-0"), None)
    bystander = injector.wrap(
        KineticDrive(drive_id="disk-1"),
        DriveFaultSpec(crash_at=5, recover_at=10),
    )
    client = KineticClient(
        drive=active,
        identity=KineticDrive.DEMO_IDENTITY,
        hmac_key=KineticDrive.DEMO_KEY,
    )
    for i in range(5):
        client.put(b"k%d" % i, b"v")
    assert not bystander.online  # crashed on schedule, zero traffic
    for i in range(5):
        client.put(b"j%d" % i, b"v")
    assert bystander.online  # recovered on schedule
    assert injector.stats.transitions == 2


def test_offline_drive_raises_drive_offline():
    injector, drive, client = _wrapped_client(DriveFaultSpec(crash_at=0))
    assert not drive.online
    with pytest.raises(DriveOffline):
        client.put(b"k", b"v")


def test_corruption_flips_at_rest_bits():
    """A corrupt GET serves a bit-flipped blob that still validates at
    the wire layer — only content-level checks can catch it."""
    injector, drive, client = _wrapped_client(
        DriveFaultSpec(corrupt_rate=1.0)
    )
    # Corruption only fires on GET; the PUT lands clean.
    client.put(b"k", b"payload-bytes")
    blob, _version = client.get(b"k")  # no wire-level error
    assert blob != b"payload-bytes"
    assert injector.stats.corruptions == 1


def test_slow_ops_charge_virtual_latency():
    injector, _drive, client = _wrapped_client(
        DriveFaultSpec(slow_rate=1.0, slow_seconds=0.25)
    )
    client.put(b"k", b"v")
    assert injector.stats.slow_ops == 1
    assert injector.stats.slow_seconds == pytest.approx(0.25)


def test_same_seed_same_stats():
    def run(seed):
        injector, _drive, client = _wrapped_client(
            DriveFaultSpec(drop_rate=0.2, slow_rate=0.1),
            retry_policy=RetryPolicy(max_attempts=8),
            seed=seed,
        )
        for i in range(50):
            client.put(b"k%d" % i, b"v")
        return injector.stats.as_tuple()

    assert run(CHAOS_SEED) == run(CHAOS_SEED)
    assert run(CHAOS_SEED) != run(CHAOS_SEED + 17)


def test_wrap_cluster_replaces_drives():
    from repro.kinetic.cluster import DriveCluster

    cluster = DriveCluster(num_drives=3)
    injector = FaultInjector(seed=CHAOS_SEED)
    wrapped = injector.wrap_cluster(
        cluster, {1: DriveFaultSpec(drop_every=2)}
    )
    assert cluster.drives == wrapped
    assert wrapped[0].schedule.spec == DriveFaultSpec()
    assert wrapped[1].schedule.spec.drop_every == 2
