"""Freshness under churn: scan-heavy (workload E) rollback chaos.

The satellite contract (ISSUE 8): compose rollback faults with range
scans across 50 seeded scenarios and observe **zero stale acked
reads**.  Scans return key@version listings; every per-key metadata
read behind them goes through the proof-verified path, so a rolled-back
replica can degrade a scan (5xx, shorter range) but can never make it
advertise a stale version as current — and follow-up GETs on scanned
keys must serve the acked bytes or refuse.
"""

import random

import pytest

from repro.core.cache import CacheConfig
from repro.core.freshness import FreshnessEnvironment
from repro.core.request import Request
from repro.faults import DriveFaultSpec
from repro.kinetic.retry import RetryPolicy
from repro.ycsb.workload import WORKLOAD_E, generate_trace

from tests.faults.conftest import CHAOS_SEED, FP, chaos_stack

BASE = CHAOS_SEED * 1000 + 700


def _freshness_stack(seed, specs=None):
    stack = chaos_stack(
        num_drives=3,
        specs=specs,
        seed=seed,
        retry_policy=RetryPolicy(max_attempts=8),
        freshness_env=FreshnessEnvironment.ephemeral(),
        replication_factor=3,
        write_quorum=2,
        cache=CacheConfig(object_bytes=1, key_bytes=1),
        anti_entropy_interval=20,
    )
    assert not stack.controller.freshness.forked
    return stack


def _scan_keys(response):
    if not response.value:
        return {}
    return dict(
        line.split("@") for line in response.value.decode().splitlines()
    )


@pytest.mark.parametrize("offset", range(50))
def test_scan_heavy_chaos_serves_no_stale_acked_reads(offset):
    """Workload-E-shaped traffic (mostly scans + follow-up reads, a few
    overwrites) while one drive rolls back mid-run: every successful
    read returns the acked bytes, every successful scan advertises only
    current versions, and refusals are 5xx — never stale data."""
    seed = BASE + offset
    rng = random.Random(seed)
    stack = _freshness_stack(
        seed, specs={2: DriveFaultSpec(replay_rate=0.15, drop_rate=0.02)}
    )
    controller = stack.controller

    keys = [f"user{index:012d}" for index in range(8)]
    acked = {}
    versions = {}
    for key in keys:
        value = b"v0:" + key.encode()
        response = controller.put(FP, key, value)
        assert response.ok, response.error
        acked[key] = value
        versions[key] = response.version
    for key in keys:  # stock the replay buffers with overwrites
        value = b"v1:" + key.encode()
        response = controller.put(FP, key, value)
        if response.ok:
            acked[key] = value
            versions[key] = response.version

    # Arm the rollback: drive 0 snapshots now, silently rolls back a
    # few dozen ops later, mid-scan-storm.
    start = stack.injector.global_op
    stack.injector.reschedule(
        0,
        DriveFaultSpec(
            capture_at=start, rollback_at=start + rng.randrange(5, 40)
        ),
    )

    # Scan-length distribution straight from the workload-E generator.
    trace = generate_trace(
        WORKLOAD_E.scaled(
            record_count=len(keys),
            operation_count=40,
            max_scan_length=len(keys),
        ),
        seed=seed,
    )
    scan_lengths = [
        op.scan_length for op in trace.operations if op.op == "scan"
    ]

    stale = []
    for index in range(40):
        dice = rng.random()
        if dice < 0.15:  # overwrite: keeps versions moving under attack
            key = rng.choice(keys)
            value = f"w{index}:{key}".encode()
            response = controller.put(FP, key, value)
            if response.ok:
                acked[key] = value
                versions[key] = response.version
        elif dice < 0.75:  # range scan from a random start key
            start_key = rng.choice(keys)
            count = scan_lengths[index % len(scan_lengths)]
            response = controller.handle(
                Request(method="scan", key=start_key, scan_count=count), FP
            )
            if response.ok:
                for key, version in _scan_keys(response).items():
                    if key in versions and int(version) < versions[key]:
                        stale.append(("scan", key, version, versions[key]))
            else:
                assert response.status >= 500, (response.status, response.error)
        else:  # follow-up point read
            key = rng.choice(keys)
            response = controller.get(FP, key)
            if response.ok:
                if response.value != acked[key]:
                    stale.append(("get", key, response.value, acked[key]))
            else:
                assert response.status >= 500, (key, response.status)
    assert not stale, f"stale acked reads served: {stale}"
    assert stack.injector.stats.rollbacks == 1

    # Attack over: faults cleared, anti-entropy converges, and a full
    # scan + read-back returns every acked value at its final version.
    for index in range(3):
        stack.injector.reschedule(index, DriveFaultSpec())
    controller.anti_entropy.run_until_converged()
    response = controller.handle(
        Request(method="scan", key=keys[0], scan_count=len(keys)), FP
    )
    assert response.ok
    final = _scan_keys(response)
    assert set(final) == set(keys)
    for key in keys:
        assert int(final[key]) == versions[key], key
        read = controller.get(FP, key)
        assert read.ok and read.value == acked[key]
