"""Byte helpers: XOR and size parsing/formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bytesutil import fmt_size, parse_size, xor_bytes


def test_xor_basic():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"


def test_xor_identity():
    data = b"hello world"
    assert xor_bytes(data, bytes(len(data))) == data


def test_xor_self_is_zero():
    data = b"pesos"
    assert xor_bytes(data, data) == bytes(len(data))


def test_xor_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"abc")


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
def test_xor_involution(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    assert xor_bytes(xor_bytes(a, b), b) == a


@pytest.mark.parametrize(
    "text,expected",
    [
        ("0", 0),
        ("512", 512),
        ("1KB", 1024),
        ("96MB", 96 * 1024 * 1024),
        ("1 kb", 1024),
        ("1.5KB", 1536),
        ("4TB", 4 * 1024**4),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize(
    "nbytes,expected",
    [(0, "0B"), (512, "512B"), (1024, "1KB"), (1536, "1.5KB")],
)
def test_fmt_size(nbytes, expected):
    assert fmt_size(nbytes) == expected


def test_fmt_size_mb():
    assert fmt_size(96 * 1024 * 1024) == "96MB"
