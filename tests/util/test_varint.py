"""Varint encode/decode round-trips and error handling."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.varint import (
    VarintError,
    decode_varint,
    encode_varint,
    read_varint,
    write_varint,
)


def test_zero_encodes_to_single_byte():
    assert encode_varint(0) == b"\x00"


def test_small_values_single_byte():
    for value in range(128):
        assert encode_varint(value) == bytes([value])


def test_128_uses_two_bytes():
    assert encode_varint(128) == b"\x80\x01"


def test_decode_known_value():
    assert decode_varint(b"\x80\x01") == (128, 2)


def test_decode_with_offset():
    data = b"\xff" + encode_varint(300)
    value, end = decode_varint(data, offset=1)
    assert value == 300
    assert end == 1 + len(encode_varint(300))


def test_negative_rejected():
    with pytest.raises(VarintError):
        encode_varint(-1)


def test_truncated_rejected():
    with pytest.raises(VarintError):
        decode_varint(b"\x80")


def test_overlong_rejected():
    with pytest.raises(VarintError):
        decode_varint(b"\x80" * 10 + b"\x01")


def test_stream_roundtrip():
    stream = io.BytesIO()
    for value in (0, 1, 127, 128, 2**32, 2**63):
        write_varint(stream, value)
    stream.seek(0)
    for value in (0, 1, 127, 128, 2**32, 2**63):
        assert read_varint(stream) == value


def test_stream_read_empty_raises():
    with pytest.raises(VarintError):
        read_varint(io.BytesIO())


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_roundtrip_property(value):
    encoded = encode_varint(value)
    decoded, end = decode_varint(encoded)
    assert decoded == value
    assert end == len(encoded)


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=20))
def test_concatenated_varints_decode_in_order(values):
    blob = b"".join(encode_varint(v) for v in values)
    offset = 0
    out = []
    for _ in values:
        value, offset = decode_varint(blob, offset)
        out.append(value)
    assert out == values
    assert offset == len(blob)
