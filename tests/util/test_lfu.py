"""LFU cache semantics: frequency ordering, budgets, aging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.lfu import LFUCache


def test_requires_some_bound():
    with pytest.raises(ValueError):
        LFUCache()


def test_byte_budget_requires_weigher():
    with pytest.raises(ValueError):
        LFUCache(max_bytes=100)


def test_basic_put_get():
    cache = LFUCache(max_entries=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default=-1) == -1


def test_replace_updates_value():
    cache = LFUCache(max_entries=4)
    cache.put("a", 1)
    cache.put("a", 2)
    assert cache.get("a") == 2
    assert len(cache) == 1


def test_evicts_least_frequent():
    cache = LFUCache(max_entries=2)
    cache.put("hot", 1)
    cache.put("cold", 2)
    cache.get("hot")
    cache.get("hot")
    cache.put("new", 3)  # evicts "cold" (freq 1) not "hot" (freq 3)
    assert "hot" in cache
    assert "cold" not in cache
    assert "new" in cache


def test_fifo_tiebreak_within_frequency():
    cache = LFUCache(max_entries=2)
    cache.put("first", 1)
    cache.put("second", 2)
    cache.put("third", 3)  # both at freq 1 -> evict oldest ("first")
    assert "first" not in cache
    assert "second" in cache


def test_remove():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    assert cache.remove("a") == 1
    assert cache.remove("a") is None
    assert len(cache) == 0


def test_clear_preserves_stats():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_stats_hit_rate():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_peek_does_not_bump_frequency():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.peek("a")
    assert cache.frequency("a") == 1
    cache.get("a")
    assert cache.frequency("a") == 2


def test_byte_budget_eviction():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("a", b"xxxx")  # 4 bytes
    cache.put("b", b"xxxx")  # 8 bytes total
    cache.put("c", b"xxxx")  # 12 -> evict to fit
    assert cache.total_weight <= 10
    assert "c" in cache


def test_oversized_entry_not_cached():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("big", b"x" * 100)
    assert "big" not in cache
    assert len(cache) == 0


def test_oversized_replacing_existing_removes_it():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("k", b"xx")
    cache.put("k", b"x" * 100)
    assert "k" not in cache


def test_weight_tracked_on_replace():
    cache = LFUCache(max_bytes=100, weigher=len)
    cache.put("k", b"x" * 10)
    cache.put("k", b"x" * 5)
    assert cache.total_weight == 5


def test_aging_halves_frequencies():
    cache = LFUCache(max_entries=10, age_interval=5)
    cache.put("a", 1)
    for _ in range(4):
        cache.get("a")  # freq climbs to 5
    assert cache.frequency("a") == 5
    cache.put("b", 1)
    cache.get("b")  # 5th access since last age -> aging triggers
    assert cache.frequency("a") <= 3


def test_eviction_counter():
    cache = LFUCache(max_entries=1)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.stats.evictions == 1


def test_iteration_lists_keys():
    cache = LFUCache(max_entries=3)
    for key in ("a", "b", "c"):
        cache.put(key, key.upper())
    assert sorted(cache) == ["a", "b", "c"]


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.integers(0, 100)),
        max_size=200,
    )
)
def test_never_exceeds_entry_budget(ops):
    cache = LFUCache(max_entries=3)
    for key, value in ops:
        cache.put(key, value)
        assert len(cache) <= 3


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.binary(max_size=8)),
        max_size=200,
    )
)
def test_never_exceeds_byte_budget(ops):
    cache = LFUCache(max_bytes=16, weigher=len)
    for key, value in ops:
        cache.put(key, value)
        assert cache.total_weight <= 16
        assert cache.total_weight == sum(
            len(cache.peek(k)) for k in cache
        )
