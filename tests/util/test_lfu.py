"""LFU cache semantics: frequency ordering, budgets, aging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.lfu import LFUCache


def test_requires_some_bound():
    with pytest.raises(ValueError):
        LFUCache()


def test_byte_budget_requires_weigher():
    with pytest.raises(ValueError):
        LFUCache(max_bytes=100)


def test_basic_put_get():
    cache = LFUCache(max_entries=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", default=-1) == -1


def test_replace_updates_value():
    cache = LFUCache(max_entries=4)
    cache.put("a", 1)
    cache.put("a", 2)
    assert cache.get("a") == 2
    assert len(cache) == 1


def test_evicts_least_frequent():
    cache = LFUCache(max_entries=2)
    cache.put("hot", 1)
    cache.put("cold", 2)
    cache.get("hot")
    cache.get("hot")
    cache.put("new", 3)  # evicts "cold" (freq 1) not "hot" (freq 3)
    assert "hot" in cache
    assert "cold" not in cache
    assert "new" in cache


def test_fifo_tiebreak_within_frequency():
    cache = LFUCache(max_entries=2)
    cache.put("first", 1)
    cache.put("second", 2)
    cache.put("third", 3)  # both at freq 1 -> evict oldest ("first")
    assert "first" not in cache
    assert "second" in cache


def test_remove():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    assert cache.remove("a") == 1
    assert cache.remove("a") is None
    assert len(cache) == 0


def test_clear_preserves_stats():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_stats_hit_rate():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_peek_does_not_bump_frequency():
    cache = LFUCache(max_entries=2)
    cache.put("a", 1)
    cache.peek("a")
    assert cache.frequency("a") == 1
    cache.get("a")
    assert cache.frequency("a") == 2


def test_byte_budget_eviction():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("a", b"xxxx")  # 4 bytes
    cache.put("b", b"xxxx")  # 8 bytes total
    cache.put("c", b"xxxx")  # 12 -> evict to fit
    assert cache.total_weight <= 10
    assert "c" in cache


def test_oversized_entry_not_cached():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("big", b"x" * 100)
    assert "big" not in cache
    assert len(cache) == 0


def test_oversized_replacing_existing_removes_it():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("k", b"xx")
    cache.put("k", b"x" * 100)
    assert "k" not in cache


def test_weight_tracked_on_replace():
    cache = LFUCache(max_bytes=100, weigher=len)
    cache.put("k", b"x" * 10)
    cache.put("k", b"x" * 5)
    assert cache.total_weight == 5


def test_aging_halves_frequencies():
    cache = LFUCache(max_entries=10, age_interval=5)
    cache.put("a", 1)
    for _ in range(4):
        cache.get("a")  # freq climbs to 5
    assert cache.frequency("a") == 5
    cache.put("b", 1)
    cache.get("b")  # 5th access since last age -> aging triggers
    assert cache.frequency("a") <= 3


def test_eviction_counter():
    cache = LFUCache(max_entries=1)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.stats.evictions == 1


def test_iteration_lists_keys():
    cache = LFUCache(max_entries=3)
    for key in ("a", "b", "c"):
        cache.put(key, key.upper())
    assert sorted(cache) == ["a", "b", "c"]


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.integers(0, 100)),
        max_size=200,
    )
)
def test_never_exceeds_entry_budget(ops):
    cache = LFUCache(max_entries=3)
    for key, value in ops:
        cache.put(key, value)
        assert len(cache) <= 3


@given(
    st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.binary(max_size=8)),
        max_size=200,
    )
)
def test_never_exceeds_byte_budget(ops):
    cache = LFUCache(max_bytes=16, weigher=len)
    for key, value in ops:
        cache.put(key, value)
        assert cache.total_weight <= 16
        assert cache.total_weight == sum(
            len(cache.peek(k)) for k in cache
        )


# -- oversized entries (byte-budget edge cases) -----------------------------

def test_oversized_insert_rejected_and_counted():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("big", b"x" * 11)
    assert "big" not in cache
    assert cache.total_weight == 0
    assert cache.stats.rejected_oversize == 1
    assert cache.stats.inserts == 0
    assert cache.stats.evictions == 0


def test_oversized_replace_drops_stale_entry_without_corrupting_weight():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("k", b"x" * 4)
    cache.put("other", b"y" * 3)
    cache.put("k", b"x" * 11)  # replacement outweighs the whole budget
    # The stale 4-byte value must not survive (it no longer reflects
    # the caller's write), and the accounting must not leak its weight.
    assert "k" not in cache
    assert cache.peek("other") == b"y" * 3
    assert cache.total_weight == 3
    assert cache.stats.rejected_oversize == 1
    assert cache.stats.evictions == 1


def test_exempt_key_evictable_only_when_alone():
    cache = LFUCache(max_bytes=8, weigher=len)
    cache.put("solo", b"x" * 5)
    cache.put("solo", b"x" * 8)  # fits exactly; nothing else to evict
    assert cache.peek("solo") == b"x" * 8
    assert cache.total_weight == 8
    cache.put("other", b"y" * 4)  # over budget: the exempt key stays
    assert "other" in cache
    assert "solo" not in cache or cache.total_weight <= 8


def test_replace_with_heavier_value_evicts_others_not_self():
    cache = LFUCache(max_bytes=10, weigher=len)
    cache.put("a", b"x" * 3)
    cache.put("b", b"y" * 3)
    cache.put("a", b"x" * 9)  # fits the budget, but forces b out
    assert cache.peek("a") == b"x" * 9
    assert "b" not in cache
    assert cache.total_weight == 9


def test_clear_resets_aging_counter():
    cache = LFUCache(max_entries=10, age_interval=4)
    cache.put("a", 1)
    for _ in range(3):
        cache.get("a")  # 3 accesses into the 4-access aging epoch
    cache.clear()
    cache.put("b", 1)
    cache.get("b")  # must NOT trigger aging (fresh epoch)
    assert cache.frequency("b") == 2
    cache.get("b")
    cache.get("b")
    assert cache.frequency("b") == 4
    cache.get("b")  # 4th access since clear: aging fires now
    assert cache.frequency("b") == 2


# -- aging internals under seeded access traces -----------------------------

def _check_structure(cache):
    """Bucket chain and index agree after any operation sequence."""
    seen = {}
    bucket = cache._head
    prev = None
    last_freq = 0
    while bucket:
        assert bucket.keys, "empty bucket left linked"
        assert bucket.prev is prev
        assert bucket.freq > last_freq, "chain not strictly increasing"
        for key in bucket.keys:
            seen[key] = bucket
        last_freq = bucket.freq
        prev = bucket
        bucket = bucket.next
    assert seen.keys() == cache._values.keys()
    assert cache._key_bucket == seen


@given(
    st.integers(0, 2**32 - 1),
    st.integers(2, 6),
)
def test_maybe_age_preserves_structure_and_fifo(trace_seed, interval):
    import random as _random

    rng = _random.Random(trace_seed)
    cache = LFUCache(max_entries=6, age_interval=interval)
    keys = "abcdefgh"
    inserted = []
    for _step in range(60):
        key = rng.choice(keys)
        if rng.random() < 0.5:
            if key not in cache:
                inserted.append(key)
            cache.put(key, key)
        else:
            cache.get(key)
        _check_structure(cache)
    # Aging halves frequencies but must never invent new ones: every
    # surviving frequency is >= 1 and the victim scan still terminates.
    for key in cache:
        assert cache.frequency(key) >= 1


@given(st.integers(0, 2**32 - 1))
def test_aging_merge_preserves_bucket_fifo(trace_seed):
    import random as _random

    rng = _random.Random(trace_seed)
    # age_interval=1: every touch triggers an aging pass, so merged
    # buckets form constantly.  Insertion order within a bucket is the
    # eviction order; a merge that reversed it would change victims.
    cache = LFUCache(max_entries=4, age_interval=1)
    for step in range(40):
        key = f"k{rng.randrange(6)}"
        cache.put(key, step)
        _check_structure(cache)
        bucket = cache._head
        while bucket:
            assert list(bucket.keys) == [
                k for k in cache._key_bucket if cache._key_bucket[k] is bucket
            ]
            bucket = bucket.next
