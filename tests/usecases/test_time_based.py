"""Time-based storage (§5.2): capsules, leases, trust chains."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.usecases.time_based import TimeAuthority, TimeVault, time_policy
from tests.usecases.conftest import ALICE, BOB

RELEASE = 1_000_000


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("clock-ca", key_bits=512)


@pytest.fixture(scope="module")
def authority(ca):
    return TimeAuthority(ca, key_bits=512)


@pytest.fixture()
def vault(controller, ca, authority):
    controller.authority_keys[ca.public_key.fingerprint()] = ca.public_key
    return TimeVault(controller, authority, ca.public_key.fingerprint())


def test_policy_mode_validation():
    with pytest.raises(ValueError):
        time_policy("fp", 1, "owner", mode="bogus")


def test_capsule_sealed_before_release(vault):
    vault.seal_until(ALICE, "secret-doc", b"classified", RELEASE)
    early = vault.open_at(BOB, "secret-doc", wall_clock=RELEASE - 1000)
    assert early.status == 403


def test_capsule_opens_after_release(vault):
    vault.seal_until(ALICE, "secret-doc", b"classified", RELEASE)
    late = vault.open_at(BOB, "secret-doc", wall_clock=RELEASE + 10)
    assert late.ok
    assert late.value == b"classified"


def test_read_without_certificate_denied(vault):
    vault.seal_until(ALICE, "secret-doc", b"classified", RELEASE)
    bare = vault.controller.get(BOB, "secret-doc", now=float(RELEASE + 10))
    assert bare.status == 403


def test_owner_can_update_capsule_before_release(vault):
    vault.seal_until(ALICE, "doc", b"v0", RELEASE)
    assert vault.controller.put(ALICE, "doc", b"v1").ok
    assert vault.controller.put(BOB, "doc", b"evil").status == 403


def test_lease_blocks_updates_until_expiry(vault, authority):
    vault.seal_until(ALICE, "retained", b"evidence", RELEASE, mode="lease")
    # Reads are open under a lease.
    assert vault.controller.get(BOB, "retained").ok
    # Owner cannot modify before expiry without a time certificate.
    assert vault.controller.put(ALICE, "retained", b"redacted").status == 403
    # After expiry, owner presents a time certificate and succeeds.
    from repro.core.request import Request

    session = vault.controller.sessions.connect(ALICE, now=float(RELEASE + 5))
    chain = authority.chain_for(RELEASE + 5, nonce=session.nonce)
    response = vault.controller.handle(
        Request(
            method="put", key="retained", value=b"archived",
            certificates=chain,
        ),
        ALICE,
        now=float(RELEASE + 5),
    )
    assert response.ok


def test_stale_time_certificate_rejected(vault, authority):
    """A certificate from after release replayed later... still works,
    but one *nonce-bound to another session* does not."""
    vault.seal_until(ALICE, "doc2", b"data", RELEASE)
    vault.controller.sessions.connect(BOB, now=float(RELEASE + 10))
    wrong_nonce_chain = authority.chain_for(RELEASE + 10, nonce="stolen")
    from repro.core.request import Request

    response = vault.controller.handle(
        Request(method="get", key="doc2", certificates=wrong_nonce_chain),
        BOB,
        now=float(RELEASE + 10),
    )
    assert response.status == 403


def test_forged_time_certificate_rejected(vault, ca):
    """A time statement from an unendorsed key is ignored."""
    rogue = TimeAuthority(CertificateAuthority("rogue", key_bits=512),
                          key_bits=512)
    vault.seal_until(ALICE, "doc3", b"data", RELEASE)
    from repro.core.request import Request

    session = vault.controller.sessions.connect(BOB, now=float(RELEASE + 10))
    chain = rogue.chain_for(RELEASE + 10, nonce=session.nonce)
    response = vault.controller.handle(
        Request(method="get", key="doc3", certificates=chain),
        BOB,
        now=float(RELEASE + 10),
    )
    assert response.status == 403
