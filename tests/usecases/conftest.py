"""Fixtures for use-case tests."""

import pytest

from repro.core.controller import PesosController
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

ALICE = "fp-alice"
BOB = "fp-bob"
CAROL = "fp-carol"
ADMIN = "fp-admin"


@pytest.fixture()
def controller():
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(clients, storage_key=b"k" * 32)
