"""Content server (§5.1): per-object ACL enforcement."""

import pytest

from repro.errors import ConfigurationError
from repro.usecases.content_server import ContentServer, acl_policy
from tests.usecases.conftest import ADMIN, ALICE, BOB, CAROL


@pytest.fixture()
def server(controller):
    return ContentServer(controller, admin_fingerprint=ADMIN)


def test_acl_policy_renders_paper_example():
    source = acl_policy(
        readers=["Kalice", "Kbob"], writers=["Kalice"], deleters=["Kadmin"]
    )
    assert "read :- sessionKeyIs(k'Kalice') \\/ sessionKeyIs(k'Kbob')" in source
    assert "update :- sessionKeyIs(k'Kalice')" in source
    assert "delete :- sessionKeyIs(k'Kadmin')" in source


def test_acl_policy_needs_someone():
    with pytest.raises(ConfigurationError):
        acl_policy(readers=[], writers=[])


def test_readers_can_fetch(server):
    server.publish(ALICE, "article", b"content", readers=[ALICE, BOB])
    assert server.fetch(ALICE, "article").value == b"content"
    assert server.fetch(BOB, "article").value == b"content"


def test_non_reader_denied(server):
    server.publish(ALICE, "article", b"content", readers=[ALICE, BOB])
    assert server.fetch(CAROL, "article").status == 403


def test_only_writers_update(server):
    server.publish(
        ALICE, "article", b"v0", readers=[ALICE, BOB], writers=[ALICE]
    )
    denied = server.controller.put(BOB, "article", b"vandalism")
    assert denied.status == 403
    assert server.controller.put(ALICE, "article", b"v1").ok
    assert server.fetch(BOB, "article").value == b"v1"


def test_admin_deletes(server):
    server.publish(ALICE, "article", b"v", readers=[ALICE])
    assert server.remove(ALICE, "article").status == 403
    assert server.remove(ADMIN, "article").ok
    assert server.fetch(ALICE, "article").status == 404


def test_policies_reused_across_objects(server):
    server.publish(ALICE, "a", b"1", readers=[ALICE, BOB])
    server.publish(ALICE, "b", b"2", readers=[ALICE, BOB])
    # Same ACL -> same policy id -> 1:M policy-to-object mapping.
    meta_a = server.controller._get_meta("a")
    meta_b = server.controller._get_meta("b")
    assert meta_a.policy_id == meta_b.policy_id


def test_distinct_acls_get_distinct_policies(server):
    server.publish(ALICE, "a", b"1", readers=[ALICE])
    server.publish(ALICE, "b", b"2", readers=[BOB, ALICE])
    assert (
        server.controller._get_meta("a").policy_id
        != server.controller._get_meta("b").policy_id
    )
