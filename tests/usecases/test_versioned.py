"""Versioned store (§5.3): version discipline and history."""

import pytest

from repro.usecases.versioned import VersionedStore, versioned_policy
from tests.usecases.conftest import ALICE, BOB


@pytest.fixture()
def store(controller):
    return VersionedStore(controller)


def test_create_at_version_zero(store):
    assert store.put(ALICE, "doc", b"v0", expected_version=0).ok


def test_create_at_nonzero_rejected(store):
    assert store.put(ALICE, "doc", b"v0", expected_version=3).status == 403


def test_update_requires_successor_version(store):
    store.put(ALICE, "doc", b"v0", expected_version=0)
    assert store.put(ALICE, "doc", b"v1", expected_version=1).ok
    # Re-using an old version number is a conflict -> denied.
    assert store.put(ALICE, "doc", b"v1b", expected_version=1).status == 403
    # Skipping ahead is denied too.
    assert store.put(ALICE, "doc", b"v9", expected_version=9).status == 403


def test_update_without_version_argument_denied(store, controller):
    store.put(ALICE, "doc", b"v0", expected_version=0)
    assert controller.put(ALICE, "doc", b"oops").status == 403


def test_lost_update_detected(store):
    """Two clients racing from the same version: second writer loses."""
    store.put(ALICE, "doc", b"v0", expected_version=0)
    store.put(ALICE, "doc", b"alice-edit", expected_version=1)
    assert store.put(BOB, "doc", b"bob-edit", expected_version=1).status == 403


def test_history_preserved(store):
    store.put(ALICE, "doc", b"v0", expected_version=0)
    store.put(ALICE, "doc", b"v1", expected_version=1)
    store.put(ALICE, "doc", b"v2", expected_version=2)
    assert store.history(ALICE, "doc") == [b"v0", b"v1", b"v2"]


def test_old_versions_readable(store):
    store.put(ALICE, "doc", b"v0", expected_version=0)
    store.put(ALICE, "doc", b"v1", expected_version=1)
    assert store.get(ALICE, "doc", version=0).value == b"v0"
    assert store.get(BOB, "doc").value == b"v1"


def test_writer_restricted_policy():
    source = versioned_policy(writers=["fp-alice"])
    assert "sessionKeyIs(k'fp-alice')" in source
    assert source.count("objId(this, NULL)") == 1


def test_writer_restriction_enforced(controller):
    store = VersionedStore(controller, writers=[ALICE])
    assert store.put(ALICE, "doc", b"v0", expected_version=0).ok
    assert store.put(BOB, "doc", b"v1", expected_version=1).status == 403
    assert store.put(ALICE, "doc", b"v1", expected_version=1).ok
