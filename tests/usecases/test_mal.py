"""Mandatory access logging (§5.4): intent-before-access."""

import pytest

from repro.errors import PesosError
from repro.usecases.mal import MalStore, read_intent, write_intent
from tests.usecases.conftest import ALICE, BOB


@pytest.fixture()
def mal(controller):
    store = MalStore(controller)
    store.protect(ALICE, "record", b"initial state")
    return store


def test_protect_creates_object_and_log(mal, controller):
    assert controller._get_meta("record").exists
    assert controller._get_meta("record.log").exists


def test_logged_read_succeeds(mal):
    response = mal.read(BOB, "record")
    assert response.ok
    assert response.value == b"initial state"


def test_unlogged_read_denied(mal):
    assert mal.unlogged_read(BOB, "record").status == 403


def test_read_granted_only_after_matching_entry(mal):
    # Bob logs a read; Carol still cannot read (her intent is absent).
    mal.read(BOB, "record")
    assert mal.unlogged_read("fp-carol", "record").status == 403


def test_logged_write_succeeds_and_is_visible(mal):
    response = mal.write(BOB, "record", b"updated by bob")
    assert response.ok
    assert mal.read(ALICE, "record").value == b"updated by bob"


def test_unlogged_write_denied(mal, controller):
    from repro.core.request import Request

    target = controller._get_meta("record")
    response = controller.handle(
        Request(
            method="put",
            key="record",
            value=b"sneaky",
            version=target.current_version + 1,
        ),
        BOB,
    )
    assert response.status == 403


def test_write_intent_must_match_content(mal, controller):
    """An intent logged for different content does not authorize."""
    import hashlib

    from repro.core.request import Request

    target = controller._get_meta("record")
    version = target.current_version
    current_hash = target.versions[version].content_hash
    wrong_hash = hashlib.sha256(b"what bob said he would write").hexdigest()
    mal._append_log(
        BOB,
        "record",
        write_intent("record", version, current_hash, wrong_hash, BOB),
    )
    response = controller.handle(
        Request(
            method="put",
            key="record",
            value=b"what bob actually writes",
            version=version + 1,
        ),
        BOB,
    )
    assert response.status == 403


def test_audit_trail_records_history(mal):
    mal.read(BOB, "record")
    mal.write(BOB, "record", b"v1")
    trail = mal.audit_trail(ALICE, "record")
    assert any("'read'" in line and "fp-bob" in line for line in trail)
    assert any("'write'" in line for line in trail)


def test_intent_renderers():
    assert read_intent("k", 3, "fp") == "'read'('k', 3, k'fp')"
    line = write_intent("k", 3, "aa", "bb", "fp")
    assert line == "'write'('k', 3, h'aa', h'bb', k'fp')"


def test_log_is_append_only(mal, controller):
    """The log's versioned policy rejects overwriting old entries."""
    from repro.core.request import Request

    response = controller.handle(
        Request(method="put", key="record.log", value=b"", version=0),
        BOB,
    )
    assert response.status == 403


def test_read_of_unprotected_object_raises(mal):
    with pytest.raises(PesosError):
        mal.read(BOB, "unknown-object")


def test_intents_do_not_transfer_between_objects(mal, controller):
    mal2 = MalStore(controller)
    mal2.protect(ALICE, "other", b"other state")
    mal.read(BOB, "record")
    # Bob's intent for "record" must not open "other".
    assert mal2.unlogged_read(BOB, "other").status == 403
