"""Hash-chained audit log: tamper evidence, ring anchors, sealing."""

import pytest

from repro.sgx.auditlog import GENESIS, AuditLog
from repro.sgx.enclave import Enclave, EnclaveBinary


def _fill(log, count, start=0):
    for index in range(start, start + count):
        log.append(
            vnow=float(index),
            session=f"fp-{index % 3}",
            operation="read",
            key=f"k-{index}",
            decision="allow",
            policy_hash="abc123",
            clause_path="read/clause[0]",
        )


def test_empty_log_verifies_at_genesis():
    log = AuditLog()
    assert log.head == GENESIS
    assert log.verify() == {
        "ok": True, "checked": 0, "head": GENESIS, "first_bad_seq": None,
    }


def test_append_advances_head_and_chains_records():
    log = AuditLog()
    first = log.append(1.0, "fp-a", "read", "k", "allow")
    second = log.append(2.0, "fp-a", "write", "k", "deny")
    assert first.prev_hash == GENESIS
    assert second.prev_hash == first.entry_hash
    assert log.head == second.entry_hash
    assert len(log) == 2
    assert log.verify()["ok"]


def test_single_flipped_byte_detected():
    log = AuditLog()
    _fill(log, 8)
    victim = log.records[3]
    victim.key = victim.key[:-1] + "X"
    report = log.verify()
    assert not report["ok"]
    assert report["first_bad_seq"] == 3


def test_tampered_entry_hash_detected():
    log = AuditLog()
    _fill(log, 4)
    log.records[1].entry_hash = "0" * 64
    report = log.verify()
    assert not report["ok"]
    # The forged hash itself fails seq 1; even if it matched the
    # record, seq 2's prev link would break.
    assert report["first_bad_seq"] == 1


def test_tampered_head_detected():
    log = AuditLog()
    _fill(log, 4)
    log.head = "f" * 64
    assert not log.verify()["ok"]


def test_decision_swap_detected():
    # The canonical attack: rewrite a deny into an allow.
    log = AuditLog()
    log.append(1.0, "fp-a", "read", "k", "deny")
    log.append(2.0, "fp-a", "read", "k", "allow")
    log.records[0].decision = "allow"
    report = log.verify()
    assert not report["ok"]
    assert report["first_bad_seq"] == 0


def test_ring_eviction_promotes_anchor():
    log = AuditLog(capacity=4)
    _fill(log, 10)
    assert len(log) == 10
    assert len(log.records) == 4
    # The anchor is the newest evicted entry's hash, so the retained
    # window still verifies and the head commits to all 10 records.
    assert log.anchor == log.records[0].prev_hash
    assert log.anchor != GENESIS
    assert log.verify()["ok"]


def test_tamper_detected_after_eviction():
    log = AuditLog(capacity=4)
    _fill(log, 10)
    log.records[0].session = "fp-evil"
    assert not log.verify()["ok"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AuditLog(capacity=0)


def test_replay_reproduces_head():
    log = AuditLog()
    _fill(log, 6)
    assert AuditLog.replay(log.records) == log.head


def test_replay_from_anchor_after_eviction():
    log = AuditLog(capacity=3)
    _fill(log, 7)
    assert AuditLog.replay(log.records, anchor=log.anchor) == log.head


def test_same_appends_give_identical_chains():
    first, second = AuditLog(), AuditLog()
    _fill(first, 12)
    _fill(second, 12)
    assert first.head == second.head
    assert [r.entry_hash for r in first.records] == [
        r.entry_hash for r in second.records
    ]


def test_divergent_appends_give_different_heads():
    first, second = AuditLog(), AuditLog()
    _fill(first, 4)
    _fill(second, 4)
    second.append(9.0, "fp-x", "read", "k", "deny")
    assert first.head != second.head


def test_tail_returns_newest_oldest_first():
    log = AuditLog()
    _fill(log, 5)
    tail = log.tail(2)
    assert [record.seq for record in tail] == [3, 4]


def test_snapshot_shape():
    log = AuditLog(capacity=4)
    _fill(log, 6)
    snap = log.snapshot(limit=3)
    assert snap["length"] == 6
    assert snap["retained"] == 4
    assert snap["capacity"] == 4
    assert snap["head"] == log.head
    assert len(snap["records"]) == 3
    assert snap["records"][-1]["entry_hash"] == log.head


def test_seal_head_roundtrip_and_foreign_enclave_rejected():
    from repro.errors import AttestationError

    binary = EnclaveBinary(name="pesos", content=b"code")
    enclave = Enclave(binary=binary, platform_root_key=b"\x01" * 32)
    log = AuditLog()
    _fill(log, 3)
    blob = log.seal_head(enclave)
    statement = AuditLog.unseal_head(enclave, blob)
    assert statement == {"length": 3, "head": log.head}
    # A different measurement derives a different sealing key.
    other = Enclave(
        binary=binary.tampered(), platform_root_key=b"\x01" * 32
    )
    with pytest.raises(AttestationError):
        AuditLog.unseal_head(other, blob)
