"""Remote attestation: genuine flows and every failure path."""

import hashlib
import secrets

import pytest

from repro.errors import AttestationError
from repro.sgx.attestation import (
    AttestationService,
    SgxPlatform,
    attest_and_provision,
)
from repro.sgx.enclave import EnclaveBinary

BINARY = EnclaveBinary(name="pesos", content=b"controller binary")
SECRETS = {"tls_key": "deadbeef", "disk_account": "pesos-admin"}


@pytest.fixture(scope="module")
def platform():
    return SgxPlatform("machine-1", key_bits=512)


@pytest.fixture()
def service(platform):
    svc = AttestationService()
    svc.trust_platform(platform)
    svc.register_enclave(BINARY.measurement(), SECRETS)
    return svc


def test_genuine_attestation_provisions_secrets(service, platform):
    enclave = platform.launch(BINARY)
    provided = attest_and_provision(service, platform, enclave)
    assert provided == SECRETS
    assert enclave.secrets == SECRETS


def test_tampered_binary_refused(service, platform):
    enclave = platform.launch(BINARY.tampered())
    with pytest.raises(AttestationError, match="not registered"):
        attest_and_provision(service, platform, enclave)


def test_unknown_platform_refused(service):
    rogue = SgxPlatform("rogue-box", key_bits=512)
    enclave = rogue.launch(BINARY)
    with pytest.raises(AttestationError, match="unknown platform"):
        attest_and_provision(service, rogue, enclave)


def test_forged_quote_signature_refused(service, platform):
    enclave = platform.launch(BINARY)
    response_key = secrets.token_bytes(16)
    quote = platform.quote(enclave, hashlib.sha256(response_key).digest())
    from dataclasses import replace

    forged = replace(quote, measurement=BINARY.measurement(), signature=b"\x00" * 64)
    with pytest.raises(AttestationError, match="signature"):
        service.attest(forged, response_key)


def test_response_key_must_match_report_data(service, platform):
    enclave = platform.launch(BINARY)
    quote = platform.quote(enclave, hashlib.sha256(b"A" * 16).digest())
    with pytest.raises(AttestationError, match="report data"):
        service.attest(quote, b"B" * 16)


def test_quote_requires_matching_platform(platform):
    other = SgxPlatform("machine-2", key_bits=512)
    enclave = platform.launch(BINARY)
    with pytest.raises(AttestationError):
        other.quote(enclave, b"\x00" * 32)


def test_provisioning_blob_encrypted_to_response_key(service, platform):
    enclave = platform.launch(BINARY)
    response_key = secrets.token_bytes(16)
    quote = platform.quote(enclave, hashlib.sha256(response_key).digest())
    blob = service.attest(quote, response_key)
    with pytest.raises(AttestationError):
        AttestationService.open_provisioned(blob, secrets.token_bytes(16))


def test_audit_log_records_outcomes(service, platform):
    enclave = platform.launch(BINARY)
    attest_and_provision(service, platform, enclave)
    try:
        attest_and_provision(service, platform, platform.launch(BINARY.tampered()))
    except AttestationError:
        pass
    outcomes = [entry["outcome"] for entry in service.audit_log]
    assert outcomes == ["ok", "unknown-measurement"]


def test_truncated_blob_rejected():
    with pytest.raises(AttestationError):
        AttestationService.open_provisioned(b"x", b"k" * 16)
