"""Cost model invariants the benchmarks rely on."""

from repro.sgx.costs import NATIVE_COSTS, SGX_COSTS


def test_native_has_no_enclave_overheads():
    assert NATIVE_COSTS.syscall_cost() == 0.0
    assert NATIVE_COSTS.boundary_per_byte == 0.0
    assert NATIVE_COSTS.epc_limit is None
    assert NATIVE_COSTS.epc_page_fault == 0.0


def test_sgx_async_cheaper_than_sync():
    assert 0 < SGX_COSTS.syscall_async < SGX_COSTS.syscall_sync


def test_sgx_syscall_cost_uses_async_by_default():
    assert SGX_COSTS.syscall_cost() == SGX_COSTS.syscall_async


def test_sync_ablation_switches_cost():
    sync_model = SGX_COSTS.with_sync_syscalls()
    assert sync_model.syscall_cost() == SGX_COSTS.syscall_sync
    assert sync_model.name.endswith("+sync")
    # Original is unchanged (frozen dataclass copy).
    assert SGX_COSTS.async_syscalls


def test_copy_cost_scales_with_bytes():
    assert SGX_COSTS.copy_cost(2000) > SGX_COSTS.copy_cost(1000)
    assert SGX_COSTS.copy_cost(1000) > NATIVE_COSTS.copy_cost(1000)


def test_encryption_cost_has_fixed_part():
    assert NATIVE_COSTS.encryption_cost(0) == NATIVE_COSTS.encrypt_fixed
    assert NATIVE_COSTS.encryption_cost(4096) > NATIVE_COSTS.encryption_cost(0)


def test_epc_limit_is_96mb():
    assert SGX_COSTS.epc_limit == 96 * 1024 * 1024
