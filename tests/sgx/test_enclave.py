"""Enclave measurement and sealing semantics."""

import secrets

import pytest

from repro.errors import AttestationError, CryptoError
from repro.sgx.enclave import Enclave, EnclaveBinary

BINARY = EnclaveBinary(name="pesos-controller", content=b"\x7fELF controller v1")


def _enclave(binary=BINARY, root=None):
    return Enclave(binary=binary, platform_root_key=root or bytes(32))


def test_measurement_is_deterministic():
    assert BINARY.measurement() == BINARY.measurement()


def test_measurement_changes_on_tamper():
    assert BINARY.measurement() != BINARY.tampered().measurement()


def test_measurement_depends_on_name():
    other = EnclaveBinary(name="other", content=BINARY.content)
    assert BINARY.measurement() != other.measurement()


def test_seal_unseal_roundtrip():
    enclave = _enclave()
    blob = enclave.seal(b"disk credentials")
    assert blob != b"disk credentials"
    assert enclave.unseal(blob) == b"disk credentials"


def test_sealed_data_bound_to_measurement():
    original = _enclave()
    tampered = _enclave(binary=BINARY.tampered())
    blob = original.seal(b"secret")
    with pytest.raises(AttestationError):
        tampered.unseal(blob)


def test_sealed_data_bound_to_platform():
    enclave_a = _enclave(root=secrets.token_bytes(32))
    enclave_b = _enclave(root=secrets.token_bytes(32))
    blob = enclave_a.seal(b"secret")
    with pytest.raises(AttestationError):
        enclave_b.unseal(blob)


def test_unseal_truncated_blob():
    with pytest.raises(AttestationError):
        _enclave().unseal(b"short")


def test_bad_root_key_rejected():
    with pytest.raises(CryptoError):
        Enclave(binary=BINARY, platform_root_key=b"short")


def test_provision_merges_secrets():
    enclave = _enclave()
    enclave.provision({"tls_key": "abc"})
    enclave.provision({"disk_password": "xyz"})
    assert enclave.secrets == {"tls_key": "abc", "disk_password": "xyz"}


def test_memory_footprint_includes_binary():
    enclave = _enclave()
    base = enclave.memory_footprint()
    assert base == BINARY.enclave_bytes
    assert enclave.memory_footprint(caches_bytes=1024) == base + 1024


def test_monotonic_counter_never_goes_backward():
    from repro.sgx.enclave import MonotonicCounter

    counter = MonotonicCounter()
    assert counter.read() == 0
    values = [counter.increment() for _ in range(5)]
    assert values == [1, 2, 3, 4, 5]
    assert counter.read() == 5
    assert counter.bumps == 5
