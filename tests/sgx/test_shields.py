"""File-system shields: transparency, tampering, Iago defenses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntegrityError
from repro.sgx.shields import (
    BLOCK_SIZE,
    HostFileSystem,
    IagoViolation,
    ShieldedFileSystem,
)


@pytest.fixture()
def shield():
    return ShieldedFileSystem(HostFileSystem(), key=b"k" * 32)


def test_write_read_roundtrip(shield):
    shield.write_file("/data/config", b"secret configuration")
    assert shield.read_file("/data/config") == b"secret configuration"


def test_multi_block_files(shield):
    data = bytes(range(256)) * 64  # 16 KiB -> 4 blocks
    shield.write_file("/data/big", data)
    assert shield.read_file("/data/big") == data
    assert shield.file_size("/data/big") == len(data)


def test_empty_file(shield):
    shield.write_file("/data/empty", b"")
    assert shield.read_file("/data/empty") == b""


def test_host_sees_only_ciphertext(shield):
    shield.write_file("/data/f", b"plaintext marker")
    for blob in shield.host.blocks.values():
        assert b"plaintext marker" not in blob


def test_overwrite_shrinks_cleanly(shield):
    shield.write_file("/f", b"x" * (3 * BLOCK_SIZE))
    shield.write_file("/f", b"short")
    assert shield.read_file("/f") == b"short"
    # Stale tail blocks are not left on the host.
    assert ("/f", 2) not in shield.host.blocks


def test_tampered_block_detected(shield):
    shield.write_file("/f", b"data")
    shield.host.tamper("/f")
    with pytest.raises(IntegrityError, match="tampered"):
        shield.read_file("/f")


def test_spliced_block_detected(shield):
    """A valid block from another file must not decrypt here."""
    shield.write_file("/a", b"A" * 100)
    shield.write_file("/b", b"B" * 100)
    shield.host.splice(("/a", 0), ("/b", 0))
    with pytest.raises(IntegrityError):
        shield.read_file("/b")


def test_block_reorder_detected(shield):
    data = b"A" * BLOCK_SIZE + b"B" * BLOCK_SIZE
    shield.write_file("/f", data)
    shield.host.splice(("/f", 0), ("/f", 1))
    with pytest.raises(IntegrityError):
        shield.read_file("/f")


def test_rollback_detected(shield):
    shield.write_file("/f", b"version 1")
    snap = shield.host.snapshot()
    shield.write_file("/f", b"version 2")
    shield.host.restore(snap)  # adversary replays the old disk image
    with pytest.raises(IntegrityError, match="rolled back"):
        shield.read_file("/f")


def test_withheld_block_is_iago(shield):
    shield.write_file("/f", b"data")
    shield.host.delete_file("/f")
    with pytest.raises(IagoViolation, match="withheld"):
        shield.read_file("/f")


def test_oversized_block_is_iago(shield):
    shield.write_file("/f", b"data")
    shield.host.blocks[("/f", 0)] += b"\x00" * (2 * BLOCK_SIZE)
    with pytest.raises(IagoViolation, match="oversized"):
        shield.read_file("/f")


def test_missing_file(shield):
    with pytest.raises(FileNotFoundError):
        shield.read_file("/nope")
    with pytest.raises(FileNotFoundError):
        shield.delete_file("/nope")


def test_delete(shield):
    shield.write_file("/f", b"data")
    shield.delete_file("/f")
    assert shield.list_files() == []
    with pytest.raises(FileNotFoundError):
        shield.read_file("/f")


def test_list_files(shield):
    shield.write_file("/b", b"2")
    shield.write_file("/a", b"1")
    assert shield.list_files() == ["/a", "/b"]


@settings(max_examples=30, deadline=None)
@given(data=st.binary(max_size=3 * BLOCK_SIZE + 17))
def test_roundtrip_property(data):
    shield = ShieldedFileSystem(key=b"k" * 32)
    shield.write_file("/f", data)
    assert shield.read_file("/f") == data
