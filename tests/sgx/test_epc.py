"""EPC paging model: residency, faults, LRU replacement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sgx.epc import PAGE_SIZE, EpcModel


def test_unlimited_epc_never_faults():
    epc = EpcModel(capacity_bytes=None)
    assert epc.touch("heap", 0, 10 * PAGE_SIZE) == 0
    assert epc.total_faults == 0


def test_first_touch_faults_once_per_page():
    epc = EpcModel(capacity_bytes=100 * PAGE_SIZE)
    assert epc.touch("heap", 0, 3 * PAGE_SIZE) == 3
    assert epc.resident_pages == 3


def test_resident_pages_do_not_refault():
    epc = EpcModel(capacity_bytes=100 * PAGE_SIZE)
    epc.touch("heap", 0, 4 * PAGE_SIZE)
    assert epc.touch("heap", 0, 4 * PAGE_SIZE) == 0


def test_partial_page_access_rounds_to_pages():
    epc = EpcModel(capacity_bytes=100 * PAGE_SIZE)
    # 1 byte spanning into the second page -> 2 pages.
    assert epc.touch("heap", PAGE_SIZE - 1, 2) == 2


def test_zero_length_access_is_free():
    epc = EpcModel(capacity_bytes=10 * PAGE_SIZE)
    assert epc.touch("heap", 0, 0) == 0


def test_lru_eviction_when_over_capacity():
    epc = EpcModel(capacity_bytes=2 * PAGE_SIZE)
    epc.touch("a", 0, PAGE_SIZE)
    epc.touch("b", 0, PAGE_SIZE)
    epc.touch("a", 0, PAGE_SIZE)  # refresh "a"
    epc.touch("c", 0, PAGE_SIZE)  # evicts "b" (LRU)
    assert epc.touch("a", 0, PAGE_SIZE) == 0  # still resident
    assert epc.touch("b", 0, PAGE_SIZE) == 1  # was evicted


def test_working_set_exceeding_epc_thrashes():
    epc = EpcModel(capacity_bytes=4 * PAGE_SIZE)
    # Cycle through 8 pages repeatedly: with LRU, every access faults.
    for _ in range(3):
        for page in range(8):
            epc.touch("ws", page * PAGE_SIZE, PAGE_SIZE)
    assert epc.fault_rate() == 1.0


def test_working_set_within_epc_no_steady_state_faults():
    epc = EpcModel(capacity_bytes=8 * PAGE_SIZE)
    for _ in range(3):
        for page in range(4):
            epc.touch("ws", page * PAGE_SIZE, PAGE_SIZE)
    assert epc.total_faults == 4  # cold misses only


def test_evict_region():
    epc = EpcModel(capacity_bytes=100 * PAGE_SIZE)
    epc.touch("a", 0, 2 * PAGE_SIZE)
    epc.touch("b", 0, 3 * PAGE_SIZE)
    assert epc.evict_region("b") == 3
    assert epc.resident_pages == 2


def test_resident_bytes():
    epc = EpcModel(capacity_bytes=100 * PAGE_SIZE)
    epc.touch("a", 0, PAGE_SIZE)
    assert epc.resident_bytes == PAGE_SIZE


def test_invalid_capacity():
    with pytest.raises(ConfigurationError):
        EpcModel(capacity_bytes=0)


@given(
    accesses=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(0, 50 * PAGE_SIZE),
            st.integers(1, 4 * PAGE_SIZE),
        ),
        max_size=60,
    )
)
def test_residency_never_exceeds_capacity(accesses):
    epc = EpcModel(capacity_bytes=8 * PAGE_SIZE)
    for region, offset, length in accesses:
        epc.touch(region, offset, length)
        assert epc.resident_pages <= 8
