"""Async syscall interface: slots, queues, shields, errors."""

import pytest

from repro.errors import ConfigurationError, PesosError
from repro.sgx.syscalls import (
    AsyncSyscallInterface,
    Shield,
    SyscallQueueFull,
)


def _interface(**kwargs):
    iface = AsyncSyscallInterface(**kwargs)
    iface.register_handler("add", lambda a, b: a + b)
    iface.register_handler("echo", lambda x: x)
    return iface


def test_call_roundtrip():
    assert _interface().call("add", 2, 3) == 5


def test_unknown_operation_raises():
    iface = _interface()
    with pytest.raises(PesosError, match="ENOSYS"):
        iface.call("mystery")


def test_handler_exception_propagates():
    iface = _interface()
    iface.register_handler("boom", lambda: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        iface.call("boom")


def test_slots_are_reused():
    iface = _interface(num_slots=1)
    for _ in range(5):
        assert iface.call("echo", "x") == "x"
    assert iface.in_flight == 0


def test_queue_full_when_slots_exhausted():
    iface = _interface(num_slots=2)
    iface.submit("echo", 1)
    iface.submit("echo", 2)
    with pytest.raises(SyscallQueueFull):
        iface.submit("echo", 3)


def test_results_return_in_completion_order():
    iface = _interface(num_slots=4)
    iface.submit("echo", "first")
    iface.submit("echo", "second")
    iface.run_worker()
    assert iface.poll().result == "first"
    assert iface.poll().result == "second"
    assert iface.poll() is None


def test_worker_respects_max_calls():
    iface = _interface(num_slots=4)
    iface.submit("echo", 1)
    iface.submit("echo", 2)
    assert iface.run_worker(max_calls=1) == 1
    assert iface.poll().result == 1
    assert iface.poll() is None


def test_shield_protects_arguments():
    # Model transparent write encryption: data leaves the enclave XORed.
    shield = Shield(protect=lambda v: v[::-1] if isinstance(v, str) else v)
    iface = AsyncSyscallInterface(num_slots=2, shield=shield)
    seen = []
    iface.register_handler("write", lambda data: seen.append(data))
    iface.call("write", "secret")
    assert seen == ["terces"]  # untrusted side never saw plaintext order


def test_shield_unprotects_results():
    shield = Shield(unprotect=lambda v: v.upper() if isinstance(v, str) else v)
    iface = AsyncSyscallInterface(num_slots=2, shield=shield)
    iface.register_handler("read", lambda: "data")
    assert iface.call("read") == "DATA"


def test_shield_validation_detects_iago():
    def validate(request):
        if request.operation == "read" and len(request.result or b"") > 4:
            raise PesosError("Iago: read returned more than requested")

    shield = Shield(validate=validate)
    iface = AsyncSyscallInterface(num_slots=2, shield=shield)
    iface.register_handler("read", lambda: b"way too much data")
    iface.submit("read")
    iface.run_worker()
    with pytest.raises(PesosError, match="Iago"):
        iface.poll()


def test_counters():
    iface = _interface()
    iface.call("echo", 1)
    iface.call("echo", 2)
    assert iface.submitted == 2
    assert iface.completed == 2


def test_needs_at_least_one_slot():
    with pytest.raises(ConfigurationError):
        AsyncSyscallInterface(num_slots=0)
