"""Userspace scheduler: multiplexing, syscall waits, error paths."""

import pytest

from repro.errors import ConfigurationError
from repro.sgx.scheduler import UserspaceScheduler
from repro.sgx.syscalls import AsyncSyscallInterface


def _scheduler(hardware_threads=2):
    iface = AsyncSyscallInterface(num_slots=64)
    iface.register_handler("double", lambda x: 2 * x)
    iface.register_handler("fail", lambda: (_ for _ in ()).throw(IOError("disk")))
    return UserspaceScheduler(iface, hardware_threads=hardware_threads)


def test_single_thread_with_syscall():
    sched = _scheduler()

    def task():
        value = yield ("syscall", "double", (21,))
        return value

    thread = sched.spawn(task())
    sched.run_to_completion()
    assert thread.finished
    assert thread.result == 42


def test_many_threads_multiplex_on_few_cores():
    sched = _scheduler(hardware_threads=2)

    def task(n):
        total = 0
        for _ in range(3):
            total = yield ("syscall", "double", (n,))
        return total

    threads = [sched.spawn(task(i)) for i in range(20)]
    sched.run_to_completion()
    assert all(t.finished for t in threads)
    assert [t.result for t in threads] == [2 * i for i in range(20)]


def test_syscall_error_thrown_into_thread():
    sched = _scheduler()

    def task():
        try:
            yield ("syscall", "fail", ())
        except IOError:
            return "recovered"

    thread = sched.spawn(task())
    sched.run_to_completion()
    assert thread.result == "recovered"


def test_unhandled_thread_error_captured():
    sched = _scheduler()

    def task():
        yield ("syscall", "double", (1,))
        raise ValueError("bug in handler")

    thread = sched.spawn(task())
    sched.run_to_completion()
    assert thread.finished
    assert isinstance(thread.error, ValueError)


def test_voluntary_yield_reschedules():
    sched = _scheduler(hardware_threads=1)
    order = []

    def task(name):
        order.append(f"{name}-a")
        yield "yield"
        order.append(f"{name}-b")
        return name

    sched.spawn(task("t1"))
    sched.spawn(task("t2"))
    sched.run_to_completion()
    assert order == ["t1-a", "t2-a", "t1-b", "t2-b"]


def test_bad_yield_value_fails_thread():
    sched = _scheduler()

    def task():
        yield 12345

    thread = sched.spawn(task())
    sched.run_to_completion()
    assert isinstance(thread.error, ConfigurationError)


def test_context_switches_counted():
    sched = _scheduler()

    def task():
        yield ("syscall", "double", (1,))
        yield ("syscall", "double", (2,))

    sched.spawn(task())
    sched.run_to_completion()
    assert sched.total_context_switches >= 3


def test_thread_without_syscalls_completes():
    sched = _scheduler()

    def task():
        return "done"
        yield  # pragma: no cover - makes this a generator

    thread = sched.spawn(task())
    sched.run_to_completion()
    assert thread.result == "done"


def test_needs_hardware_thread():
    iface = AsyncSyscallInterface()
    with pytest.raises(ConfigurationError):
        UserspaceScheduler(iface, hardware_threads=0)
