"""Workload specs and trace generation."""

import pytest

from repro.errors import ConfigurationError
from repro.ycsb.workload import (
    INSERT,
    READ,
    UPDATE,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WorkloadSpec,
    generate_trace,
    key_name,
)


def _small(spec, records=200, ops=1000):
    return spec.scaled(record_count=records, operation_count=ops)


def test_stock_workload_proportions():
    assert WORKLOAD_A.read_proportion == 0.5
    assert WORKLOAD_B.read_proportion == 0.95
    assert WORKLOAD_C.read_proportion == 1.0
    assert WORKLOAD_D.insert_proportion == 0.05
    assert WORKLOAD_D.distribution == "latest"


def test_paper_defaults():
    assert WORKLOAD_A.record_count == 100_000
    assert WORKLOAD_A.operation_count == 100_000
    assert WORKLOAD_A.value_size == 1024


def test_bad_proportions_rejected():
    with pytest.raises(ConfigurationError):
        WorkloadSpec("X", read_proportion=0.5, update_proportion=0.2)


def test_trace_mix_matches_proportions():
    trace = generate_trace(_small(WORKLOAD_A), seed=1)
    reads = sum(1 for op in trace.operations if op.op == READ)
    assert 0.45 < reads / len(trace) < 0.55


def test_workload_c_is_read_only():
    trace = generate_trace(_small(WORKLOAD_C), seed=2)
    assert all(op.op == READ for op in trace.operations)


def test_workload_d_inserts_fresh_keys():
    trace = generate_trace(_small(WORKLOAD_D), seed=3)
    inserts = [op for op in trace.operations if op.op == INSERT]
    assert inserts
    load_set = set(trace.load_keys)
    assert all(op.key not in load_set for op in inserts)
    # Inserted keys are distinct and sequential.
    assert len({op.key for op in inserts}) == len(inserts)


def test_update_ops_carry_payload_size():
    trace = generate_trace(_small(WORKLOAD_A), seed=4)
    updates = [op for op in trace.operations if op.op == UPDATE]
    assert all(op.value_size == 1024 for op in updates)
    reads = [op for op in trace.operations if op.op == READ]
    assert all(op.value_size == 0 for op in reads)


def test_trace_keys_within_records():
    trace = generate_trace(_small(WORKLOAD_A), seed=5)
    load_set = set(trace.load_keys)
    for op in trace.operations:
        if op.op != INSERT:
            assert op.key in load_set


def test_trace_deterministic_by_seed():
    a = generate_trace(_small(WORKLOAD_A), seed=9)
    b = generate_trace(_small(WORKLOAD_A), seed=9)
    assert a.operations == b.operations
    c = generate_trace(_small(WORKLOAD_A), seed=10)
    assert a.operations != c.operations


def test_scaled_override():
    spec = WORKLOAD_A.scaled(value_size=128, operation_count=10)
    assert spec.value_size == 128
    assert WORKLOAD_A.value_size == 1024  # original untouched


def test_key_name_format():
    assert key_name(7) == "user000000000007"
    assert len(key_name(99_999)) == len("user") + 12
