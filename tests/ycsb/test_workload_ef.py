"""Workloads E and F: trace shape, determinism, end-to-end replay."""

import pytest

from repro.core.controller import PesosController
from repro.core.request import Request
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.ycsb.runner import TraceRunner, load_phase
from repro.ycsb.workload import (
    INSERT,
    RMW,
    SCAN,
    WORKLOAD_A,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WorkloadSpec,
    generate_trace,
    trace_bytes,
)
from repro.errors import ConfigurationError

CLIENT = "fp-ef"


def _controller():
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(clients, storage_key=b"k" * 32)


def test_workload_e_is_scan_heavy():
    trace = generate_trace(
        WORKLOAD_E.scaled(record_count=100, operation_count=2000), seed=3
    )
    ops = [op.op for op in trace.operations]
    scans = ops.count(SCAN)
    inserts = ops.count(INSERT)
    assert scans + inserts == len(ops)
    assert 0.90 < scans / len(ops) < 0.99


def test_workload_e_scan_lengths_in_bounds():
    spec = WORKLOAD_E.scaled(
        record_count=100, operation_count=1000, max_scan_length=25
    )
    trace = generate_trace(spec, seed=5)
    lengths = [
        op.scan_length for op in trace.operations if op.op == SCAN
    ]
    assert lengths
    assert all(1 <= length <= 25 for length in lengths)
    assert len(set(lengths)) > 5  # a distribution, not a constant


def test_workload_f_mixes_reads_and_rmws():
    trace = generate_trace(
        WORKLOAD_F.scaled(record_count=100, operation_count=2000), seed=3
    )
    ops = [op.op for op in trace.operations]
    rmws = ops.count(RMW)
    assert 0.4 < rmws / len(ops) < 0.6
    assert rmws + ops.count("read") == len(ops)


@pytest.mark.parametrize("spec", [WORKLOAD_E, WORKLOAD_F], ids="EF")
def test_same_seed_traces_are_byte_identical(spec):
    small = spec.scaled(record_count=60, operation_count=400)
    first = trace_bytes(generate_trace(small, seed=11))
    second = trace_bytes(generate_trace(small, seed=11))
    assert first == second
    assert trace_bytes(generate_trace(small, seed=12)) != first


def test_adding_ef_left_ad_traces_untouched():
    """The E/F branch logic must not perturb A-D rng sequences: the
    dice/key draw order per operation is part of the replay contract."""
    for spec in (WORKLOAD_A, WORKLOAD_D):
        small = spec.scaled(record_count=40, operation_count=300)
        ops = generate_trace(small, seed=7).operations
        assert not any(op.op in (SCAN, RMW) for op in ops)
        # D still inserts through the else-branch.
        if spec.insert_proportion:
            assert any(op.op == INSERT for op in ops)


def test_proportions_must_sum_to_one():
    with pytest.raises(ConfigurationError):
        WorkloadSpec("bad", read_proportion=0.5, update_proportion=0.2)


def test_workload_e_runs_end_to_end():
    trace = generate_trace(
        WORKLOAD_E.scaled(record_count=40, operation_count=150, value_size=64),
        seed=9,
    )
    controller = _controller()
    load_phase(controller, trace, CLIENT)
    stats = TraceRunner(controller, CLIENT).run(trace)
    assert stats.errors == 0
    assert stats.scans > 0
    assert stats.records_scanned > stats.scans  # scans return ranges
    assert stats.total == 150


def test_workload_f_runs_end_to_end():
    trace = generate_trace(
        WORKLOAD_F.scaled(record_count=40, operation_count=150, value_size=64),
        seed=9,
    )
    controller = _controller()
    load_phase(controller, trace, CLIENT)
    stats = TraceRunner(controller, CLIENT).run(trace)
    assert stats.errors == 0
    assert stats.rmws > 0 and stats.reads > 0
    # Every RMW bumped its key's version: spot-check one key.
    key = next(op.key for op in trace.operations if op.op == RMW)
    response = controller.handle(Request(method="get", key=key), CLIENT)
    assert response.ok and response.version >= 1
