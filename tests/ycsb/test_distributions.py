"""YCSB generators: ranges, skew, determinism."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.ycsb.distributions import (
    ZIPFIAN_CONSTANT,
    LatestGenerator,
    ScanLengthGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv_hash64,
)


def _samples(generator, n=5000):
    return [generator.next() for _ in range(n)]


def test_uniform_in_range():
    gen = UniformGenerator(100, random.Random(1))
    assert all(0 <= v < 100 for v in _samples(gen))


def test_uniform_roughly_flat():
    gen = UniformGenerator(10, random.Random(2))
    counts = Counter(_samples(gen, 10_000))
    assert max(counts.values()) < 2 * min(counts.values())


def test_zipfian_in_range():
    gen = ZipfianGenerator(1000, random.Random(3))
    assert all(0 <= v < 1000 for v in _samples(gen))


def test_zipfian_head_is_hot():
    gen = ZipfianGenerator(1000, random.Random(4))
    counts = Counter(_samples(gen, 20_000))
    head = sum(counts[i] for i in range(10))
    assert head > 0.4 * 20_000  # top-1% of items gets >40% of accesses


def test_zipfian_rank_ordering():
    gen = ZipfianGenerator(1000, random.Random(5))
    counts = Counter(_samples(gen, 50_000))
    assert counts[0] > counts[10] > counts.get(500, 0)


def test_scrambled_zipfian_spreads_hot_keys():
    gen = ScrambledZipfianGenerator(1000, random.Random(6))
    counts = Counter(_samples(gen, 20_000))
    hottest = counts.most_common(3)
    # Still skewed...
    assert hottest[0][1] > 20_000 / 1000 * 5
    # ...but the hottest items are not clustered at 0,1,2.
    assert set(dict(hottest)) != {0, 1, 2}


def test_latest_favours_recent():
    gen = LatestGenerator(1000, random.Random(7))
    samples = _samples(gen, 10_000)
    assert sum(1 for v in samples if v >= 990) > 0.4 * len(samples)


def test_latest_grow_shifts_window():
    gen = LatestGenerator(100, random.Random(8))
    for _ in range(50):
        gen.grow()
    assert gen.item_count == 150
    assert all(0 <= v < 150 for v in _samples(gen, 1000))
    assert max(_samples(gen, 2000)) >= 140


def test_zipfian_grow_matches_fresh():
    grown = ZipfianGenerator(100, random.Random(9))
    grown.grow_to(200)
    fresh = ZipfianGenerator(200, random.Random(9))
    assert grown._zetan == pytest.approx(fresh._zetan)
    assert grown._eta == pytest.approx(fresh._eta)


def test_zipfian_cannot_shrink():
    gen = ZipfianGenerator(100, random.Random(10))
    with pytest.raises(ConfigurationError):
        gen.grow_to(50)


def test_determinism_given_seed():
    a = ZipfianGenerator(500, random.Random(42))
    b = ZipfianGenerator(500, random.Random(42))
    assert _samples(a, 100) == _samples(b, 100)


def test_invalid_counts():
    with pytest.raises(ConfigurationError):
        UniformGenerator(0, random.Random(1))
    with pytest.raises(ConfigurationError):
        ZipfianGenerator(0, random.Random(1))


def test_fnv_hash_is_stable_and_spreads():
    assert fnv_hash64(1) == fnv_hash64(1)
    assert fnv_hash64(1) != fnv_hash64(2)
    low_bits = {fnv_hash64(i) % 100 for i in range(200)}
    assert len(low_bits) > 50


# -- chi-square-style frequency checks (fixed seeds) ----------------------

def _chi_square(counts: Counter, expected: dict) -> float:
    return sum(
        (counts.get(item, 0) - want) ** 2 / want
        for item, want in expected.items()
    )


def test_uniform_frequencies_chi_square():
    """Observed uniform counts fit the flat expectation.

    10 cells at 1000 expected each: chi-square with 9 degrees of
    freedom has a 99.9th percentile of ~27.9, so a correct generator
    at this fixed seed sits far below the bound.
    """
    gen = UniformGenerator(10, random.Random(70))
    counts = Counter(_samples(gen, 10_000))
    expected = {i: 1000.0 for i in range(10)}
    assert _chi_square(counts, expected) < 27.9


def test_zipfian_frequencies_follow_power_law():
    """Observed zipfian head counts track the 1/(rank+1)^theta law.

    Gray et al.'s rejection-free sampler is an *approximation* to the
    exact pmf (rank 2 runs ~10-15% hot by construction), so instead of
    an exact chi-square this bounds each head rank's relative error at
    25% — tight enough to catch a broken eta/alpha derivation, loose
    enough for the algorithm's known bias.
    """
    n, draws = 50, 40_000
    gen = ZipfianGenerator(n, random.Random(72))
    counts = Counter(_samples(gen, draws))
    weights = [1.0 / ((i + 1) ** ZIPFIAN_CONSTANT) for i in range(n)]
    total = sum(weights)
    for rank in range(10):
        expected = draws * weights[rank] / total
        assert abs(counts.get(rank, 0) - expected) < 0.25 * expected


def test_latest_frequencies_match_mirrored_zipfian():
    """latest(k) is zipfian popularity mirrored onto the newest item."""
    n, draws = 50, 40_000
    gen = LatestGenerator(n, random.Random(73))
    counts = Counter(_samples(gen, draws))
    weights = [1.0 / ((i + 1) ** ZIPFIAN_CONSTANT) for i in range(n)]
    total = sum(weights)
    for offset in range(10):
        expected = draws * weights[offset] / total
        observed = counts.get(n - 1 - offset, 0)
        assert abs(observed - expected) < 0.25 * expected


# -- scan-length generator (workload E) -----------------------------------

def test_scan_length_uniform_in_bounds():
    gen = ScanLengthGenerator(100, random.Random(74))
    lengths = _samples(gen, 5000)
    assert all(1 <= length <= 100 for length in lengths)
    counts = Counter(lengths)
    assert len(counts) == 100  # every length reachable
    assert max(counts.values()) < 2.5 * min(counts.values())


def test_scan_length_zipfian_prefers_short():
    gen = ScanLengthGenerator(100, random.Random(75), distribution="zipfian")
    lengths = _samples(gen, 5000)
    assert all(1 <= length <= 100 for length in lengths)
    counts = Counter(lengths)
    assert counts.most_common(1)[0][0] == 1  # length 1 is the mode
    assert sum(lengths) / len(lengths) < 20  # uniform would sit at ~50


def test_scan_length_deterministic():
    a = ScanLengthGenerator(50, random.Random(76))
    b = ScanLengthGenerator(50, random.Random(76))
    assert _samples(a, 200) == _samples(b, 200)


def test_scan_length_validates():
    with pytest.raises(ConfigurationError):
        ScanLengthGenerator(0, random.Random(1))
    with pytest.raises(ConfigurationError):
        ScanLengthGenerator(10, random.Random(1), distribution="pareto")
