"""Trace replay against a live controller."""

import pytest

from repro.core.controller import PesosController
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.usecases.versioned import versioned_policy
from repro.ycsb.runner import TraceRunner, load_phase
from repro.ycsb.workload import WORKLOAD_A, generate_trace

CLIENT = "fp-ycsb"


@pytest.fixture()
def controller():
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(clients, storage_key=b"k" * 32)


@pytest.fixture()
def small_trace():
    return generate_trace(
        WORKLOAD_A.scaled(record_count=50, operation_count=200, value_size=64),
        seed=1,
    )


def test_load_phase_inserts_all_records(controller, small_trace):
    count = load_phase(controller, small_trace, CLIENT)
    assert count == 50
    assert controller.get(CLIENT, small_trace.load_keys[0]).ok


def test_run_executes_all_operations(controller, small_trace):
    load_phase(controller, small_trace, CLIENT)
    stats = TraceRunner(controller, CLIENT).run(small_trace)
    assert stats.total == 200
    assert stats.errors == 0
    assert stats.denied == 0
    assert stats.reads > 0
    assert stats.updates > 0


def test_run_with_limit(controller, small_trace):
    load_phase(controller, small_trace, CLIENT)
    stats = TraceRunner(controller, CLIENT).run(small_trace, limit=10)
    assert stats.total == 10


def test_run_with_attached_policy(controller, small_trace):
    policy_id = controller.put_policy(
        CLIENT, f"read :- sessionKeyIs(k'{CLIENT}')\nupdate :- sessionKeyIs(K)"
    ).policy_id
    load_phase(controller, small_trace, CLIENT, policy_id=policy_id)
    stats = TraceRunner(controller, CLIENT, policy_id=policy_id).run(small_trace)
    assert stats.denied == 0
    # A stranger is denied reads under the same policy.
    stranger = TraceRunner(controller, "fp-stranger")
    stranger.run(small_trace, limit=50)
    assert stranger.stats.denied > 0


def test_version_aware_runner_with_versioned_policy(controller, small_trace):
    policy_id = controller.put_policy(CLIENT, versioned_policy()).policy_id
    load_phase(
        controller, small_trace, CLIENT, policy_id=policy_id,
        version_aware=True,
    )
    runner = TraceRunner(
        controller, CLIENT, policy_id=policy_id, version_aware=True
    )
    stats = runner.run(small_trace)
    assert stats.denied == 0
    assert stats.errors == 0


def test_payloads_have_requested_size(controller, small_trace):
    load_phase(controller, small_trace, CLIENT)
    value = controller.get(CLIENT, small_trace.load_keys[3]).value
    assert len(value) == 64
