"""Secure channel: handshake, records, replay and tamper defenses."""

import pytest

from repro.crypto.channel import establish_channel
from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.crypto.gcm import GcmTagError
from repro.errors import CertificateError


@pytest.fixture(scope="module")
def channel_pair(alice, bob, trust_store):
    return establish_channel(alice, bob, trust_store, trust_store)


def test_handshake_authenticates_peers(channel_pair, alice, bob):
    client, server = channel_pair
    assert client.peer_fingerprint == bob.fingerprint()
    assert server.peer_fingerprint == alice.fingerprint()


def test_record_roundtrip(alice, bob, trust_store):
    client, server = establish_channel(alice, bob, trust_store, trust_store)
    record = client.send(b"PUT /objects/k1", b"hdr")
    assert record != b"PUT /objects/k1"  # actually encrypted
    assert server.recv(record, b"hdr") == b"PUT /objects/k1"
    reply = server.send(b"200 OK")
    assert client.recv(reply) == b"200 OK"


def test_records_are_ordered(alice, bob, trust_store):
    client, server = establish_channel(alice, bob, trust_store, trust_store)
    first = client.send(b"one")
    second = client.send(b"two")
    # Delivering out of order fails the GCM check (nonce = sequence).
    with pytest.raises(GcmTagError):
        server.recv(second)


def test_replay_rejected(alice, bob, trust_store):
    client, server = establish_channel(alice, bob, trust_store, trust_store)
    record = client.send(b"once")
    assert server.recv(record) == b"once"
    with pytest.raises(GcmTagError):
        server.recv(record)


def test_tampered_record_rejected(alice, bob, trust_store):
    client, server = establish_channel(alice, bob, trust_store, trust_store)
    record = bytearray(client.send(b"payload"))
    record[0] ^= 0xFF
    with pytest.raises(GcmTagError):
        server.recv(bytes(record))


def test_untrusted_client_rejected(bob, trust_store):
    rogue_ca = CertificateAuthority("rogue", key_bits=512)
    mallory = rogue_ca.issue_keypair("mallory", key_bits=512)
    with pytest.raises(CertificateError):
        establish_channel(mallory, bob, trust_store, trust_store)


def test_untrusted_server_rejected(alice, trust_store):
    rogue_ca = CertificateAuthority("rogue2", key_bits=512)
    fake_server = rogue_ca.issue_keypair("fake-disk", key_bits=512)
    with pytest.raises(CertificateError):
        establish_channel(alice, fake_server, trust_store, trust_store)


def test_byte_counters(alice, bob, trust_store):
    client, server = establish_channel(alice, bob, trust_store, trust_store)
    record = client.send(b"12345")
    server.recv(record)
    assert client.bytes_sent == len(record)
    assert server.bytes_received == len(record)


def test_sessions_have_distinct_keys(alice, bob, trust_store):
    c1, _s1 = establish_channel(alice, bob, trust_store, trust_store)
    c2, _s2 = establish_channel(alice, bob, trust_store, trust_store)
    assert c1.send(b"same plaintext") != c2.send(b"same plaintext")
