"""Certificates: issuance, chains, expiry, claims, serialization."""

import pytest

from repro.crypto.certs import (
    Certificate,
    CertificateAuthority,
    TrustStore,
    random_serial,
)
from repro.errors import CertificateError


def test_issue_and_verify(root_ca, alice):
    root_ca.verify_chain(alice.certificate, now=100.0)


def test_self_signed_root_verifies(root_ca):
    root_ca.verify_chain(root_ca.certificate, now=100.0)


def test_expired_certificate_rejected(root_ca):
    kp = root_ca.issue_keypair("shortlived", key_bits=512)
    expired = root_ca.issue_certificate(
        "shortlived", kp.public_key, not_before=0.0, lifetime=10.0
    )
    root_ca.verify_chain(expired, now=5.0)
    with pytest.raises(CertificateError):
        root_ca.verify_chain(expired, now=11.0)


def test_not_yet_valid_rejected(root_ca, alice):
    cert = root_ca.issue_certificate(
        "future", alice.public_key, not_before=1000.0, lifetime=10.0
    )
    with pytest.raises(CertificateError):
        root_ca.verify_chain(cert, now=0.0)


def test_unknown_issuer_rejected(root_ca, alice):
    imposter = CertificateAuthority("imposter", key_bits=512)
    cert = imposter.issue_certificate("mallory", alice.public_key)
    with pytest.raises(CertificateError):
        root_ca.verify_chain(cert, now=0.0)


def test_forged_signature_rejected(root_ca, alice):
    from dataclasses import replace

    forged = replace(alice.certificate, subject="mallory")
    with pytest.raises(CertificateError):
        root_ca.verify_chain(forged, now=0.0)


def test_intermediate_ca_chain(root_ca):
    intermediate = CertificateAuthority(
        "intermediate", key_bits=512, parent=root_ca
    )
    leaf = intermediate.issue_keypair("leaf", key_bits=512)
    intermediate.verify_chain(leaf.certificate, now=0.0)
    # The leaf issuer is "intermediate"; walking up from intermediate works.
    assert leaf.certificate.issuer == "intermediate"


def test_claims_lookup(root_ca):
    kp = root_ca.issue_keypair(
        "timeserver", claims=(("ts", ("timeserver",)),), key_bits=512
    )
    assert kp.certificate.claim_args("ts") == ("timeserver",)
    assert kp.certificate.claim_args("absent") is None


def test_dict_roundtrip(alice):
    data = alice.certificate.to_dict()
    restored = Certificate.from_dict(data)
    assert restored == alice.certificate


def test_tbs_excludes_signature(alice):
    from dataclasses import replace

    other = replace(alice.certificate, signature=b"different")
    assert other.tbs_bytes() == alice.certificate.tbs_bytes()


def test_fingerprint_matches_key(alice):
    assert alice.certificate.fingerprint() == alice.public_key.fingerprint()


def test_trust_store_multiple_roots(root_ca, alice):
    other_root = CertificateAuthority("other-root", key_bits=512)
    store = TrustStore()
    store.add(other_root)
    store.add(root_ca)
    store.verify(alice.certificate, now=0.0)


def test_trust_store_rejects_stranger(alice):
    stranger_root = CertificateAuthority("stranger", key_bits=512)
    store = TrustStore()
    store.add(stranger_root)
    with pytest.raises(CertificateError):
        store.verify(alice.certificate, now=0.0)


def test_serials_increment(root_ca):
    a = root_ca.issue_keypair("s1", key_bits=512)
    b = root_ca.issue_keypair("s2", key_bits=512)
    assert b.certificate.serial > a.certificate.serial


def test_random_serial_is_positive():
    assert random_serial() >= 0
    assert random_serial().bit_length() <= 63
