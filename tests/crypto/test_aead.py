"""StreamAead / GcmAead / NullAead interface contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import GcmAead, NullAead, StreamAead
from repro.errors import CryptoError, IntegrityError

NONCE = b"n" * 12


@pytest.fixture(params=[StreamAead, GcmAead], ids=["stream", "gcm"])
def aead(request):
    return request.param(b"k" * 16)


def test_seal_open_roundtrip(aead):
    blob = aead.seal(NONCE, b"object payload", b"aad")
    assert aead.open(NONCE, blob, b"aad") == b"object payload"


def test_ciphertext_differs_from_plaintext(aead):
    blob = aead.seal(NONCE, b"object payload")
    assert b"object payload" not in blob


def test_tamper_detected(aead):
    blob = bytearray(aead.seal(NONCE, b"payload"))
    blob[0] ^= 1
    with pytest.raises(IntegrityError):
        aead.open(NONCE, bytes(blob))


def test_wrong_aad_detected(aead):
    blob = aead.seal(NONCE, b"payload", b"right")
    with pytest.raises(IntegrityError):
        aead.open(NONCE, blob, b"wrong")


def test_wrong_nonce_detected(aead):
    blob = aead.seal(NONCE, b"payload")
    with pytest.raises(IntegrityError):
        aead.open(b"m" * 12, blob)


def test_wrong_key_detected():
    blob = StreamAead(b"k" * 16).seal(NONCE, b"payload")
    with pytest.raises(IntegrityError):
        StreamAead(b"j" * 16).open(NONCE, blob)


def test_short_blob_rejected(aead):
    if aead.TAG_SIZE:
        with pytest.raises(IntegrityError):
            aead.open(NONCE, b"x")


def test_bad_nonce_length(aead):
    with pytest.raises(CryptoError):
        aead.seal(b"short", b"payload")


def test_stream_overhead_is_tag_size():
    aead = StreamAead(b"k" * 16)
    blob = aead.seal(NONCE, b"x" * 100)
    assert len(blob) == 100 + aead.TAG_SIZE


def test_short_key_rejected():
    with pytest.raises(CryptoError):
        StreamAead(b"tiny")


def test_null_aead_passthrough():
    aead = NullAead()
    assert aead.seal(NONCE, b"data") == b"data"
    assert aead.open(NONCE, b"data") == b"data"


def test_empty_plaintext(aead):
    blob = aead.seal(NONCE, b"")
    assert aead.open(NONCE, blob) == b""


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=32),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=2048),
    aad=st.binary(max_size=64),
)
def test_stream_roundtrip_property(key, nonce, plaintext, aad):
    aead = StreamAead(key)
    assert aead.open(nonce, aead.seal(nonce, plaintext, aad), aad) == plaintext
