"""RSA keygen and PKCS#1 v1.5 signature behaviour."""

import pytest

from repro.crypto.rsa import (
    RsaPublicKey,
    _is_probable_prime,
    generate_keypair,
    verify_or_raise,
)
from repro.errors import CryptoError, IntegrityError


def test_sign_verify_roundtrip(rsa_key):
    sig = rsa_key.sign(b"hello pesos")
    assert rsa_key.public_key.verify(b"hello pesos", sig)


def test_tampered_message_rejected(rsa_key):
    sig = rsa_key.sign(b"hello")
    assert not rsa_key.public_key.verify(b"hellO", sig)


def test_tampered_signature_rejected(rsa_key):
    sig = bytearray(rsa_key.sign(b"hello"))
    sig[0] ^= 1
    assert not rsa_key.public_key.verify(b"hello", bytes(sig))


def test_wrong_key_rejected(rsa_key, other_rsa_key):
    sig = rsa_key.sign(b"hello")
    assert not other_rsa_key.public_key.verify(b"hello", sig)


def test_wrong_length_signature_rejected(rsa_key):
    assert not rsa_key.public_key.verify(b"hello", b"short")


def test_signature_value_at_modulus_rejected(rsa_key):
    bogus = rsa_key.n.to_bytes(rsa_key.size_bytes, "big")
    assert not rsa_key.public_key.verify(b"hello", bogus)


def test_verify_or_raise(rsa_key):
    sig = rsa_key.sign(b"data")
    verify_or_raise(rsa_key.public_key, b"data", sig)
    with pytest.raises(IntegrityError):
        verify_or_raise(rsa_key.public_key, b"other", sig)


def test_fingerprint_is_stable_and_distinct(rsa_key, other_rsa_key):
    fp1 = rsa_key.public_key.fingerprint()
    assert fp1 == rsa_key.public_key.fingerprint()
    assert fp1 != other_rsa_key.public_key.fingerprint()
    assert len(fp1) == 32


def test_public_key_dict_roundtrip(rsa_key):
    data = rsa_key.public_key.to_dict()
    assert RsaPublicKey.from_dict(data) == rsa_key.public_key


def test_keypair_structure(rsa_key):
    assert rsa_key.p * rsa_key.q == rsa_key.n
    assert rsa_key.p != rsa_key.q
    phi = (rsa_key.p - 1) * (rsa_key.q - 1)
    assert (rsa_key.d * rsa_key.e) % phi == 1


def test_key_too_small_rejected():
    with pytest.raises(CryptoError):
        generate_keypair(bits=256)


def test_empty_message_signs(rsa_key):
    sig = rsa_key.sign(b"")
    assert rsa_key.public_key.verify(b"", sig)


def test_large_message_signs(rsa_key):
    message = b"x" * 100_000
    sig = rsa_key.sign(message)
    assert rsa_key.public_key.verify(message, sig)


@pytest.mark.parametrize("n", [2, 3, 5, 7, 97, 7919])
def test_prime_detection_primes(n):
    assert _is_probable_prime(n)


@pytest.mark.parametrize("n", [0, 1, 4, 9, 100, 561, 7917])
def test_prime_detection_composites(n):
    assert not _is_probable_prime(n)
