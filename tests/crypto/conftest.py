"""Shared fixtures: RSA keygen is slow in pure Python, so reuse keys."""

import pytest

from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.crypto.rsa import generate_keypair


@pytest.fixture(scope="session")
def rsa_key():
    return generate_keypair(bits=512)


@pytest.fixture(scope="session")
def other_rsa_key():
    return generate_keypair(bits=512)


@pytest.fixture(scope="session")
def root_ca():
    return CertificateAuthority("test-root", key_bits=512)


@pytest.fixture(scope="session")
def trust_store(root_ca):
    store = TrustStore()
    store.add(root_ca)
    return store


@pytest.fixture(scope="session")
def alice(root_ca):
    return root_ca.issue_keypair("alice", key_bits=512)


@pytest.fixture(scope="session")
def bob(root_ca):
    return root_ca.issue_keypair("bob", key_bits=512)
