"""AES-GCM against the original spec test vectors plus tamper checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm, GcmTagError
from repro.errors import CryptoError


def test_gcm_spec_case1_empty():
    gcm = AesGcm(bytes(16))
    ciphertext, tag = gcm.encrypt(bytes(12), b"")
    assert ciphertext == b""
    assert tag == bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a")


def test_gcm_spec_case2_single_block():
    gcm = AesGcm(bytes(16))
    ciphertext, tag = gcm.encrypt(bytes(12), bytes(16))
    assert ciphertext == bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
    assert tag == bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf")


_TC3_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_TC3_IV = bytes.fromhex("cafebabefacedbaddecaf888")
_TC3_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a"
    "86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525"
    "b16aedf5aa0de657ba637b391aafd255"
)
_TC3_CT = bytes.fromhex(
    "42831ec2217774244b7221b784d0d49c"
    "e3aa212f2c02a4e035c17e2329aca12e"
    "21d514b25466931c7d8f6a5aac84aa05"
    "1ba30b396a0aac973d58e091473f5985"
)


def test_gcm_spec_case3_four_blocks():
    gcm = AesGcm(_TC3_KEY)
    ciphertext, tag = gcm.encrypt(_TC3_IV, _TC3_PT)
    assert ciphertext == _TC3_CT
    assert tag == bytes.fromhex("4d5c2af327cd64a62cf35abd2ba6fab4")


def test_gcm_spec_case4_with_aad():
    gcm = AesGcm(_TC3_KEY)
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    ciphertext, tag = gcm.encrypt(_TC3_IV, _TC3_PT[:60], aad)
    assert ciphertext == _TC3_CT[:60]
    assert tag == bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")


def test_decrypt_roundtrip():
    gcm = AesGcm(b"k" * 16)
    ct, tag = gcm.encrypt(b"n" * 12, b"the object payload", b"metadata")
    assert gcm.decrypt(b"n" * 12, ct, tag, b"metadata") == b"the object payload"


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(b"k" * 16)
    ct, tag = gcm.encrypt(b"n" * 12, b"payload")
    bad = bytes([ct[0] ^ 1]) + ct[1:]
    with pytest.raises(GcmTagError):
        gcm.decrypt(b"n" * 12, bad, tag)


def test_tampered_tag_rejected():
    gcm = AesGcm(b"k" * 16)
    ct, tag = gcm.encrypt(b"n" * 12, b"payload")
    bad_tag = bytes([tag[0] ^ 1]) + tag[1:]
    with pytest.raises(GcmTagError):
        gcm.decrypt(b"n" * 12, ct, bad_tag)


def test_wrong_aad_rejected():
    gcm = AesGcm(b"k" * 16)
    ct, tag = gcm.encrypt(b"n" * 12, b"payload", b"right")
    with pytest.raises(GcmTagError):
        gcm.decrypt(b"n" * 12, ct, tag, b"wrong")


def test_wrong_nonce_rejected():
    gcm = AesGcm(b"k" * 16)
    ct, tag = gcm.encrypt(b"n" * 12, b"payload")
    with pytest.raises(GcmTagError):
        gcm.decrypt(b"m" * 12, ct, tag)


def test_bad_nonce_length_rejected():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(CryptoError):
        gcm.encrypt(b"short", b"payload")


def test_seal_open_roundtrip():
    gcm = AesGcm(b"k" * 16)
    blob = gcm.seal(b"n" * 12, b"object data", b"aad")
    assert len(blob) == len(b"object data") + AesGcm.TAG_SIZE
    assert gcm.open(b"n" * 12, blob, b"aad") == b"object data"


def test_open_short_blob_rejected():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(GcmTagError):
        gcm.open(b"n" * 12, b"tiny")


@settings(max_examples=20, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=100),
    aad=st.binary(max_size=32),
)
def test_roundtrip_property(key, nonce, plaintext, aad):
    gcm = AesGcm(key)
    ct, tag = gcm.encrypt(nonce, plaintext, aad)
    assert len(ct) == len(plaintext)
    assert gcm.decrypt(nonce, ct, tag, aad) == plaintext
