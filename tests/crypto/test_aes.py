"""AES against the FIPS-197 appendix C vectors plus properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.errors import CryptoError

_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f"
    )
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(_PLAINTEXT) == expected


def test_decrypt_inverts_encrypt_fips_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(_PLAINTEXT)) == _PLAINTEXT


def test_bad_key_length_rejected():
    with pytest.raises(CryptoError):
        AES(b"short")


def test_bad_block_length_rejected():
    cipher = AES(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(b"tiny")
    with pytest.raises(CryptoError):
        cipher.decrypt_block(b"tiny")


def test_different_keys_different_ciphertexts():
    a = AES(bytes(16)).encrypt_block(_PLAINTEXT)
    b = AES(bytes([1] * 16)).encrypt_block(_PLAINTEXT)
    assert a != b


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(key=st.binary(min_size=32, max_size=32),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
