"""Full-system integration: the paper's complete deployment story.

One scenario per test, each exercising the whole stack together:
attestation-gated bootstrap, drive lock-out, TLS-authenticated clients
driving policies over HTTP, failures, and recovery.
"""

import secrets

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import (
    Request,
    build_http_request,
    parse_http_response,
)
from repro.core.webserver import WebServer
from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.errors import AttestationError, KineticAuthError
from repro.kinetic.client import KineticClient
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.sgx.attestation import AttestationService, SgxPlatform
from repro.sgx.enclave import EnclaveBinary


@pytest.fixture(scope="module")
def deployment():
    """The full §3.1 bootstrap on simulated infrastructure."""
    binary = EnclaveBinary(name="pesos", content=b"controller v1")
    platform = SgxPlatform("m1", key_bits=512)
    service = AttestationService()
    service.trust_platform(platform)
    service.register_enclave(
        binary.measurement(),
        {
            "storage_key": secrets.token_bytes(32).hex(),
            "disk_identity": "pesos-admin",
            "disk_hmac_key": secrets.token_bytes(32).hex(),
        },
    )
    cluster = DriveCluster(num_drives=3)
    controller = PesosController.launch(
        binary, platform, service, cluster,
        config=ControllerConfig(replication_factor=2),
    )
    return binary, platform, service, cluster, controller


def test_bootstrap_locks_out_provider(deployment):
    _b, _p, _s, cluster, _controller = deployment
    for drive in cluster:
        assert drive.identities() == ["pesos-admin"]
    with pytest.raises(KineticAuthError):
        KineticClient(
            cluster.drive(0),
            KineticDrive.DEMO_IDENTITY,
            KineticDrive.DEMO_KEY,
        ).noop()


def test_tampered_controller_cannot_deploy(deployment):
    binary, platform, service, _cluster, _c = deployment
    with pytest.raises(AttestationError):
        PesosController.launch(
            binary.tampered(), platform, service, DriveCluster(num_drives=1)
        )


def test_policies_enforced_through_tls_and_http(deployment):
    _b, _p, _s, _cluster, controller = deployment
    ca = CertificateAuthority("client-ca", key_bits=512)
    trust = TrustStore()
    trust.add(ca)
    server = WebServer(
        controller,
        server_keys=ca.issue_keypair("frontend", key_bits=512),
        client_trust=trust,
    )
    alice = ca.issue_keypair("alice", key_bits=512)
    bob = ca.issue_keypair("bob", key_bits=512)
    alice_conn, alice_chan = server.accept(alice)
    bob_conn, bob_chan = server.accept(bob)

    def roundtrip(conn, chan, request):
        return parse_http_response(
            chan.recv(conn.serve(chan.send(build_http_request(request))))
        )

    policy = roundtrip(
        alice_conn,
        alice_chan,
        Request(
            method="put_policy",
            value=(
                f"read :- sessionKeyIs(k'{alice.fingerprint()}')\n"
                f"update :- sessionKeyIs(k'{alice.fingerprint()}')"
            ).encode(),
        ),
    )
    assert policy.status == 200
    put = roundtrip(
        alice_conn,
        alice_chan,
        Request(method="put", key="e2e-doc", value=b"over TLS",
                policy_id=policy.policy_id),
    )
    assert put.status == 200
    assert roundtrip(
        alice_conn, alice_chan, Request(method="get", key="e2e-doc")
    ).value == b"over TLS"
    denied = roundtrip(bob_conn, bob_chan, Request(method="get", key="e2e-doc"))
    assert denied.status == 403


def test_data_survives_drive_failure_and_repair(deployment):
    _b, _p, _s, cluster, controller = deployment
    controller.put("fp-ops", "durable", b"must survive")
    from repro.core.store import placement

    victim = placement("durable", 3, 2)[0]
    cluster.drive(victim).fail()
    controller.caches.objects.clear()
    controller.caches.keys.clear()
    assert controller.get("fp-ops", "durable").value == b"must survive"
    cluster.drive(victim).recover()
    # After recovery the replica may be stale/fine; scrub reports it.
    report = controller.scrub_object("durable")
    assert all(status in ("ok", "missing") for _v, _d, status in report)
    controller.repair_object("durable")
    assert all(s == "ok" for _v, _d, s in controller.scrub_object("durable"))


def test_everything_on_disk_is_ciphertext(deployment):
    _b, _p, _s, cluster, controller = deployment
    marker = b"EXTREMELY-SECRET-MARKER"
    controller.put("fp-ops", "secret-object", marker)
    controller.put_policy("fp-ops", "read :- sessionKeyIs(k'x')")
    for drive in cluster:
        for entry in drive._entries.values():
            assert marker not in entry.value


def test_full_use_case_stack_on_one_deployment(deployment):
    """Content server + versioned store + MAL coexist on one instance."""
    _b, _p, _s, _cluster, controller = deployment
    from repro.usecases.content_server import ContentServer
    from repro.usecases.mal import MalStore
    from repro.usecases.versioned import VersionedStore

    server = ContentServer(controller, admin_fingerprint="fp-admin")
    server.publish("fp-author", "cs/article", b"text", readers=["fp-reader", "fp-author"])
    assert server.fetch("fp-reader", "cs/article").ok
    assert server.fetch("fp-stranger", "cs/article").status == 403

    versioned = VersionedStore(controller)
    versioned.put("fp-author", "vs/doc", b"v0", expected_version=0)
    assert versioned.put(
        "fp-author", "vs/doc", b"dup", expected_version=0
    ).status == 403

    mal = MalStore(controller)
    mal.protect("fp-owner", "mal/record", b"state")
    assert mal.read("fp-auditor", "mal/record").ok
    assert mal.unlogged_read("fp-thief", "mal/record").status == 403
