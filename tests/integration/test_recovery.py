"""Controller restart: all state recovers from the trusted drives.

The enclave's caches and session soft-state are volatile; everything
durable (objects, metadata, policies) lives encrypted on the Kinetic
drives.  A replacement controller provisioned with the same storage
key (via attestation, §3.1) must serve the same data and enforce the
same policies — and one with a *different* key must not be able to
read anything.
"""

import pytest

from repro.core.controller import ControllerConfig, PesosController
from repro.errors import IntegrityError
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

ALICE, BOB = "fp-alice", "fp-bob"
STORAGE_KEY = b"provisioned-by-attestation!!...."


@pytest.fixture()
def populated_cluster():
    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=STORAGE_KEY)
    policy = controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\nupdate :- sessionKeyIs(k'{ALICE}')",
    )
    controller.put(ALICE, "private", b"sensitive", policy_id=policy.policy_id)
    controller.put(ALICE, "public", b"open data")
    controller.put(ALICE, "public", b"open data v1")
    return cluster, policy.policy_id


def _fresh_controller(cluster, key=STORAGE_KEY):
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(clients, storage_key=key)


def test_restarted_controller_serves_data(populated_cluster):
    cluster, _policy_id = populated_cluster
    restarted = _fresh_controller(cluster)
    assert restarted.get(ALICE, "public").value == b"open data v1"
    assert restarted.get(ALICE, "public", version=0).value == b"open data"
    assert restarted.get(ALICE, "private").value == b"sensitive"


def test_restarted_controller_enforces_policies(populated_cluster):
    cluster, policy_id = populated_cluster
    restarted = _fresh_controller(cluster)
    denied = restarted.get(BOB, "private")
    assert denied.status == 403
    # The policy blob itself reloads from disk.
    from repro.core.request import Request

    response = restarted.handle(
        Request(method="get_policy", policy_id=policy_id), ALICE
    )
    assert response.ok


def test_wrong_storage_key_reads_nothing(populated_cluster):
    """A controller without the provisioned key cannot decrypt state —
    which is why the attestation gate on the key matters."""
    cluster, _policy_id = populated_cluster
    imposter = _fresh_controller(cluster, key=b"wrong-key".ljust(32, b"\0"))
    response = imposter.get(ALICE, "public")
    assert response.status in (400, 500) or not response.ok


def test_wrong_key_cannot_tamper_silently(populated_cluster):
    cluster, _policy_id = populated_cluster
    imposter = _fresh_controller(cluster, key=b"wrong-key".ljust(32, b"\0"))
    with pytest.raises(IntegrityError):
        imposter.store.read_meta("public")
