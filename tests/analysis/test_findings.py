"""Finding model: pragmas, ordering, renderers."""

import json

from repro.analysis.findings import (
    Finding,
    render_json_report,
    render_markdown,
    render_text,
    sort_findings,
    suppressed_rules,
)


def test_suppression_on_flagged_line_and_line_above():
    lines = [
        "x = 1",
        "# pesos: allow[det-wall-clock]",
        "started = time.time()",
        "y = time.time()  # pesos: allow[det-wall-clock]",
    ]
    assert "det-wall-clock" in suppressed_rules(lines, 3)  # line above
    assert "det-wall-clock" in suppressed_rules(lines, 4)  # same line
    assert suppressed_rules(lines, 1) == set()


def test_suppression_is_rule_specific():
    lines = ["value = thing()  # pesos: allow[core-no-swallow]"]
    allowed = suppressed_rules(lines, 1)
    assert allowed == {"core-no-swallow"}


def test_sort_puts_errors_before_warnings():
    warning = Finding(rule="b", message="w", severity="warning", file="a.py")
    error = Finding(rule="a", message="e", severity="error", file="z.py")
    assert sort_findings([warning, error]) == [error, warning]


def test_render_text_empty_and_nonempty():
    assert render_text([]) == "no findings"
    text = render_text(
        [Finding(rule="r", message="boom", file="f.py", line=3)]
    )
    assert "f.py:3" in text
    assert "error[r]" in text
    assert "1 finding(s)" in text


def test_render_json_is_parseable():
    report = json.loads(
        render_json_report([Finding(rule="r", message="m", file="f.py")])
    )
    assert report["count"] == 1
    assert report["findings"][0]["rule"] == "r"


def test_render_markdown_table_and_empty_checkmark():
    assert "white_check_mark" in render_markdown([])
    table = render_markdown(
        [Finding(rule="race/lockset", message="a | b", file="f.py", line=7)]
    )
    assert "| error | `race/lockset` |" in table
    assert "a \\| b" in table  # pipes escaped for the table cell
