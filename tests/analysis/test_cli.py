"""End-to-end tests for ``python -m repro.analysis``: exit codes with
and without ``--fail-on-findings``, every output format, and the JSON
schema downstream tooling parses — including taint findings."""

import json
from pathlib import Path

from repro.analysis.__main__ import _taint_root, main

LEAKY = (
    "def leak(private_key):\n"
    "    print(private_key)\n"
)

CLEAN = (
    "def fine(name):\n"
    "    return name.upper()\n"
)


def pkg(tmp_path: Path, source: str) -> Path:
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "m.py").write_text(source)
    return root


# -- exit codes --------------------------------------------------------------

def test_clean_target_exits_zero(tmp_path, capsys):
    assert main([str(pkg(tmp_path, CLEAN)), "--fail-on-findings"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_findings_without_gate_still_exit_zero(tmp_path, capsys):
    assert main([str(pkg(tmp_path, LEAKY))]) == 0
    assert "taint/log-line" in capsys.readouterr().out


def test_findings_with_gate_exit_one(tmp_path, capsys):
    assert main([str(pkg(tmp_path, LEAKY)), "--fail-on-findings"]) == 1
    assert "taint/log-line" in capsys.readouterr().out


def test_no_taint_skips_the_taint_pass(tmp_path, capsys):
    root = pkg(tmp_path, LEAKY)
    assert main([str(root), "--fail-on-findings", "--no-taint"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_warnings_do_not_fail_the_gate(tmp_path, capsys):
    # The layer-scoped rules key off the path under the innermost
    # ``repro`` directory, so the fixture mirrors that layout.
    root = tmp_path / "repro" / "core"
    root.mkdir(parents=True)
    (root / "m.py").write_text(
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except Exception:\n"
        "        count()\n"
        "        raise\n"
    )
    assert main([str(tmp_path / "repro"), "--fail-on-findings"]) == 0
    assert "core-no-swallow" in capsys.readouterr().out


def test_single_file_target_never_runs_taint(tmp_path, capsys):
    target = tmp_path / "m.py"
    target.write_text(LEAKY)
    assert main([str(target), "--fail-on-findings"]) == 0


# -- formats -----------------------------------------------------------------

def test_json_schema_stability(tmp_path, capsys):
    main([str(pkg(tmp_path, LEAKY)), "--format", "json"])
    report = json.loads(capsys.readouterr().out)
    assert set(report) == {"count", "findings"}
    assert report["count"] == 1
    (finding,) = report["findings"]
    assert set(finding) >= {
        "rule", "message", "file", "line", "severity"
    }
    assert finding["rule"] == "taint/log-line"
    assert finding["file"] == "m.py"
    assert finding["line"] == 2
    assert finding["severity"] == "error"
    assert finding["context"] == {"kinds": ["key"], "sink": "log-line"}


def test_json_mixed_lint_and_taint_findings(tmp_path, capsys):
    root = pkg(tmp_path, LEAKY)
    (root / "core").mkdir()
    (root / "core" / "n.py").write_text(
        "import time\nt = time.time()\n"
    )
    main([str(root), "--format", "json"])
    report = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"det-wall-clock", "taint/log-line"}


def test_markdown_rendering(tmp_path, capsys):
    main([str(pkg(tmp_path, LEAKY)), "--format", "markdown"])
    out = capsys.readouterr().out
    assert "| Rule |" in out or "| rule |" in out.lower()
    assert "taint/log-line" in out
    assert "m.py" in out


def test_markdown_clean(tmp_path, capsys):
    main([str(pkg(tmp_path, CLEAN)), "--format", "markdown"])
    assert "no findings" in capsys.readouterr().out.lower()


# -- taint root resolution ---------------------------------------------------

def test_taint_root_finds_repro_ancestor(tmp_path):
    nested = tmp_path / "src" / "repro" / "core"
    nested.mkdir(parents=True)
    assert _taint_root(nested) == tmp_path / "src" / "repro"


def test_taint_root_falls_back_to_target(tmp_path):
    plain = tmp_path / "pkg"
    plain.mkdir()
    assert _taint_root(plain) == plain


def test_package_subdir_target_analyzes_whole_package(tmp_path, capsys):
    # Targeting repro/core must still see the cross-module flow whose
    # sink lives in another subpackage.
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "util").mkdir()
    (root / "util" / "out.py").write_text(
        "def emit(x):\n"
        "    print(x)\n"
    )
    (root / "core" / "m.py").write_text(
        "from ..util.out import emit\n"
        "def leak(private_key):\n"
        "    emit(private_key)\n"
    )
    assert main([str(root / "core"), "--fail-on-findings"]) == 1
    assert "taint/log-line" in capsys.readouterr().out
