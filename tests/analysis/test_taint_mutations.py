"""Leak-mutation self-test for the secrecy-flow taint analyzer.

Each test copies ``src/repro`` into a sandbox, injects ONE synthetic
leak — a realistic mistake a future change could make — and asserts the
analyzer reports it with the right rule in the right file.  The anchors
are exact source snippets, so a refactor that moves them fails loudly
(the test asserts the anchor exists before mutating) instead of
silently testing nothing.

Together with ``test_clean_tree_is_silent`` this pins both directions:
no false positives on the real tree, no false negatives on the eight
leak classes the threat model bans (drive write, wire frame, metric
label, span attribute, HTTP body, audit entry, exception message, log
line — plus the HTTP error-header variant).
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.taint import analyze_package

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

STORE = "core/store.py"
CLIENT = "kinetic/client.py"
CONTROLLER = "core/controller.py"
WEBSERVER = "core/webserver.py"


def mutate(tmp_path: Path, rel_path: str, old: str, new: str) -> Path:
    """Copy the package and apply one anchored mutation."""
    root = tmp_path / "repro"
    shutil.copytree(
        SRC, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    target = root / rel_path
    source = target.read_text()
    assert old in source, f"mutation anchor vanished from {rel_path}"
    target.write_text(source.replace(old, new, 1))
    return root


def rules_in(findings, rel_path: str):
    return {f.rule for f in findings if f.file == rel_path}


# -- baseline ----------------------------------------------------------------

def test_clean_tree_is_silent():
    findings = analyze_package(SRC)
    assert findings == [], [
        f"{f.file}:{f.line} {f.rule}" for f in findings
    ]


# -- the eight leak classes --------------------------------------------------

WRITE_VALUE_SEAL = (
    "        blob = self._seal(value, aad)\n"
    "        self._write_replicas(key, self.value_key(key, slot), blob)"
)


def test_unsealed_drive_write_detected(tmp_path):
    # Writing the plaintext instead of the sealed blob to a replica.
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        blob = self._seal(value, aad)\n"
        "        self.clients[0].put("
        "self.value_key(key, slot), value, force=True)\n"
        "        self._write_replicas(key, self.value_key(key, slot), blob)",
    )
    assert "taint/drive-write" in rules_in(analyze_package(root), STORE)


def test_key_in_wire_frame_detected(tmp_path):
    # Embedding the HMAC key into a PUT request body.
    root = mutate(
        tmp_path,
        CLIENT,
        "        response = self._roundtrip(MessageType.PUT, body)",
        '        body["debug_mac"] = self._key\n'
        "        response = self._roundtrip(MessageType.PUT, body)",
    )
    assert "taint/wire-frame" in rules_in(analyze_package(root), CLIENT)


def test_plaintext_metric_label_detected(tmp_path):
    # Using the object value as a Prometheus label.
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        self._m_drive_bytes.labels(value).inc(1)\n"
        + WRITE_VALUE_SEAL,
    )
    assert "taint/metric-label" in rules_in(analyze_package(root), STORE)


def test_plaintext_span_attribute_detected(tmp_path):
    # Recording the value itself (not its size) on a trace span.
    root = mutate(
        tmp_path,
        STORE,
        "            key=meta.key,\n"
        "            version=new_version,\n"
        "            bytes=len(value),\n"
        "        ):",
        "            key=meta.key,\n"
        "            version=new_version,\n"
        "            payload=value,\n"
        "        ):",
    )
    assert "taint/span-attribute" in rules_in(analyze_package(root), STORE)


def test_key_in_http_body_detected(tmp_path):
    # Returning key material in an admin HTTP response body.
    root = mutate(
        tmp_path,
        WEBSERVER,
        '        return _admin_response(404, "text/plain",'
        ' b"unknown admin path\\n")',
        '        return _admin_response(\n'
        '            200, "text/plain",'
        " self.controller.store._aead._enc_key\n"
        "        )",
    )
    assert "taint/http-body" in rules_in(analyze_package(root), WEBSERVER)


GET_RESPONSE = (
    "        self.effects.record(COPY, len(value))\n"
    "        return Response("
)


def test_plaintext_audit_entry_detected(tmp_path):
    # Recording the read value in the tamper-evident audit chain.
    root = mutate(
        tmp_path,
        CONTROLLER,
        GET_RESPONSE,
        '        self.auditor.record_shed(\n'
        '            "get", value, session.fingerprint, request.key, now\n'
        "        )\n" + GET_RESPONSE,
    )
    assert "taint/audit-entry" in rules_in(analyze_package(root), CONTROLLER)


def test_plaintext_exception_message_detected(tmp_path):
    # Quoting the value in an error raised off the write path.
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        if not value:\n"
        '            raise ValueError(f"refusing empty write of {value!r}")\n'
        + WRITE_VALUE_SEAL,
    )
    assert "taint/exception-message" in rules_in(
        analyze_package(root), STORE
    )


def test_plaintext_log_line_detected(tmp_path):
    # Debug print of the value on the write path.
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        print(value)\n" + WRITE_VALUE_SEAL,
    )
    assert "taint/log-line" in rules_in(analyze_package(root), STORE)


def test_plaintext_http_error_header_detected(tmp_path):
    # Interpolating the value into the X-Pesos-Error header.
    root = mutate(
        tmp_path,
        CONTROLLER,
        "        return Response(\n"
        "            status=200,\n"
        "            value=value,\n"
        "            version=version,\n"
        "            policy_id=meta.policy_id,\n"
        "        )",
        "        return Response(\n"
        "            status=200,\n"
        "            value=value,\n"
        "            version=version,\n"
        "            policy_id=meta.policy_id,\n"
        '            error=f"served {value!r}",\n'
        "        )",
    )
    assert "taint/http-header" in rules_in(
        analyze_package(root), CONTROLLER
    )


# -- suppression and precision ----------------------------------------------

def test_pragma_silences_injected_leak(tmp_path):
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        # pesos: allow[taint/log-line]\n"
        "        print(value)\n" + WRITE_VALUE_SEAL,
    )
    assert "taint/log-line" not in rules_in(analyze_package(root), STORE)


def test_mutated_tree_reports_only_the_mutation(tmp_path):
    # A single injected leak must not fan out into unrelated files.
    root = mutate(
        tmp_path,
        STORE,
        WRITE_VALUE_SEAL,
        "        print(value)\n" + WRITE_VALUE_SEAL,
    )
    findings = analyze_package(root)
    assert {f.file for f in findings} == {STORE}


@pytest.mark.parametrize(
    "rel_path, anchor",
    [
        (STORE, WRITE_VALUE_SEAL),
        (CLIENT, "        response = self._roundtrip(MessageType.PUT, body)"),
        (CONTROLLER, GET_RESPONSE),
        (WEBSERVER, "unknown admin path"),
    ],
)
def test_anchors_still_exist(rel_path, anchor):
    assert anchor in (SRC / rel_path).read_text()
