"""Eraser-style lockset race detection on synthetic event streams."""

from repro.analysis.races import find_races

L1 = ("obj", "k1")
L2 = ("obj", "k2")


def test_single_thread_never_races():
    events = [
        ("dispatch", 0),
        ("access", 0, "field", "w"),
        ("access", 0, "field", "w"),
        ("access", 0, "field", "r"),
    ]
    assert find_races(events) == []


def test_consistently_locked_writes_are_clean():
    events = []
    for tid in (0, 1):
        events += [
            ("dispatch", tid),
            ("acquire", tid, L1, "w"),
            ("access", tid, "field", "w"),
            ("release", tid, L1),
        ]
    assert find_races(events) == []


def test_unprotected_second_writer_is_reported():
    events = [
        ("access", 0, "field", "w"),
        ("access", 1, "field", "w"),
    ]
    findings = find_races(events)
    assert len(findings) == 1
    assert findings[0].rule == "race/lockset"
    assert findings[0].context["writers"] == [0, 1]


def test_shared_reads_alone_are_not_a_race():
    events = [
        ("access", 0, "field", "r"),
        ("access", 1, "field", "r"),
        ("access", 2, "field", "r"),
    ]
    assert find_races(events) == []


def test_read_shared_then_unlocked_write_is_reported():
    events = [
        ("access", 0, "field", "r"),
        ("access", 1, "field", "r"),  # shared, candidates = {} already
        ("access", 1, "field", "w"),  # escalates to shared-modified
    ]
    findings = find_races(events)
    assert len(findings) == 1


def test_disjoint_locks_empty_the_candidate_set():
    events = [
        ("acquire", 0, L1, "w"),
        ("access", 0, "field", "w"),
        ("release", 0, L1),
        ("acquire", 1, L2, "w"),
        ("access", 1, "field", "w"),
        ("release", 1, L2),
    ]
    findings = find_races(events)
    assert len(findings) == 1
    assert "field" in findings[0].message


def test_group_acquisition_counts_as_holding():
    events = []
    for tid in (0, 1):
        events += [
            ("acquire_group", tid, (L1, L2)),
            ("access", tid, "field", "w"),
            ("release_group", tid, (L1, L2)),
        ]
    assert find_races(events) == []


def test_mixed_group_and_single_share_the_common_lock():
    events = [
        ("acquire_group", 0, (L1, L2)),
        ("access", 0, "field", "w"),
        ("release_group", 0, (L1, L2)),
        ("acquire", 1, L1, "w"),
        ("access", 1, "field", "w"),
        ("release", 1, L1),
    ]
    assert find_races(events) == []


def test_one_finding_per_field_not_per_access():
    events = [("access", 0, "f", "w")]
    for _ in range(5):
        events.append(("access", 1, "f", "w"))
    assert len(find_races(events)) == 1


def test_bytes_fields_render_in_message():
    events = [
        ("access", 0, b"m/key-1", "w"),
        ("access", 1, b"m/key-1", "w"),
    ]
    findings = find_races(events)
    assert "m/key-1" in findings[0].message
