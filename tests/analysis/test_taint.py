"""Unit tests for the taint engine on small synthetic packages.

Each test writes a minimal package into ``tmp_path`` and runs the real
:func:`analyze_package` with the default registry, pinning one transfer
rule at a time: sources, sanitizers, interprocedural summaries, branch
joins, containers, attribute scoping, declassifiers, exemptions, and
pragma suppression.
"""

from pathlib import Path

from repro.analysis.taint import Taint, analyze_package


def write_pkg(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "pkg"
    for rel_path, source in files.items():
        target = root / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def run(tmp_path: Path, files: dict):
    return analyze_package(write_pkg(tmp_path, files))


def rules(findings):
    return [f.rule for f in findings]


# -- the Taint value ---------------------------------------------------------

def test_taint_union_and_truthiness():
    clean = Taint()
    key = Taint(kinds=frozenset({"key"}))
    sym = Taint(params=frozenset({1}))
    assert not clean and key and sym
    both = key.union(sym)
    assert both.kinds == {"key"} and both.params == {1}
    assert clean.union(key) == key


# -- sources and sinks -------------------------------------------------------

def test_name_source_key_to_print(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def leak(private_key):\n"
        "    print(private_key)\n"
    )})
    assert rules(findings) == ["taint/log-line"]
    assert findings[0].file == "m.py"
    assert findings[0].line == 2
    assert "key" in findings[0].message


def test_aead_open_yields_plaintext(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "class Store:\n"
        "    def leak(self, blob):\n"
        "        plain = self._aead.open(blob, b'aad')\n"
        "        print(plain)\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_open_without_crypto_receiver_is_clean(tmp_path):
    # Builtin file ``open`` must not count as a decrypt source.
    findings = run(tmp_path, {"m.py": (
        "def fine(path):\n"
        "    data = open(path).read()\n"
        "    print(data)\n"
    )})
    assert findings == []


def test_sanitizer_clears_taint(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "class Store:\n"
        "    def fine(self, blob):\n"
        "        plain = self._aead.open(blob, b'aad')\n"
        "        print(self._aead.seal(plain, b'aad'))\n"
        "        print(hexdigest(plain))\n"
    )})
    assert findings == []


def test_exception_message_sink(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def boom(admin_key):\n"
        "    raise ValueError(f'bad credential {admin_key!r}')\n"
    )})
    assert rules(findings) == ["taint/exception-message"]


# -- flow through expressions and statements ---------------------------------

def test_branch_join_keeps_both_arms(tmp_path):
    # A strong update in ``else`` must not erase the ``if`` arm.
    findings = run(tmp_path, {"m.py": (
        "class Store:\n"
        "    def leak(self, blob, cooked):\n"
        "        if cooked:\n"
        "            value = self._aead.open(blob, b'a')\n"
        "        else:\n"
        "            value = blob\n"
        "        print(value)\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_container_store_taints_container(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def leak(private_key):\n"
        "    frame = {'op': 'put'}\n"
        "    frame['mac'] = private_key\n"
        "    print(frame)\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_fstring_carries_taint(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def leak(private_key):\n"
        "    print(f'k={private_key!r}')\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_comparison_yields_clean(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def fine(private_key, guess):\n"
        "    print(private_key == guess)\n"
    )})
    assert findings == []


def test_len_is_clean(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def fine(private_key):\n"
        "    print(len(private_key))\n"
    )})
    assert findings == []


# -- interprocedural summaries -----------------------------------------------

def test_flow_through_helper_return(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def ident(x):\n"
        "    return x\n"
        "\n"
        "def leak(private_key):\n"
        "    print(ident(private_key))\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_sink_crossing_reported_at_caller(tmp_path):
    # The finding lands on the *call* feeding the sink-reaching helper,
    # names the callee, and one pragma there silences it.
    findings = run(tmp_path, {"m.py": (
        "def emit(x):\n"
        "    print(x)\n"
        "\n"
        "def leak(private_key):\n"
        "    emit(private_key)\n"
    )})
    assert rules(findings) == ["taint/log-line"]
    assert findings[0].line == 5
    assert "via emit()" in findings[0].message


def test_transitive_crossing_two_hops(tmp_path):
    # The finding fires where the *concrete* secret enters the chain
    # (line 8); the intermediate hop carries only symbolic taint and
    # extends ``relay``'s summary instead of spamming a finding.
    findings = run(tmp_path, {"m.py": (
        "def emit(x):\n"
        "    print(x)\n"
        "\n"
        "def relay(y):\n"
        "    emit(y)\n"
        "\n"
        "def leak(private_key):\n"
        "    relay(private_key)\n"
    )})
    assert [f.line for f in findings] == [8]
    assert "via relay()" in findings[0].message


def test_method_call_on_self_resolved(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "class Node:\n"
        "    def emit(self, x):\n"
        "        print(x)\n"
        "\n"
        "    def leak(self, private_key):\n"
        "        self.emit(private_key)\n"
    )})
    assert rules(findings) == ["taint/log-line"]
    assert findings[0].line == 6


# -- attribute scoping -------------------------------------------------------

def test_self_attribute_flows_across_methods(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "class Holder:\n"
        "    def __init__(self, private_key):\n"
        "        self.stash = private_key\n"
        "\n"
        "    def leak(self):\n"
        "        print(self.stash)\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_foreign_attribute_does_not_alias_package_wide(tmp_path):
    # ``req.result = <secret>`` on one class must not taint every
    # ``.result`` load in the package (no anonymous bucket reads).
    findings = run(tmp_path, {"m.py": (
        "class Writer:\n"
        "    def fill(self, req, private_key):\n"
        "        req.result = private_key\n"
        "\n"
        "class Other:\n"
        "    def fine(self, item):\n"
        "        print(item.result)\n"
    )})
    assert findings == []


def test_local_composite_attribute_is_flow_sensitive(tmp_path):
    # Within one function, ``obj.attr = secret; sink(obj.attr)`` flows.
    findings = run(tmp_path, {"m.py": (
        "def leak(req, private_key):\n"
        "    req.token = private_key\n"
        "    print(req.token)\n"
    )})
    assert rules(findings) == ["taint/log-line"]


# -- declassifiers and exemptions --------------------------------------------

def test_declassifier_clears_return(tmp_path):
    # ``StoredMeta.decode`` is declassified: its output is structured
    # metadata, not the secret payload.
    findings = run(tmp_path, {"m.py": (
        "class StoredMeta:\n"
        "    def decode(self, blob):\n"
        "        return blob\n"
        "\n"
        "def fine(private_key):\n"
        "    print(StoredMeta.decode(private_key))\n"
    )})
    assert findings == []


def test_policy_decoder_raise_is_exempt_for_plaintext(tmp_path):
    files = {
        "policy/binary.py": (
            "class Decoder:\n"
            "    def decode(self, blob):\n"
            "        plain = self._aead.open(blob, b'a')\n"
            "        raise ValueError(f'bad policy {plain!r}')\n"
        ),
    }
    assert run(tmp_path, files) == []


def test_policy_decoder_raise_still_flags_key_material(tmp_path):
    files = {
        "policy/binary.py": (
            "def boom(private_key):\n"
            "    raise ValueError(f'bad {private_key!r}')\n"
        ),
    }
    assert rules(run(tmp_path, files)) == ["taint/exception-message"]


def test_analysis_tree_is_excluded(tmp_path):
    files = {
        "analysis/report.py": (
            "def show(private_key):\n"
            "    print(private_key)\n"
        ),
    }
    assert run(tmp_path, files) == []


# -- pragmas -----------------------------------------------------------------

def test_pragma_on_line_suppresses(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def fine(private_key):\n"
        "    print(private_key)  # pesos: allow[taint/log-line]\n"
    )})
    assert findings == []


def test_pragma_on_previous_line_suppresses(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def fine(private_key):\n"
        "    # pesos: allow[taint]\n"
        "    print(private_key)\n"
    )})
    assert findings == []


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def leak(private_key):\n"
        "    print(private_key)  # pesos: allow[taint/wire-frame]\n"
    )})
    assert rules(findings) == ["taint/log-line"]


def test_unrelated_code_stays_silent(tmp_path):
    findings = run(tmp_path, {"m.py": (
        "def fine(name, count):\n"
        "    total = count + 1\n"
        "    print(name, total)\n"
        "    return total\n"
    )})
    assert findings == []
