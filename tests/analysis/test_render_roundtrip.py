"""Round-trip fixed point over the shipped policy corpus.

For every policy in ``examples/policies/``: parse → compile →
decompile → recompile must reach a fixed point in one step — same
policy hash, and rendering the recompiled policy reproduces the
rendered text exactly.  This is the invariant the verifier's
``policy/divergent`` rule assumes, checked against real policies
rather than synthetic ones.
"""

from pathlib import Path

import pytest

from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_source
from repro.policy.render import render_policy

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "policies").glob(
        "*.policy"
    )
)


@pytest.fixture(params=EXAMPLES, ids=lambda p: p.stem)
def compiled(request):
    return compile_source(request.param.read_text())


def test_corpus_is_not_empty():
    assert len(EXAMPLES) >= 4


def test_render_recompile_is_a_fixed_point(compiled):
    rendered = render_policy(compiled)
    recompiled = compile_source(rendered)
    assert recompiled.policy_hash() == compiled.policy_hash()
    # One round-trip reaches the fixed point: rendering again is
    # byte-identical, not merely hash-stable.
    assert render_policy(recompiled) == rendered


def test_roundtrip_survives_wire_serialization(compiled):
    reloaded = CompiledPolicy.from_bytes(compiled.to_bytes())
    assert render_policy(reloaded) == render_policy(compiled)
    assert (
        compile_source(render_policy(reloaded)).policy_hash()
        == compiled.policy_hash()
    )
