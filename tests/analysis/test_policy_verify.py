"""Policy static verifier: defect fixtures + the controller surface."""

from pathlib import Path

import pytest

from repro.analysis.policy_verify import (
    verify_policy,
    verify_source,
    warnings_payload,
)
from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import (
    Request,
    parse_http_response,
    render_http_response,
)
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.policy.ast import IntValue
from repro.policy.binary import CompiledPolicy, Instruction
from repro.policy.compiler import compile_source

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "policies").glob(
        "*.policy"
    )
)


def rules(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Defect fixtures (one per rule)
# ---------------------------------------------------------------------------

def test_unsatisfiable_interval_conjunction():
    findings = verify_source(
        "update :- currVersion(O, V) /\\ lt(V, 5) /\\ gt(V, 9)"
    )
    assert rules(findings) == ["policy/unsat"]
    assert "empty interval" in findings[0].message


def test_unsatisfiable_strict_bounds_touching():
    # lt(V, 5) /\ gt(V, 4) admits nothing over the integers.
    findings = verify_source(
        "update :- currVersion(O, V) /\\ lt(V, 5) /\\ gt(V, 4)"
    )
    assert rules(findings) == ["policy/unsat"]


def test_satisfiable_bounds_are_clean():
    findings = verify_source(
        "update :- currVersion(O, V) /\\ ge(V, 5) /\\ le(V, 5)"
    )
    assert findings == []


def test_conflicting_equalities():
    findings = verify_source(
        "update :- objId(this, O) /\\ eq(O, 1) /\\ eq(O, 2)"
    )
    assert rules(findings) == ["policy/unsat"]


def test_constant_comparison_always_false():
    findings = verify_source("update :- objId(this, O) /\\ ge(3, 5)")
    assert rules(findings) == ["policy/unsat"]


def test_shadowed_clause_under_first_match():
    findings = verify_source(
        "read :- sessionKeyIs(k'aa')"
        " \\/ sessionKeyIs(k'aa') /\\ objId(this, O)"
    )
    assert rules(findings) == ["policy/shadowed"]
    assert findings[0].severity == "warning"
    assert "clause 2" in findings[0].message


def test_duplicate_clause_reported_as_shadowed():
    findings = verify_source(
        "read :- sessionKeyIs(k'aa') \\/ sessionKeyIs(k'aa')"
    )
    assert rules(findings) == ["policy/shadowed"]
    assert "duplicate" in findings[0].message


def test_distinct_clauses_are_not_shadowed():
    findings = verify_source(
        "read :- sessionKeyIs(k'aa') \\/ sessionKeyIs(k'bb')"
    )
    assert findings == []


def test_undefined_predicate_opcode():
    policy = CompiledPolicy(
        permissions={"read": [[Instruction(opcode=99, args=[])]]}
    )
    findings = verify_policy(policy)
    assert "policy/undefined-predicate" in rules(findings)


def test_bad_arity():
    # eq is binary; a unary call can never evaluate.
    policy = compile_source("read :- sessionKeyIs(k'aa')")
    policy.permissions["read"][0].append(
        Instruction(opcode=1, args=[["c", 0]])
    )
    policy._blob_cache = None
    findings = verify_policy(policy)
    assert "policy/bad-arity" in rules(findings)


def test_bad_reference_and_bad_index():
    policy = CompiledPolicy(
        permissions={
            "read": [
                [Instruction(opcode=20, args=[["r", "self"], ["c", 7]])]
            ]
        }
    )
    findings = verify_policy(policy)
    reported = rules(findings)
    assert reported.count("policy/bad-reference") == 2  # ref + pool index


def test_divergent_tampered_binary():
    policy = compile_source("read :- sessionKeyIs(k'aa')")
    policy.constants.append(IntValue(12345))  # dead weight in the pool
    policy._blob_cache = None
    findings = verify_policy(policy)
    assert "policy/divergent" in rules(findings)


def test_divergent_stale_embedded_source():
    policy = compile_source("read :- sessionKeyIs(k'aa')")
    policy.source = "read :- sessionKeyIs(k'bb')"
    findings = verify_policy(policy)
    assert rules(findings) == ["policy/divergent"]
    assert "embedded source" in findings[0].message


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_policies_are_clean(path):
    assert verify_source(path.read_text()) == []


def test_warnings_payload_shape():
    findings = verify_source(
        "update :- currVersion(O, V) /\\ lt(V, 5) /\\ gt(V, 9)"
    )
    payload = warnings_payload(findings)
    assert payload[0]["rule"] == "policy/unsat"
    assert set(payload[0]) == {"rule", "severity", "message"}


# ---------------------------------------------------------------------------
# Controller + HTTP surface
# ---------------------------------------------------------------------------

def _controller(**config):
    cluster = DriveCluster(num_drives=1)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(
        clients,
        storage_key=b"k" * 32,
        config=ControllerConfig(**config),
    )


BAD_POLICY = "update :- currVersion(O, V) /\\ lt(V, 5) /\\ gt(V, 9)"


def test_put_policy_attaches_structured_warnings():
    controller = _controller()
    response = controller.put_policy("fp", BAD_POLICY)
    assert response.ok  # advisory, never a rejection
    warnings = response.extra["warnings"]
    assert warnings[0]["rule"] == "policy/unsat"


def test_put_policy_clean_source_has_no_warnings():
    controller = _controller()
    response = controller.put_policy("fp", "read :- sessionKeyIs(K)")
    assert response.ok
    assert "warnings" not in response.extra


def test_put_policy_verification_can_be_disabled():
    controller = _controller(verify_policies=False)
    response = controller.put_policy("fp", BAD_POLICY)
    assert response.ok
    assert "warnings" not in response.extra


def test_warnings_survive_the_http_response_roundtrip():
    controller = _controller()
    response = controller.handle(
        Request(method="put_policy", value=BAD_POLICY.encode()), "fp"
    )
    wire = render_http_response(response)
    assert b"X-Pesos-Policy-Warnings:" in wire
    parsed = parse_http_response(wire)
    assert parsed.extra["warnings"] == response.extra["warnings"]
