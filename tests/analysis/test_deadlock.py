"""Lock-order-graph deadlock detection on synthetic event streams."""

from repro.analysis.deadlock import build_lock_order_graph, find_deadlocks

A, B, C = ("obj", "a"), ("obj", "b"), ("obj", "c")


def _nested(tid, outer, inner):
    return [
        ("acquire", tid, outer, "w"),
        ("acquire", tid, inner, "w"),
        ("release", tid, inner),
        ("release", tid, outer),
    ]


def test_consistent_order_is_acyclic():
    events = _nested(0, A, B) + _nested(1, A, B)
    assert find_deadlocks(events) == []


def test_opposite_orders_form_a_cycle():
    events = _nested(0, A, B) + _nested(1, B, A)
    findings = find_deadlocks(events)
    assert len(findings) == 1
    assert findings[0].rule == "deadlock/lock-order"
    assert "cycle" in findings[0].message


def test_three_lock_rotation_cycle():
    events = _nested(0, A, B) + _nested(1, B, C) + _nested(2, C, A)
    findings = find_deadlocks(events)
    assert len(findings) == 1
    assert len(findings[0].context["cycle"]) == 3


def test_atomic_group_creates_no_internal_edges():
    events = [
        ("acquire_group", 0, (A, B)),
        ("release_group", 0, (A, B)),
        ("acquire_group", 1, (B, A)),
        ("release_group", 1, (B, A)),
    ]
    assert build_lock_order_graph(events) == {}
    assert find_deadlocks(events) == []


def test_lock_held_before_group_still_orders_members():
    events = [
        ("acquire", 0, C, "w"),
        ("acquire_group", 0, (A, B)),
        ("release_group", 0, (A, B)),
        ("release", 0, C),
    ]
    graph = build_lock_order_graph(events)
    assert set(graph[C]) == {A, B}


def test_reentrant_reacquisition_makes_no_self_edge():
    events = [
        ("acquire", 0, A, "w"),
        ("acquire", 0, A, "w"),
        ("release", 0, A),
        ("release", 0, A),
    ]
    assert build_lock_order_graph(events) == {}


def test_cycle_reported_once_across_threads():
    events = (
        _nested(0, A, B)
        + _nested(1, B, A)
        + _nested(2, A, B)
        + _nested(3, B, A)
    )
    assert len(find_deadlocks(events)) == 1
