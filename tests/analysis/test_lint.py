"""Project lint rules: each fires on a minimal snippet, the pragma
silences it, and the repository itself is clean."""

from pathlib import Path

from repro.analysis.__main__ import analyze_targets, default_targets
from repro.analysis.lint import lint_source

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules(source, rel_path="core/example.py"):
    return [f.rule for f in lint_source(source, rel_path)]


# -- det-wall-clock ----------------------------------------------------------

def test_wall_clock_read_flagged():
    assert rules("import time\nt = time.time()\n") == ["det-wall-clock"]


def test_wall_clock_alias_does_not_dodge():
    assert rules("import time as _time\nt = _time.time()\n") == [
        "det-wall-clock"
    ]


def test_datetime_now_flagged_from_import():
    source = "from datetime import datetime\nt = datetime.now()\n"
    assert rules(source) == ["det-wall-clock"]


def test_perf_counter_measurement_is_allowed():
    assert rules("import time\nt = time.perf_counter()\n") == []


def test_bench_driver_is_exempt():
    source = "import time\nt = time.time()\n"
    assert lint_source(source, "bench/__main__.py") == []


# -- det-unseeded-random -----------------------------------------------------

def test_global_random_flagged():
    assert rules("import random\nx = random.random()\n") == [
        "det-unseeded-random"
    ]


def test_seeded_rng_instance_is_fine():
    source = "import random\nrng = random.Random(7)\nx = rng.random()\n"
    assert rules(source) == []


# -- sgx-enclave-io ----------------------------------------------------------

def test_socket_inside_enclave_flagged():
    source = "import socket\ns = socket.socket()\n"
    reported = [
        f.rule for f in lint_source(source, "sgx/enclave.py")
    ]
    assert reported == ["sgx-enclave-io", "sgx-enclave-io"]  # import + call


def test_builtin_open_inside_enclave_flagged():
    assert [
        f.rule
        for f in lint_source("fh = open('x')\n", "sgx/shields.py")
    ] == ["sgx-enclave-io"]


def test_syscall_model_is_exempt():
    source = "import socket\ns = socket.socket()\n"
    assert lint_source(source, "sgx/syscalls.py") == []


def test_aead_open_method_is_not_builtin_open():
    assert lint_source("x = aead.open(blob)\n", "sgx/shields.py") == []


def test_io_outside_sgx_is_not_this_rules_problem():
    assert rules("import socket\ns = socket.socket()\n") == []


# -- core-drive-io -----------------------------------------------------------

def test_direct_drive_call_in_core_flagged():
    assert rules("r = client.direct('get', key)\n") == ["core-drive-io"]


def test_direct_call_with_pragma_allowed():
    source = "r = client.direct('get', key)  # pesos: allow[core-drive-io]\n"
    assert rules(source) == []


def test_direct_outside_core_is_fine():
    source = "r = client.direct('get', key)\n"
    assert lint_source(source, "kinetic/client.py") == []


# -- core-no-swallow ---------------------------------------------------------

def test_swallowing_broad_except_flagged():
    source = "try:\n    x()\nexcept Exception:\n    pass\n"
    assert rules(source) == ["core-no-swallow"]


def test_bare_except_flagged():
    source = "try:\n    x()\nexcept:\n    y = 1\n"
    assert rules(source) == ["core-no-swallow"]


def test_reraising_broad_except_warns_in_core():
    # Deliberate catch-alls in core/ must carry a justification
    # pragma; the finding is a warning, so the CI gate still passes.
    source = "try:\n    x()\nexcept Exception:\n    count()\n    raise\n"
    findings = lint_source(source, "core/example.py")
    assert rules(source) == ["core-no-swallow"]
    assert [f.severity for f in findings] == ["warning"]


def test_reraising_broad_except_outside_core_is_fine():
    source = "try:\n    x()\nexcept Exception:\n    count()\n    raise\n"
    assert lint_source(source, "kinetic/client.py") == []


def test_broad_except_leaking_exc_into_response_flagged():
    source = (
        "try:\n"
        "    x()\n"
        "except Exception as exc:\n"
        "    resp = Response(status=500, error=f'failed: {exc}')\n"
        "    raise\n"
    )
    findings = lint_source(source, "core/example.py")
    assert "interpolates the raw exception" in findings[0].message
    assert findings[0].severity == "error"


def test_narrow_except_into_response_is_fine():
    # A typed handler reprs a known protocol error, not arbitrary
    # internal state.
    source = (
        "try:\n"
        "    x()\n"
        "except PesosError as exc:\n"
        "    resp = Response(status=exc.status, error=str(exc))\n"
    )
    assert rules(source) == []


def test_narrow_except_is_fine():
    source = "try:\n    x()\nexcept ValueError:\n    pass\n"
    assert rules(source) == []


def test_base_exception_is_deliberate_and_excluded():
    source = "try:\n    x()\nexcept BaseException as exc:\n    keep(exc)\n"
    assert rules(source) == []


# -- crypto-nonce-reuse ------------------------------------------------------

def test_constant_nonce_flagged():
    source = "blob = gcm.seal(bytes(12), data, aad)\n"
    assert rules(source, "crypto/example.py") == ["crypto-nonce-reuse"]


def test_reused_attribute_nonce_flagged():
    source = (
        "def seal_it(self, data):\n"
        "    return self._gcm.seal(self.last_nonce, data)\n"
    )
    assert rules(source, "crypto/example.py") == ["crypto-nonce-reuse"]


def test_token_bytes_nonce_allowed():
    source = (
        "def seal_it(gcm, data):\n"
        "    nonce = secrets.token_bytes(12)\n"
        "    return nonce + gcm.seal(nonce, data)\n"
    )
    assert rules(source, "crypto/example.py") == []


def test_counter_derived_nonce_allowed():
    source = (
        "def send(self, data):\n"
        "    nonce = self._seq.to_bytes(12, 'big')\n"
        "    self._seq += 1\n"
        "    return self._gcm.seal(nonce, data)\n"
    )
    assert rules(source, "crypto/example.py") == []


def test_nonce_param_passthrough_allowed():
    # Wrapper idiom: the caller owes the freshness.
    source = (
        "def seal(self, nonce, plaintext, aad=b''):\n"
        "    return self._gcm.seal(nonce, plaintext, aad)\n"
    )
    assert rules(source, "crypto/example.py") == []


def test_nonce_helper_call_allowed():
    source = (
        "def write(self, gen, index, chunk):\n"
        "    return self._aead.seal(self._nonce(gen, index), chunk)\n"
    )
    assert rules(source, "sgx/example.py") == []


def test_single_arg_seal_not_a_nonce_call():
    # ``enclave.seal(data)`` takes no nonce; out of the rule's scope.
    source = "blob = enclave.seal(data)\n"
    assert rules(source, "sgx/example.py") == []


# -- telemetry-label-cardinality --------------------------------------------

def test_fstring_label_flagged():
    source = "m.labels(f'{kind}:{region}').inc()\n"
    assert rules(source) == ["telemetry-label-cardinality"]


def test_unbounded_identifier_label_flagged():
    assert rules("m.labels(request.key).inc()\n") == [
        "telemetry-label-cardinality"
    ]


def test_literal_and_bounded_labels_are_fine():
    assert rules("m.labels('get', outcome).inc()\n") == []


# -- det-default-clock -------------------------------------------------------

def test_defaulted_now_in_core_flagged():
    source = "def connect(fp, now=0.0):\n    pass\n"
    assert rules(source) == ["det-default-clock"]


def test_defaulted_keyword_only_clock_flagged():
    source = "def sweep(*, wall_clock: float = 0.0):\n    pass\n"
    assert rules(source) == ["det-default-clock"]


def test_required_clock_is_fine():
    source = "def connect(fp, *, now):\n    pass\n"
    assert rules(source) == []


def test_non_time_default_is_fine():
    assert rules("def f(depth=3):\n    pass\n") == []


def test_defaulted_clock_outside_core_is_fine():
    source = "def run(now=0.0):\n    pass\n"
    assert lint_source(source, "bench/harness.py") == []


def test_defaulted_clock_pragma_allowed():
    source = (
        "def handle(req, now=0.0):  # pesos: allow[det-default-clock]\n"
        "    pass\n"
    )
    assert rules(source) == []


# -- core-unverified-meta-read -----------------------------------------------

def test_raw_client_read_in_core_flagged():
    source = "blob, version = self.clients[index].get(disk_key)\n"
    assert rules(source) == ["core-unverified-meta-read"]


def test_raw_range_scan_in_core_flagged():
    source = "keys = client.get_key_range(start, end)\n"
    assert rules(source) == ["core-unverified-meta-read"]


def test_unverified_read_pragma_allowed():
    source = (
        "blob, v = self.store.clients[i].get(key)"
        "  # pesos: allow[core-unverified-meta-read]\n"
    )
    assert rules(source) == []


def test_store_implements_verification_and_is_exempt():
    source = "blob, version = self.clients[index].get(disk_key)\n"
    assert lint_source(source, "core/store.py") == []


def test_raw_read_outside_core_is_fine():
    source = "blob, version = self.clients[index].get(disk_key)\n"
    assert lint_source(source, "bench/harness.py") == []


def test_non_client_get_is_not_a_drive_read():
    assert rules("value = mapping.get(key)\n") == []


# -- policy-stale-decision-cache ---------------------------------------------

def test_decision_cache_write_without_epoch_flagged():
    source = "self.decisions.put(key, value)\n"
    assert rules(source) == ["policy-stale-decision-cache"]


def test_decision_cache_write_missing_only_epoch_flagged():
    source = "cache.decision_cache.put(policy_hash, op, shape, d)\n"
    assert rules(source) == ["policy-stale-decision-cache"]


def test_decision_cache_write_with_epoch_and_policy_is_fine():
    source = (
        "self.decisions.put(policy_hash, op, shape, "
        "epoch=self.decisions.epoch, decision=d)\n"
    )
    assert rules(source) == []


def test_non_decision_cache_put_is_not_flagged():
    assert rules("self.sessions.put(key, value)\n") == []


def test_decision_cache_write_pragma_allowed():
    source = (
        "self.decisions.put(key, value)"
        "  # pesos: allow[policy-stale-decision-cache]\n"
    )
    assert rules(source) == []


# -- the repository itself ---------------------------------------------------

def test_repo_source_tree_is_clean():
    findings = analyze_targets([SRC])
    assert findings == [], "\n".join(
        f"{f.location()}: {f.rule}" for f in findings
    )


def test_default_targets_include_example_policies():
    # default_targets resolves examples/ relative to the cwd; from the
    # repo root (how CI runs) the policy corpus must be picked up.
    targets = default_targets()
    assert targets[0] == SRC
