"""End-to-end sanitizer checks against the real engine.

Two directions:

- *Regression*: an engine variant with request-lock acquisition
  removed must produce race findings — proof the shadow state actually
  observes the engine and the detector bites when protection is gone.
- *No-op*: with the default ``NULL_SANITIZER`` the engine's virtual
  time and trace bytes are bit-identical to a sanitized run's, so the
  hooks cannot perturb what the determinism suite certifies.
"""

import pytest

from repro.analysis import ShadowState, find_deadlocks, find_races
from repro.core.engine import ConcurrentEngine
from tests.concurrency.harness import (
    LinearizabilityError,
    build_small_system,
    explore,
    make_workload,
)

SEEDS = [0, 3, 11]


class UnlockedEngine(ConcurrentEngine):
    """The engine with per-key request locking surgically removed."""

    def _lock_mode(self, request):
        return None


@pytest.mark.parametrize("seed", SEEDS)
def test_removing_request_locks_is_caught(seed):
    with pytest.raises(LinearizabilityError) as excinfo:
        explore(seed, engine_cls=UnlockedEngine)
    assert "race/lockset" in str(excinfo.value)


def test_unlocked_engine_findings_name_shared_disk_keys():
    controller = build_small_system(3)
    requests, _ = make_workload(controller, 3, 26)
    shadow = ShadowState()
    with UnlockedEngine(
        controller, seed=3, hardware_threads=6, sanitizer=shadow
    ) as engine:
        engine.run_batch(requests, "fp")
    findings = find_races(shadow.events)
    assert findings, "unlocked engine must race on shared disk keys"
    assert all(f.rule == "race/lockset" for f in findings)


@pytest.mark.parametrize("seed", SEEDS)
def test_locked_engine_is_race_and_deadlock_free(seed):
    exploration = explore(seed)
    assert exploration.sanitizer_findings == []


def test_lock_order_graph_of_real_runs_is_acyclic():
    controller = build_small_system(5)
    requests, _ = make_workload(controller, 5, 26)
    shadow = ShadowState()
    with ConcurrentEngine(
        controller, seed=5, hardware_threads=6, sanitizer=shadow
    ) as engine:
        engine.run_batch(requests, "fp")
    assert shadow.events, "instrumentation recorded nothing"
    assert find_deadlocks(shadow.events) == []


def test_null_sanitizer_changes_nothing():
    """Same seed, hooks on vs off: bit-identical run artifacts."""
    results = {}
    for label, sanitizer in (("off", None), ("on", ShadowState())):
        controller = build_small_system(9)
        requests, _ = make_workload(controller, 9, 26)
        with ConcurrentEngine(
            controller, seed=9, hardware_threads=6, sanitizer=sanitizer
        ) as engine:
            engine.run_batch(requests, "fp")
            results[label] = (
                engine.trace_bytes(),
                engine.stats.virtual_seconds,
            )
    assert results["off"] == results["on"]


def test_sanitizer_overhead_within_budget():
    """The acceptance gate: recording hooks cost <5% virtual time."""
    from repro.bench.concurrency import ConcurrencyConfig, run_sanitizer_overhead

    config = ConcurrencyConfig(record_count=16, operations=64)
    report = run_sanitizer_overhead(config, workers=4)
    assert report["within_budget"]
    assert report["overhead_pct"] == 0.0  # hooks never touch the clock
    assert report["shadow_events"] > 0


def test_engine_close_restores_the_null_sanitizer():
    controller = build_small_system(0)
    shadow = ShadowState()
    engine = ConcurrentEngine(controller, seed=0, sanitizer=shadow)
    assert controller.request_locks.sanitizer is shadow
    assert controller.txns.sanitizer is shadow
    assert engine.scheduler.sanitizer is shadow
    engine.close()
    assert controller.request_locks.sanitizer is not shadow
    assert controller.txns.sanitizer is not shadow
    assert not controller.request_locks.sanitizer.enabled
