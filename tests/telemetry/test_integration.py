"""End-to-end telemetry: instrumented request path + admin endpoints."""

import json

import pytest

from repro.core.controller import PesosController
from repro.core.request import Request, build_http_request, parse_http_response
from repro.core.webserver import WebServer
from repro.telemetry import NULL_TELEMETRY, Telemetry
from tests.core.conftest import ALICE, make_clients


@pytest.fixture()
def telemetry():
    return Telemetry()


@pytest.fixture()
def server(telemetry):
    clients, _cluster = make_clients()
    controller = PesosController(
        clients, storage_key=b"k" * 32, telemetry=telemetry
    )
    return WebServer(controller)


def _roundtrip(server):
    put = server.handle_bytes(
        build_http_request(Request(method="put", key="doc", value=b"v" * 64)),
        ALICE,
    )
    assert parse_http_response(put).status == 200
    get = server.handle_bytes(
        build_http_request(Request(method="get", key="doc")), ALICE
    )
    assert parse_http_response(get).status == 200


def _admin(server, path):
    raw = server.handle_bytes(f"GET {path} HTTP/1.1\r\n\r\n".encode(), ALICE)
    head, body = raw.split(b"\r\n\r\n", 1)
    status = int(head.split(b" ", 2)[1])
    return status, body


def test_server_inherits_controller_telemetry(server, telemetry):
    assert server.telemetry is telemetry


def test_metrics_cover_every_layer(server):
    _roundtrip(server)
    status, body = _admin(server, "/_metrics")
    assert status == 200
    text = body.decode()
    for family in (
        "pesos_http_requests_total",          # webserver
        "pesos_http_bytes_total",
        "pesos_controller_requests_total",    # controller
        "pesos_policy_check_seconds",
        "pesos_cache_hit_ratio",              # enclave caches
        "pesos_drive_op_seconds",             # store -> kinetic
        "pesos_drive_bytes_total",
        "pesos_sgx_transitions_total",        # sgx transition estimate
        "pesos_sessions_active",              # derived callback gauge
    ):
        assert family in text, family
    assert 'pesos_controller_requests_total{method="put",outcome="ok"} 1' in text
    assert 'pesos_controller_requests_total{method="get",outcome="ok"} 1' in text
    assert 'pesos_sgx_transitions_total{reason="client_io"} 4' in text


def test_metrics_json_format(server):
    _roundtrip(server)
    status, body = _admin(server, "/_metrics?format=json")
    assert status == 200
    data = json.loads(body)
    assert data["pesos_http_requests_total"]["kind"] == "counter"
    assert data["pesos_http_requests_total"]["samples"][0]["value"] == 2


def test_traces_show_nested_layers_with_durations(server):
    _roundtrip(server)
    status, body = _admin(server, "/_traces")
    assert status == 200
    dump = json.loads(body)
    assert dump["traces_completed"] == 2

    def depth_path(span):
        best = [span["name"]]
        for child in span["children"]:
            tail = depth_path(child)
            if len(tail) + 1 > len(best):
                best = [span["name"], *tail]
        return best

    put_trace = dump["recent"][0]
    path = depth_path(put_trace)
    # http.request > controller.handle > store.store_version > kinetic.put
    assert path[0] == "http.request"
    assert "controller.handle" in path
    assert "store.store_version" in path
    assert "kinetic.put" in path
    assert len(path) >= 4

    def walk(span):
        yield span
        for child in span["children"]:
            yield from walk(child)

    for name in ("http.request", "controller.handle",
                 "store.store_version", "kinetic.put"):
        span = next(s for s in walk(put_trace) if s["name"] == name)
        assert span["duration_s"] > 0.0, name


def test_traces_limit_parameter(server):
    for _ in range(5):
        _roundtrip(server)
    _status, body = _admin(server, "/_traces?limit=3")
    assert len(json.loads(body)["recent"]) == 3


def test_admin_scrapes_do_not_distort_serving_stats(server):
    _roundtrip(server)
    before = server.stats.requests
    _admin(server, "/_metrics")
    _admin(server, "/_traces")
    assert server.stats.requests == before


def test_unknown_admin_path_is_404(server):
    status, _body = _admin(server, "/_whatever")
    assert status == 404


def test_disabled_telemetry_returns_503():
    clients, _cluster = make_clients()
    controller = PesosController(clients, storage_key=b"k" * 32)
    server = WebServer(controller, telemetry=NULL_TELEMETRY)
    status, body = _admin(server, "/_metrics")
    assert status == 503
    assert b"telemetry disabled" in body


def test_policy_denial_counted(server, telemetry):
    policy = server.controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    )
    server.handle_bytes(
        build_http_request(
            Request(method="put", key="sec", value=b"v",
                    policy_id=policy.policy_id)
        ),
        ALICE,
    )
    raw = server.handle_bytes(
        build_http_request(Request(method="get", key="sec")), "fp-eve"
    )
    assert parse_http_response(raw).status == 403
    counter = telemetry.registry.get("pesos_policy_denials_total")
    assert counter.labels("read").value == 1


def test_slow_log_threshold():
    clients, _cluster = make_clients()
    slow_telemetry = Telemetry(slow_threshold=0.0)
    controller = PesosController(
        clients, storage_key=b"k" * 32, telemetry=slow_telemetry
    )
    server = WebServer(controller)
    _roundtrip(server)
    assert len(slow_telemetry.tracer.slow()) == 2


def test_async_completed_after_evict_surfaces(server, telemetry):
    from repro.core.asyncapi import AsyncTracker

    # buffer_size=0: every begin() immediately evicts its own entry,
    # so the in-flight operation completes after eviction — the worst
    # case the counter exists to witness.
    server.controller.async_tracker = AsyncTracker(buffer_size=0)
    raw = server.handle_bytes(
        build_http_request(
            Request(method="put", key="k", value=b"v", asynchronous=True)
        ),
        ALICE,
    )
    assert parse_http_response(raw).status == 202
    status, body = _admin(server, "/_metrics")
    assert status == 200
    text = body.decode()
    assert "pesos_async_completed_after_evict_total 1" in text
    assert 'pesos_async_results_discarded_total{state="pending"} 1' in text
    names = [
        span.name
        for root in telemetry.tracer.recent()
        for span in root.walk()
    ]
    assert "async.completed_after_evict" in names
