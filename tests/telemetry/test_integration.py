"""End-to-end telemetry: instrumented request path + admin endpoints."""

import json

import pytest

from repro.core.controller import PesosController
from repro.core.request import Request, build_http_request, parse_http_response
from repro.core.webserver import WebServer
from repro.telemetry import NULL_TELEMETRY, Telemetry
from tests.core.conftest import ALICE, make_clients


@pytest.fixture()
def telemetry():
    return Telemetry()


@pytest.fixture()
def server(telemetry):
    clients, _cluster = make_clients()
    controller = PesosController(
        clients, storage_key=b"k" * 32, telemetry=telemetry
    )
    return WebServer(controller)


def _roundtrip(server):
    put = server.handle_bytes(
        build_http_request(Request(method="put", key="doc", value=b"v" * 64)),
        ALICE,
    )
    assert parse_http_response(put).status == 200
    get = server.handle_bytes(
        build_http_request(Request(method="get", key="doc")), ALICE
    )
    assert parse_http_response(get).status == 200


def _admin(server, path):
    raw = server.handle_bytes(f"GET {path} HTTP/1.1\r\n\r\n".encode(), ALICE)
    head, body = raw.split(b"\r\n\r\n", 1)
    status = int(head.split(b" ", 2)[1])
    return status, body


def test_server_inherits_controller_telemetry(server, telemetry):
    assert server.telemetry is telemetry


def test_metrics_cover_every_layer(server):
    _roundtrip(server)
    status, body = _admin(server, "/_metrics")
    assert status == 200
    text = body.decode()
    for family in (
        "pesos_http_requests_total",          # webserver
        "pesos_http_bytes_total",
        "pesos_controller_requests_total",    # controller
        "pesos_policy_check_seconds",
        "pesos_cache_hit_ratio",              # enclave caches
        "pesos_drive_op_seconds",             # store -> kinetic
        "pesos_drive_bytes_total",
        "pesos_sgx_transitions_total",        # sgx transition estimate
        "pesos_sessions_active",              # derived callback gauge
    ):
        assert family in text, family
    assert 'pesos_controller_requests_total{method="put",outcome="ok"} 1' in text
    assert 'pesos_controller_requests_total{method="get",outcome="ok"} 1' in text
    assert 'pesos_sgx_transitions_total{reason="client_io"} 4' in text


def test_metrics_json_format(server):
    _roundtrip(server)
    status, body = _admin(server, "/_metrics?format=json")
    assert status == 200
    data = json.loads(body)
    assert data["pesos_http_requests_total"]["kind"] == "counter"
    assert data["pesos_http_requests_total"]["samples"][0]["value"] == 2


def test_traces_show_nested_layers_with_durations(server):
    _roundtrip(server)
    status, body = _admin(server, "/_traces")
    assert status == 200
    dump = json.loads(body)
    assert dump["traces_completed"] == 2

    def depth_path(span):
        best = [span["name"]]
        for child in span["children"]:
            tail = depth_path(child)
            if len(tail) + 1 > len(best):
                best = [span["name"], *tail]
        return best

    put_trace = dump["recent"][0]
    path = depth_path(put_trace)
    # http.request > controller.handle > store.store_version > kinetic.put
    assert path[0] == "http.request"
    assert "controller.handle" in path
    assert "store.store_version" in path
    assert "kinetic.put" in path
    assert len(path) >= 4

    def walk(span):
        yield span
        for child in span["children"]:
            yield from walk(child)

    for name in ("http.request", "controller.handle",
                 "store.store_version", "kinetic.put"):
        span = next(s for s in walk(put_trace) if s["name"] == name)
        assert span["duration_s"] > 0.0, name


def test_traces_limit_parameter(server):
    for _ in range(5):
        _roundtrip(server)
    _status, body = _admin(server, "/_traces?limit=3")
    assert len(json.loads(body)["recent"]) == 3


def test_admin_scrapes_do_not_distort_serving_stats(server):
    _roundtrip(server)
    before = server.stats.requests
    _admin(server, "/_metrics")
    _admin(server, "/_traces")
    assert server.stats.requests == before


def test_unknown_admin_path_is_404(server):
    status, _body = _admin(server, "/_whatever")
    assert status == 404


def test_disabled_telemetry_returns_503():
    clients, _cluster = make_clients()
    controller = PesosController(clients, storage_key=b"k" * 32)
    server = WebServer(controller, telemetry=NULL_TELEMETRY)
    status, body = _admin(server, "/_metrics")
    assert status == 503
    assert b"telemetry disabled" in body


def test_policy_denial_counted(server, telemetry):
    policy = server.controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    )
    server.handle_bytes(
        build_http_request(
            Request(method="put", key="sec", value=b"v",
                    policy_id=policy.policy_id)
        ),
        ALICE,
    )
    raw = server.handle_bytes(
        build_http_request(Request(method="get", key="sec")), "fp-eve"
    )
    assert parse_http_response(raw).status == 403
    counter = telemetry.registry.get("pesos_policy_denials_total")
    assert counter.labels("read").value == 1


def test_slow_log_threshold():
    clients, _cluster = make_clients()
    slow_telemetry = Telemetry(slow_threshold=0.0)
    controller = PesosController(
        clients, storage_key=b"k" * 32, telemetry=slow_telemetry
    )
    server = WebServer(controller)
    _roundtrip(server)
    assert len(slow_telemetry.tracer.slow()) == 2


def test_slo_endpoint_503_without_engine(server):
    status, body = _admin(server, "/_slo")
    assert status == 503
    assert b"no slo engine attached" in body


def test_slo_endpoint_reports_budgets(server, telemetry):
    telemetry.attach_slo()
    _roundtrip(server)
    status, body = _admin(server, "/_slo")
    assert status == 200
    snap = json.loads(body)
    assert snap["recorded"] == 2
    assert snap["worst_state"] == "healthy"
    by_name = {obj["slo"]: obj for obj in snap["objectives"]}
    assert by_name["get-p1-availability"]["events_in_window"] == 1
    assert by_name["put-p2-availability"]["budget_remaining"] == 1.0


def test_slo_endpoint_prometheus_format(server, telemetry):
    telemetry.attach_slo()
    _roundtrip(server)
    status, body = _admin(server, "/_slo?format=prometheus")
    assert status == 200
    text = body.decode()
    assert "pesos_slo_error_budget_remaining" in text
    assert 'pesos_slo_burn_rate{slo="get-p1-availability",window="fast"}' in text


def test_slo_exemplars_resolve_to_traces(server, telemetry):
    from repro.telemetry import SloEngine, SloSpec

    # A zero-latency threshold makes every served GET a breach, so the
    # objective collects exemplar trace ids we can chase via /_traces.
    telemetry.attach_slo(SloEngine([
        SloSpec(name="tight", request_class="get/p1", objective="latency",
                target=0.5, threshold=0.0, window=60.0),
    ]))
    _roundtrip(server)
    _status, body = _admin(server, "/_slo")
    (objective,) = json.loads(body)["objectives"]
    assert objective["exemplar_trace_ids"]
    for trace_id in objective["exemplar_trace_ids"]:
        span = telemetry.tracer.find(trace_id)
        assert span is not None
        assert span.op == "get"


def test_health_folds_slo_state(server, telemetry):
    telemetry.attach_slo()
    _roundtrip(server)
    # One failing GET among three: budget (1% of 3 events) is blown.
    raw = server.handle_bytes(
        build_http_request(Request(method="get", key="absent")), ALICE
    )
    assert parse_http_response(raw).status == 404
    status, body = _admin(server, "/_health")
    report = json.loads(body)
    assert report["slo"]["worst_state"] == "exhausted"
    assert report["slo"]["status"] == "critical"
    assert report["status"] == "critical"
    assert status == 503


def test_health_without_engine_has_no_slo_section(server):
    status, body = _admin(server, "/_health")
    assert status == 200
    assert "slo" not in json.loads(body)


def test_health_and_admission_snapshot_under_null_telemetry():
    from repro.core.admission import AdmissionController

    clients, _cluster = make_clients()
    controller = PesosController(clients, storage_key=b"k" * 32)
    server = WebServer(
        controller, telemetry=NULL_TELEMETRY,
        admission=AdmissionController(),
    )
    _roundtrip(server)
    status, body = _admin(server, "/_health")
    assert status == 200
    report = json.loads(body)
    assert report["status"] == "ok"
    assert "slo" not in report
    assert report["admission"]["admitted"] == 2
    assert report["admission"]["queue_depth"] == 0


def _audit_server(telemetry=None):
    from repro.core.controller import ControllerConfig

    clients, _cluster = make_clients()
    controller = PesosController(
        clients, storage_key=b"k" * 32,
        config=ControllerConfig(audit_log_size=64),
        telemetry=telemetry,
    )
    if telemetry is None:
        return WebServer(controller, telemetry=NULL_TELEMETRY)
    return WebServer(controller)


def test_audit_endpoint_503_when_disabled(server):
    status, body = _admin(server, "/_audit")
    assert status == 503
    assert b"audit log disabled" in body


def _policied_roundtrip(server):
    """A put+get pair governed by a policy, so decisions get audited."""
    policy = server.controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    )
    put = server.handle_bytes(
        build_http_request(
            Request(method="put", key="doc", value=b"v" * 64,
                    policy_id=policy.policy_id)
        ),
        ALICE,
    )
    assert parse_http_response(put).status == 200
    get = server.handle_bytes(
        build_http_request(Request(method="get", key="doc")), ALICE
    )
    assert parse_http_response(get).status == 200


def test_audit_endpoint_records_decisions():
    telemetry = Telemetry()
    server = _audit_server(telemetry)
    _policied_roundtrip(server)
    status, body = _admin(server, "/_audit?verify=1")
    assert status == 200
    snap = json.loads(body)
    assert snap["length"] == 2
    assert snap["decisions"] == {"allow": 2}
    assert snap["verification"]["ok"]
    operations = [record["operation"] for record in snap["records"]]
    assert operations == ["update", "read"]
    # The chain head also lands on the scrape.
    head = snap["head"]
    _status, metrics = _admin(server, "/_metrics")
    assert f'pesos_audit_chain_head{{digest="{head}"}} 2' in metrics.decode()


def test_audit_endpoint_answers_without_telemetry():
    # The chain is config-gated, not telemetry-gated: it must answer
    # (and verify) with metrics off.
    server = _audit_server()
    _policied_roundtrip(server)
    status, body = _admin(server, "/_audit?verify=1")
    assert status == 200
    assert json.loads(body)["verification"]["ok"]
    status, _body = _admin(server, "/_metrics")
    assert status == 503


def test_audit_verify_detects_flipped_byte():
    server = _audit_server()
    _policied_roundtrip(server)
    status, _body = _admin(server, "/_audit?verify=1")
    assert status == 200
    record = server.controller.auditor.log.records[0]
    record.decision = "deny" if record.decision == "allow" else "allow"
    status, body = _admin(server, "/_audit?verify=1")
    assert status == 500
    verification = json.loads(body)["verification"]
    assert not verification["ok"]
    assert verification["first_bad_seq"] == record.seq


def test_policy_denial_lands_in_audit_chain():
    server = _audit_server(Telemetry())
    policy = server.controller.put_policy(
        ALICE,
        f"read :- sessionKeyIs(k'{ALICE}')\n"
        f"update :- sessionKeyIs(k'{ALICE}')",
    )
    server.handle_bytes(
        build_http_request(
            Request(method="put", key="sec", value=b"v",
                    policy_id=policy.policy_id)
        ),
        ALICE,
    )
    raw = server.handle_bytes(
        build_http_request(Request(method="get", key="sec")), "fp-eve"
    )
    assert parse_http_response(raw).status == 403
    snap = server.controller.auditor.snapshot()
    deny = next(
        record for record in snap["records"]
        if record["decision"] == "deny"
    )
    assert deny["operation"] == "read"
    assert deny["session"] == "fp-eve"
    assert deny["clause_path"] == "read/denied"
    assert deny["policy_hash"]
    assert server.controller.auditor.verify()["ok"]


def test_traces_slow_only_filter():
    clients, _cluster = make_clients()
    slow_telemetry = Telemetry(slow_threshold=0.0)
    controller = PesosController(
        clients, storage_key=b"k" * 32, telemetry=slow_telemetry
    )
    server = WebServer(controller)
    _roundtrip(server)
    status, body = _admin(server, "/_traces?slow=1")
    assert status == 200
    dump = json.loads(body)
    assert "recent" not in dump
    assert [span["op"] for span in dump["slow"]] == ["put", "get"]
    assert all(span["trace_id"] for span in dump["slow"])


def test_async_completed_after_evict_surfaces(server, telemetry):
    from repro.core.asyncapi import AsyncTracker

    # buffer_size=0: every begin() immediately evicts its own entry,
    # so the in-flight operation completes after eviction — the worst
    # case the counter exists to witness.
    server.controller.async_tracker = AsyncTracker(buffer_size=0)
    raw = server.handle_bytes(
        build_http_request(
            Request(method="put", key="k", value=b"v", asynchronous=True)
        ),
        ALICE,
    )
    assert parse_http_response(raw).status == 202
    status, body = _admin(server, "/_metrics")
    assert status == 200
    text = body.decode()
    assert "pesos_async_completed_after_evict_total 1" in text
    assert 'pesos_async_results_discarded_total{state="pending"} 1' in text
    names = [
        span.name
        for root in telemetry.tracer.recent()
        for span in root.walk()
    ]
    assert "async.completed_after_evict" in names
