"""Metrics registry: instruments, labels, and histogram math."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import MetricFamily, MetricsRegistry, Sample


@pytest.fixture()
def registry():
    return MetricsRegistry()


# -- counters ---------------------------------------------------------------

def test_counter_increments(registry):
    counter = registry.counter("ops_total")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3


def test_counter_rejects_negative(registry):
    counter = registry.counter("ops_total")
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_labeled_counter_keeps_independent_series(registry):
    counter = registry.counter("reqs_total", labelnames=("method",))
    counter.labels("get").inc(5)
    counter.labels("put").inc(2)
    assert counter.labels("get").value == 5
    assert counter.labels("put").value == 2
    assert counter.value == 7
    assert counter.series() == {("get",): 5, ("put",): 2}


def test_label_values_coerced_to_strings(registry):
    counter = registry.counter("status_total", labelnames=("status",))
    counter.labels(200).inc()
    assert counter.labels("200").value == 1


def test_wrong_label_arity_rejected(registry):
    counter = registry.counter("reqs_total", labelnames=("method",))
    with pytest.raises(ConfigurationError):
        counter.labels("get", "extra")


def test_get_or_create_returns_same_instrument(registry):
    first = registry.counter("ops_total", "help")
    second = registry.counter("ops_total")
    assert first is second


def test_kind_mismatch_rejected(registry):
    registry.counter("ops_total")
    with pytest.raises(ConfigurationError):
        registry.gauge("ops_total")


def test_label_mismatch_rejected(registry):
    registry.counter("ops_total", labelnames=("method",))
    with pytest.raises(ConfigurationError):
        registry.counter("ops_total", labelnames=("verb",))


# -- gauges -----------------------------------------------------------------

def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("depth")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


# -- histograms -------------------------------------------------------------

def test_histogram_le_bucket_semantics(registry):
    histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
        histogram.observe(value)
    child = histogram.labels()
    # le semantics: an observation equal to a bound lands in that bucket.
    assert child.counts == [2, 2, 1, 1]  # [<=1, <=2, <=4, +Inf]
    assert child.count == 6
    assert child.sum == pytest.approx(17.0)


def test_histogram_percentile_interpolates(registry):
    histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for _ in range(50):
        histogram.observe(0.5)
    for _ in range(50):
        histogram.observe(1.5)
    assert histogram.percentile(50) == pytest.approx(1.0)
    assert histogram.percentile(75) == pytest.approx(1.5)
    assert histogram.percentile(100) == pytest.approx(2.0)


def test_histogram_overflow_reports_top_bound(registry):
    histogram = registry.histogram("lat", buckets=(1.0, 2.0))
    histogram.observe(50.0)
    assert histogram.percentile(99) == 2.0


def test_histogram_empty_and_bad_percentile(registry):
    # An empty histogram has no percentiles: NaN, never a fake 0.0
    # that a dashboard would plot as perfect latency.
    histogram = registry.histogram("lat", buckets=(1.0,))
    assert math.isnan(histogram.percentile(99))
    with pytest.raises(ConfigurationError):
        histogram.percentile(0)
    with pytest.raises(ConfigurationError):
        histogram.percentile(101)


def test_histogram_empty_labeled_percentile_is_nan(registry):
    histogram = registry.histogram("lat", labelnames=("op",), buckets=(1.0,))
    assert math.isnan(histogram.percentile(50))


def test_histogram_single_bucket_percentile(registry):
    histogram = registry.histogram("lat", buckets=(1.0,))
    histogram.observe(0.25)
    # One bucket: every percentile interpolates inside (0, 1.0].
    assert 0.0 < histogram.percentile(50) <= 1.0
    assert histogram.percentile(100) == pytest.approx(1.0)


def test_histogram_all_overflow_percentile_reports_top_bound(registry):
    histogram = registry.histogram("lat", buckets=(1.0, 2.0))
    for _ in range(5):
        histogram.observe(100.0)  # everything lands in +Inf
    assert histogram.percentile(50) == 2.0
    assert histogram.percentile(99) == 2.0


def test_histogram_percentile_merges_label_children(registry):
    histogram = registry.histogram("lat", labelnames=("op",),
                                   buckets=(1.0, 2.0, 4.0))
    for _ in range(50):
        histogram.labels("get").observe(0.5)
    for _ in range(50):
        histogram.labels("put").observe(1.5)
    assert histogram.percentile(50) == pytest.approx(1.0)


def test_histogram_empty_buckets_fall_back_to_defaults():
    from repro.telemetry import DEFAULT_LATENCY_BUCKETS

    histogram = MetricsRegistry().histogram("lat", buckets=())
    assert histogram.bounds == tuple(sorted(DEFAULT_LATENCY_BUCKETS))


def test_histogram_mean(registry):
    histogram = registry.histogram("lat", buckets=(10.0,))
    histogram.observe(1.0)
    histogram.observe(3.0)
    assert histogram.labels().mean == pytest.approx(2.0)


# -- collection -------------------------------------------------------------

def test_collect_is_sorted_and_typed(registry):
    registry.counter("b_total", "bees")
    registry.gauge("a_depth", "depth")
    families = registry.collect()
    assert [family.name for family in families] == ["a_depth", "b_total"]
    assert [family.kind for family in families] == ["gauge", "counter"]


def test_callback_families_collected(registry):
    def derived():
        yield MetricFamily(
            name="hit_ratio", kind="gauge", help="",
            samples=[Sample("hit_ratio", {"region": "object"}, 0.75)],
        )

    registry.register_callback(derived)
    families = {family.name: family for family in registry.collect()}
    assert families["hit_ratio"].samples[0].value == 0.75


def test_reset_clears_everything(registry):
    registry.counter("ops_total").inc()
    registry.register_callback(lambda: [])
    registry.reset()
    assert registry.collect() == []
    assert registry.get("ops_total") is None
