"""Tracer: span nesting, ring buffer, slow log, virtual time."""

import pytest

from repro.telemetry import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock)


def test_spans_nest_into_a_tree(tracer):
    with tracer.span("root") as root:
        with tracer.span("child-a"):
            with tracer.span("grandchild"):
                pass
        with tracer.span("child-b"):
            pass
    assert [span.name for span in root.walk()] == [
        "root", "child-a", "grandchild", "child-b",
    ]
    assert all(span.trace_id == root.trace_id for span in root.walk())


def test_root_completion_lands_in_recent(tracer):
    with tracer.span("request"):
        pass
    assert [span.name for span in tracer.recent()] == ["request"]
    assert tracer.traces_completed == 1
    assert tracer.spans_started == 1


def test_child_completion_does_not_complete_trace(tracer):
    with tracer.span("root"):
        with tracer.span("child"):
            pass
        assert tracer.recent() == []
    assert len(tracer.recent()) == 1


def test_durations_come_from_the_clock(tracer, clock):
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            clock.advance(0.25)
    assert outer.duration == pytest.approx(1.25)
    assert inner.duration == pytest.approx(0.25)


def test_attributes_via_kwargs_and_set(tracer):
    with tracer.span("op", method="get") as span:
        span.set("status", 200)
    assert span.attributes == {"method": "get", "status": 200}


def test_exception_recorded_and_propagated(tracer):
    with pytest.raises(ValueError):
        with tracer.span("op"):
            raise ValueError("boom")
    (root,) = tracer.recent()
    assert root.error == "ValueError: boom"
    assert "error" in root.to_dict()


def test_slow_log_captures_only_slow_roots(clock):
    tracer = Tracer(clock=clock, slow_threshold=1.0)
    with tracer.span("fast"):
        clock.advance(0.5)
    with tracer.span("slow"):
        clock.advance(2.0)
    assert [span.name for span in tracer.slow()] == ["slow"]
    assert len(tracer.recent()) == 2


def test_ring_buffer_is_bounded(clock):
    tracer = Tracer(clock=clock, ring_size=3)
    for index in range(5):
        with tracer.span(f"t{index}"):
            pass
    assert [span.name for span in tracer.recent()] == ["t2", "t3", "t4"]
    assert tracer.traces_completed == 5


def test_virtual_clock_durations(tracer, clock):
    virtual = FakeClock()
    tracer.set_virtual_clock(virtual)
    with tracer.span("op") as span:
        virtual.advance(3.0)
    assert span.virtual_duration == pytest.approx(3.0)
    assert span.to_dict()["virtual_duration_s"] == pytest.approx(3.0)


def test_no_virtual_clock_means_no_virtual_duration(tracer):
    with tracer.span("op") as span:
        pass
    assert span.virtual_duration is None
    assert "virtual_duration_s" not in span.to_dict()


def test_current_tracks_the_stack(tracer):
    assert tracer.current is None
    with tracer.span("outer") as outer:
        assert tracer.current is outer
        with tracer.span("inner") as inner:
            assert tracer.current is inner
        assert tracer.current is outer
    assert tracer.current is None


def test_null_span_is_inert():
    with NULL_SPAN as span:
        span.set("anything", 1)
    assert span.duration == 0.0
    assert span.attributes == {}
