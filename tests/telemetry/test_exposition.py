"""Exposition: Prometheus text format and JSON renderers."""

import json

import pytest

from repro.telemetry import (
    MetricFamily,
    MetricsRegistry,
    Sample,
    Tracer,
    registry_to_dict,
    render_json,
    render_prometheus,
    render_traces_json,
    traces_to_dict,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


def test_help_and_type_preamble(registry):
    registry.counter("ops_total", "Operations handled.")
    text = render_prometheus(registry)
    assert "# HELP ops_total Operations handled." in text
    assert "# TYPE ops_total counter" in text
    assert text.endswith("\n")


def test_unlabeled_counter_renders_zero_before_first_inc(registry):
    registry.counter("ops_total")
    assert "ops_total 0" in render_prometheus(registry)


def test_labels_sorted_and_values_formatted(registry):
    counter = registry.counter("reqs_total", labelnames=("method", "code"))
    counter.labels("get", "200").inc(3)
    text = render_prometheus(registry)
    # Label names render alphabetically regardless of declaration order.
    assert 'reqs_total{code="200",method="get"} 3' in text


def test_label_value_escaping(registry):
    counter = registry.counter("odd_total", labelnames=("path",))
    counter.labels('a\\b"c\nd').inc()
    text = render_prometheus(registry)
    assert 'path="a\\\\b\\"c\\nd"' in text


def test_help_escaping(registry):
    registry.counter("ops_total", "line one\nline two \\ slash")
    text = render_prometheus(registry)
    assert "# HELP ops_total line one\\nline two \\\\ slash" in text


def test_histogram_rendering_cumulative(registry):
    histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    text = render_prometheus(registry)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_sum 5.55" in text
    assert "lat_seconds_count 3" in text


def test_labeled_histogram_keeps_labels_on_all_series(registry):
    histogram = registry.histogram(
        "op_seconds", labelnames=("op",), buckets=(1.0,)
    )
    histogram.labels("read").observe(0.5)
    text = render_prometheus(registry)
    assert 'op_seconds_bucket{le="1",op="read"} 1' in text
    assert 'op_seconds_sum{op="read"} 0.5' in text
    assert 'op_seconds_count{op="read"} 1' in text


def test_json_rendering_roundtrips(registry):
    registry.counter("ops_total", "ops").inc(2)
    histogram = registry.histogram("lat", buckets=(1.0,))
    histogram.observe(0.5)
    data = json.loads(render_json(registry))
    assert data["ops_total"]["kind"] == "counter"
    assert data["ops_total"]["samples"][0]["value"] == 2
    lat = data["lat"]["samples"][0]
    assert lat["count"] == 1
    assert lat["buckets"] == [{"le": 1.0, "cumulative": 1}]
    assert data == registry_to_dict(registry)


def test_callback_families_render(registry):
    from repro.telemetry import MetricFamily, Sample

    registry.register_callback(
        lambda: [
            MetricFamily(
                name="ratio", kind="gauge", help="derived",
                samples=[Sample("ratio", {"region": "object"}, 0.5)],
            )
        ]
    )
    text = render_prometheus(registry)
    assert 'ratio{region="object"} 0.5' in text


def test_float_formatting_shortest_roundtrip():
    from repro.telemetry.exposition import _format_value

    # Shortest decimal that parses back to the exact value.
    assert _format_value(0.3) == "0.3"
    assert float(_format_value(0.1 + 0.2)) == 0.1 + 0.2
    assert _format_value(0.025) == "0.025"
    assert _format_value(2.5e-06) == "2.5e-06"
    assert _format_value(1.0) == "1"
    assert _format_value(-4.0) == "-4"
    assert _format_value(float("nan")) == "NaN"
    assert _format_value(float("inf")) == "+Inf"
    assert _format_value(float("-inf")) == "-Inf"


def test_float_formatting_roundtrips_default_buckets():
    from repro.telemetry import DEFAULT_LATENCY_BUCKETS, DEFAULT_SIZE_BUCKETS
    from repro.telemetry.exposition import _format_value

    for bound in (*DEFAULT_LATENCY_BUCKETS, *DEFAULT_SIZE_BUCKETS):
        assert float(_format_value(bound)) == bound


def test_nan_gauge_renders_as_nan(registry):
    registry.register_callback(
        lambda: [
            MetricFamily(
                name="p99", kind="gauge", help="",
                samples=[Sample("p99", {}, float("nan"))],
            )
        ]
    )
    assert "p99 NaN" in render_prometheus(registry)


def test_traces_to_dict_shape():
    tracer = Tracer(slow_threshold=0.0)
    with tracer.span("root", method="get"):
        with tracer.span("child"):
            pass
    dump = traces_to_dict(tracer)
    assert dump["spans_started"] == 2
    assert dump["traces_completed"] == 1
    assert dump["slow_threshold_s"] == 0.0
    (root,) = dump["recent"]
    assert root["name"] == "root"
    assert root["attributes"] == {"method": "get"}
    assert root["children"][0]["name"] == "child"
    # threshold 0.0 puts everything in the slow log
    assert dump["slow"][0]["name"] == "root"
    json.loads(render_traces_json(tracer))


def test_traces_slow_only_drops_recent_ring():
    tracer = Tracer(slow_threshold=0.0)
    with tracer.span("http.request", method="put"):
        pass
    dump = traces_to_dict(tracer, slow_only=True)
    assert "recent" not in dump
    (slow,) = dump["slow"]
    # Slow entries are attributable: op label + trace id for /_traces.
    assert slow["op"] == "put"
    assert slow["trace_id"]


def test_traces_limit():
    tracer = Tracer()
    for index in range(5):
        with tracer.span(f"t{index}"):
            pass
    dump = traces_to_dict(tracer, limit=2)
    assert [span["name"] for span in dump["recent"]] == ["t3", "t4"]
