"""SLO engine: specs, burn-rate math, state machine, exemplars."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NullTelemetry,
    Telemetry,
    classify,
    default_slos,
    render_prometheus,
)
from repro.telemetry.slo import ObjectiveState, SloEngine, SloSpec


# -- classification ---------------------------------------------------------

def test_classify_maps_methods_to_classes():
    assert classify("get") == "get/p1"
    assert classify("attest") == "get/p1"
    assert classify("put") == "put/p2"
    assert classify("delete") == "put/p2"
    assert classify("put_policy") == "policy/p2"
    assert classify("get_policy") == "policy/p1"
    assert classify("commit_tx") == "txn/p2"
    assert classify("status") == "status/p0"


def test_classify_unknown_method_falls_back():
    assert classify("frobnicate") == "other/p1"


# -- spec validation --------------------------------------------------------

def test_spec_rejects_unknown_objective():
    with pytest.raises(ConfigurationError):
        SloSpec(name="x", request_class="get/p1", objective="throughput")


def test_spec_latency_requires_threshold():
    with pytest.raises(ConfigurationError):
        SloSpec(name="x", request_class="get/p1", objective="latency")


def test_spec_rejects_target_out_of_range():
    with pytest.raises(ConfigurationError):
        SloSpec(name="x", request_class="get/p1", target=1.0)
    with pytest.raises(ConfigurationError):
        SloSpec(name="x", request_class="get/p1", target=0.0)


def test_spec_rejects_nonpositive_window():
    with pytest.raises(ConfigurationError):
        SloSpec(name="x", request_class="get/p1", window=0.0)


def test_spec_default_alert_windows():
    spec = SloSpec(name="x", request_class="get/p1", window=60.0)
    assert spec.fast == pytest.approx(5.0)
    assert spec.slow == pytest.approx(30.0)


def test_default_slos_cover_both_objectives():
    specs = default_slos()
    kinds = {(spec.request_class, spec.objective) for spec in specs}
    assert ("get/p1", "availability") in kinds
    assert ("get/p1", "latency") in kinds
    assert ("put/p2", "availability") in kinds
    # Latency objectives always carry a threshold.
    assert all(
        spec.threshold is not None
        for spec in specs
        if spec.objective == "latency"
    )


# -- burn-rate and budget math ----------------------------------------------

def _availability_state(target=0.9, window=10.0, **kwargs):
    return ObjectiveState(
        SloSpec(
            name="t", request_class="get/p1", target=target,
            window=window, **kwargs,
        )
    )


def test_burn_rate_one_is_sustainable():
    # target 0.9 over 10s: a 10% bad fraction spends exactly the budget.
    state = _availability_state()
    for index in range(10):
        state.record(ok=index != 0, latency=0.0, vnow=index * 1.0)
    assert state.burn_rate(9.0, 10.0) == pytest.approx(1.0)


def test_burn_rate_empty_window_is_zero():
    state = _availability_state()
    assert state.burn_rate(5.0, 10.0) == 0.0


def test_budget_untouched_is_full():
    state = _availability_state()
    state.record(ok=True, latency=0.0, vnow=1.0)
    assert state.budget_remaining(1.0) == pytest.approx(1.0)


def test_budget_clamps_at_zero():
    state = _availability_state()
    for index in range(10):
        state.record(ok=False, latency=0.0, vnow=index * 0.1)
    assert state.budget_remaining(1.0) == 0.0


def test_budget_refills_as_window_slides():
    state = _availability_state()
    for index in range(10):
        state.record(ok=False, latency=0.0, vnow=index * 0.1)
    assert state.state(1.0) == "exhausted"
    # Much later, the bad burst has slid out of every window.
    state.record(ok=True, latency=0.0, vnow=100.0)
    assert state.budget_remaining(100.0) == pytest.approx(1.0)
    assert state.state(100.0) == "healthy"


# -- the state machine ------------------------------------------------------

def test_states_progress_healthy_burning_exhausted():
    # target 0.99 over 60s: fast window 5s (burn >= 14.4), slow 30s
    # (burn >= 6).  A long healthy stretch, then a failure burst that
    # dominates both alert windows but not yet the whole budget, then
    # enough failures to exhaust it.
    spec = SloSpec(
        name="t", request_class="get/p1", target=0.99, window=60.0
    )
    state = ObjectiveState(spec)
    for index in range(1000):
        state.record(ok=True, latency=0.0, vnow=index * 0.029)
    assert state.state(29.0) == "healthy"

    for index in range(6):
        state.record(ok=False, latency=0.0, vnow=56.0 + index * 0.5)
    # Fast and slow windows hold only the burst -> both burn thresholds
    # exceeded; the full-window budget still has headroom.
    assert state.burn_rate(59.0, spec.fast) >= spec.fast_burn
    assert state.burn_rate(59.0, spec.slow) >= spec.slow_burn
    assert state.budget_remaining(59.0) > 0.0
    assert state.state(59.0) == "burning"

    for index in range(20):
        state.record(ok=False, latency=0.0, vnow=59.0 + index * 0.01)
    assert state.budget_remaining(59.2) == 0.0
    assert state.state(59.2) == "exhausted"


def test_short_blip_does_not_burn():
    # One failure in an otherwise healthy stream trips neither the
    # budget nor the dual-window alert.
    spec = SloSpec(
        name="t", request_class="get/p1", target=0.99, window=60.0
    )
    state = ObjectiveState(spec)
    for index in range(2000):
        state.record(ok=index != 1000, latency=0.0, vnow=index * 0.03)
    assert state.state(60.0) == "healthy"


# -- latency objectives and exemplars ---------------------------------------

def test_latency_objective_counts_slow_success_as_bad():
    spec = SloSpec(
        name="lat", request_class="get/p1", objective="latency",
        target=0.5, threshold=0.01, window=10.0,
    )
    state = ObjectiveState(spec)
    state.record(ok=True, latency=0.005, vnow=1.0)   # good
    state.record(ok=True, latency=0.050, vnow=2.0)   # slow -> bad
    state.record(ok=False, latency=0.001, vnow=3.0)  # failed -> bad
    assert state.good_total == 1
    assert state.bad_total == 2


def test_exemplars_capture_breaching_trace_ids():
    spec = SloSpec(
        name="lat", request_class="get/p1", objective="latency",
        target=0.5, threshold=0.01, window=10.0, max_exemplars=2,
    )
    state = ObjectiveState(spec)
    state.record(ok=True, latency=0.005, vnow=1.0, trace_id=0xAA)
    state.record(ok=True, latency=0.05, vnow=2.0, trace_id=0xBB)
    state.record(ok=True, latency=0.05, vnow=3.0)  # breach, no trace
    state.record(ok=True, latency=0.05, vnow=4.0, trace_id=0xCC)
    state.record(ok=True, latency=0.05, vnow=5.0, trace_id=0xDD)
    # Only breaching events with a trace id land; ring keeps newest 2.
    snap = state.snapshot(5.0)
    assert snap["exemplar_trace_ids"] == [0xCC, 0xDD]
    assert snap["exemplars"][0]["latency_s"] == pytest.approx(0.05)


# -- the engine -------------------------------------------------------------

def test_engine_folds_into_every_objective_of_class():
    engine = SloEngine()
    engine.record("get", ok=True, latency=0.001, vnow=1.0)
    availability = engine.get("get-p1-availability")
    latency = engine.get("get-p1-latency")
    assert availability.good_total == 1
    assert latency.good_total == 1
    assert engine.recorded == 1


def test_engine_ignores_classes_without_objectives():
    engine = SloEngine()
    engine.record("status", ok=True, latency=0.001, vnow=1.0)
    assert engine.recorded == 0


def test_engine_worst_state_and_health_status():
    engine = SloEngine([
        SloSpec(name="a", request_class="get/p1", target=0.5, window=10.0),
        SloSpec(name="b", request_class="put/p2", target=0.5, window=10.0),
    ])
    assert engine.worst_state() == "healthy"
    assert engine.health_status() == "ok"
    for _ in range(4):
        engine.record("put", ok=False, latency=0.0, vnow=1.0)
    assert engine.worst_state(1.0) == "exhausted"
    assert engine.health_status(1.0) == "critical"


def test_engine_snapshot_shape():
    engine = SloEngine([
        SloSpec(name="a", request_class="get/p1", target=0.5, window=10.0),
    ])
    engine.record("get", ok=True, latency=0.001, vnow=2.0)
    snap = engine.snapshot()
    assert snap["vnow"] == 2.0
    assert snap["recorded"] == 1
    assert snap["worst_state"] == "healthy"
    (objective,) = snap["objectives"]
    assert objective["slo"] == "a"
    assert objective["events_in_window"] == 1


def test_engine_metrics_land_on_registry():
    telemetry = Telemetry()
    engine = telemetry.attach_slo(SloEngine([
        SloSpec(name="a", request_class="get/p1", target=0.5, window=10.0),
    ]))
    engine.record("get", ok=False, latency=0.0, vnow=1.0)
    text = render_prometheus(telemetry.registry)
    assert 'pesos_slo_error_budget_remaining{slo="a"}' in text
    assert 'pesos_slo_burn_rate{slo="a",window="fast"}' in text
    assert 'pesos_slo_state{slo="a"}' in text
    assert 'pesos_slo_events_total{outcome="bad",slo="a"} 1' in text


def test_telemetry_record_request_routes_to_engine():
    telemetry = Telemetry()
    telemetry.attach_slo()
    telemetry.record_request("get", ok=True, latency=0.001, vnow=1.0)
    assert telemetry.slo.recorded == 1


def test_telemetry_without_engine_drops_records():
    telemetry = Telemetry()
    telemetry.record_request("get", ok=True, latency=0.001, vnow=1.0)
    assert telemetry.slo is None


def test_null_telemetry_slo_is_inert():
    null = NullTelemetry()
    assert null.attach_slo() is None
    null.record_request("get", ok=True, latency=0.001, vnow=1.0)
    assert null.slo is None
