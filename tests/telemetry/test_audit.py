"""PolicyAuditor: decisions into the chain, chain onto the scrape."""

from repro.policy.interpreter import Decision
from repro.telemetry import Telemetry, render_prometheus
from repro.telemetry.audit import (
    DECISION_ALLOW,
    DECISION_DENY,
    DECISION_SHED,
    PolicyAuditor,
)


def _allow(operation="read", clause=0):
    return Decision(
        granted=True, operation=operation, matched_clause=clause,
        predicates_evaluated=2,
    )


def _deny(operation="write"):
    return Decision(granted=False, operation=operation,
                    predicates_evaluated=3)


def test_record_decision_appends_allow_and_deny():
    auditor = PolicyAuditor(capacity=16)
    auditor.record_decision(
        _allow(), policy_hash="p1", session="fp-a", key="k1", vnow=1.0
    )
    auditor.record_decision(
        _deny(), policy_hash="p1", session="fp-b", key="k2", vnow=2.0
    )
    allow, deny = auditor.log.records
    assert allow.decision == DECISION_ALLOW
    assert allow.clause_path == "read/clause[0]"
    assert allow.detail == "predicates=2"
    assert deny.decision == DECISION_DENY
    assert deny.clause_path == "write/denied"
    assert auditor.decisions_by_kind == {"allow": 1, "deny": 1}
    assert auditor.verify()["ok"]


def test_record_shed_skips_policy_fields():
    auditor = PolicyAuditor(capacity=16)
    auditor.record_shed(
        method="put", reason="rate", session="fp-a", key="k", vnow=3.0
    )
    (record,) = auditor.log.records
    assert record.decision == DECISION_SHED
    assert record.operation == "put"
    assert record.detail == "rate"
    assert record.policy_hash == ""
    assert auditor.decisions_by_kind == {"shed": 1}


def test_snapshot_counts_and_optional_verification():
    auditor = PolicyAuditor(capacity=16)
    auditor.record_decision(
        _allow(), policy_hash="p1", session="fp-a", key="k", vnow=1.0
    )
    snap = auditor.snapshot()
    assert snap["decisions"] == {"allow": 1}
    assert "verification" not in snap
    snap = auditor.snapshot(verify=True)
    assert snap["verification"]["ok"]


def test_same_sequence_gives_identical_heads():
    def run():
        auditor = PolicyAuditor(capacity=16)
        auditor.record_decision(
            _allow(), policy_hash="p", session="fp-a", key="k", vnow=1.0
        )
        auditor.record_shed(
            method="get", reason="queue", session="fp-b", key="k2", vnow=2.0
        )
        return auditor.head

    assert run() == run()


def test_metric_families_bound_to_telemetry():
    telemetry = Telemetry()
    auditor = PolicyAuditor(capacity=16, telemetry=telemetry)
    auditor.record_decision(
        _allow(), policy_hash="p", session="fp-a", key="k", vnow=1.0
    )
    auditor.record_decision(
        _deny(), policy_hash="p", session="fp-a", key="k", vnow=2.0
    )
    text = render_prometheus(telemetry.registry)
    assert "pesos_audit_records_total 2" in text
    assert f'pesos_audit_chain_head{{digest="{auditor.head}"}} 2' in text
    assert 'pesos_audit_decisions_total{decision="allow"} 1' in text
    assert 'pesos_audit_decisions_total{decision="deny"} 1' in text


def test_null_telemetry_skips_binding():
    from repro.telemetry import NULL_TELEMETRY

    auditor = PolicyAuditor(capacity=16, telemetry=NULL_TELEMETRY)
    auditor.record_shed(
        method="get", reason="rate", session="fp", key="k", vnow=1.0
    )
    # The chain still records; only the scrape binding is skipped.
    assert len(auditor.log) == 1
    assert auditor.verify()["ok"]
