"""Property tests: percentile monotonicity, burn rates never negative.

Two invariants the workload bench leans on for its headline numbers,
checked over generated inputs rather than fixed examples:

- ``Histogram.percentile`` is monotone in the quantile — p99 can never
  read below p50, whatever the observations.
- SLO burn rates and budget arithmetic never go negative, even under
  sparse, bursty (flash-crowd shaped) event timelines with long idle
  gaps between bursts.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import ObjectiveState, SloSpec

_latencies = st.lists(
    st.floats(
        min_value=0.0, max_value=120.0,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=80,
)

#: Sparse flash-crowd timeline: bursts of (gap, outcomes) where gaps
#: can dwarf the SLO window, leaving most buckets empty.
_bursts = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.lists(st.booleans(), min_size=1, max_size=20),
    ),
    min_size=1,
    max_size=12,
)


def _histogram(values):
    registry = MetricsRegistry()
    histogram = registry.histogram("t_latency", "test")
    for value in values:
        histogram.observe(value)
    return histogram


@settings(max_examples=80, deadline=None)
@given(values=_latencies, lo=st.floats(0.5, 100.0), hi=st.floats(0.5, 100.0))
def test_percentile_monotone_in_quantile(values, lo, hi):
    histogram = _histogram(values)
    lo, hi = min(lo, hi), max(lo, hi)
    assert histogram.percentile(lo) <= histogram.percentile(hi)


@settings(max_examples=40, deadline=None)
@given(values=_latencies)
def test_percentile_within_observed_support(values):
    histogram = _histogram(values)
    p100 = histogram.percentile(100.0)
    p1 = histogram.percentile(1.0)
    assert 0.0 <= p1 <= p100
    assert not math.isnan(p1)


def test_empty_histogram_percentile_is_nan():
    assert math.isnan(_histogram([]).percentile(99.0))


def _replay(bursts, objective="availability"):
    spec = SloSpec(
        name="t",
        request_class="get/p1",
        objective=objective,
        target=0.99,
        threshold=0.025 if objective == "latency" else None,
        window=60.0,
    )
    state = ObjectiveState(spec)
    vnow = 0.0
    for gap, outcomes in bursts:
        vnow += gap
        for ok in outcomes:
            state.record(ok, 0.01 if ok else 1.0, vnow)
    return state, vnow


@settings(max_examples=80, deadline=None)
@given(bursts=_bursts)
def test_burn_rate_never_negative_under_sparse_bursts(bursts):
    state, vnow = _replay(bursts)
    for window in (state.spec.fast, state.spec.slow, state.spec.window):
        for probe in (vnow, vnow + 30.0, vnow + 1000.0):
            assert state.burn_rate(probe, window) >= 0.0


@settings(max_examples=80, deadline=None)
@given(bursts=_bursts)
def test_budget_remaining_stays_in_unit_interval(bursts):
    state, vnow = _replay(bursts)
    for probe in (vnow, vnow + 30.0, vnow + 1000.0):
        remaining = state.budget_remaining(probe)
        assert 0.0 <= remaining <= 1.0


@settings(max_examples=40, deadline=None)
@given(bursts=_bursts)
def test_latency_objective_burn_also_non_negative(bursts):
    state, vnow = _replay(bursts, objective="latency")
    assert state.burn_rate(vnow, state.spec.fast) >= 0.0
    assert state.state(vnow) in ("healthy", "burning", "exhausted")


@settings(max_examples=40, deadline=None)
@given(bursts=_bursts)
def test_all_good_events_never_burn(bursts):
    all_good = [(gap, [True] * len(outcomes)) for gap, outcomes in bursts]
    state, vnow = _replay(all_good)
    assert state.burn_rate(vnow, state.spec.fast) == 0.0
    assert state.budget_remaining(vnow) == 1.0
