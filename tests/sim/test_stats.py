"""Metric classes: Welford, histograms, throughput meters."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, Histogram, ThroughputMeter, WelfordStats


def test_counter_increments():
    counter = Counter("ops")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_counter_rejects_negative():
    counter = Counter("ops")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_welford_matches_closed_form():
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    stats = WelfordStats()
    for value in values:
        stats.add(value)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert stats.mean == pytest.approx(mean)
    assert stats.variance == pytest.approx(var)
    assert stats.min == 2.0
    assert stats.max == 9.0


def test_welford_empty_is_zero():
    stats = WelfordStats()
    assert stats.mean == 0.0
    assert stats.variance == 0.0


def test_relative_stddev():
    stats = WelfordStats()
    for value in (10.0, 10.0, 10.0):
        stats.add(value)
    assert stats.relative_stddev == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
def test_welford_mean_property(values):
    stats = WelfordStats()
    for value in values:
        stats.add(value)
    assert stats.mean == pytest.approx(sum(values) / len(values), abs=1e-6)


def test_histogram_percentiles_bounded_error():
    rng = random.Random(7)
    hist = Histogram(min_value=1e-5, max_value=10.0, growth=1.05)
    samples = sorted(rng.uniform(0.001, 1.0) for _ in range(5000))
    for sample in samples:
        hist.add(sample)
    exact_p50 = samples[len(samples) // 2]
    approx_p50 = hist.percentile(50)
    assert approx_p50 == pytest.approx(exact_p50, rel=0.10)
    assert hist.percentile(100) >= hist.percentile(50)


def test_histogram_mean_tracks_stats():
    hist = Histogram()
    for value in (0.1, 0.2, 0.3):
        hist.add(value)
    assert hist.mean == pytest.approx(0.2)
    assert hist.count == 3


def test_histogram_invalid_params():
    with pytest.raises(ValueError):
        Histogram(min_value=0)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)


def test_histogram_percentile_validation():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.percentile(0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_empty_percentile_zero():
    assert Histogram().percentile(99) == 0.0


def test_histogram_out_of_range_values_clamped():
    hist = Histogram(min_value=1e-3, max_value=1.0)
    hist.add(100.0)  # beyond max bucket
    assert hist.percentile(100) == 100.0
    assert math.isclose(hist.mean, 100.0)


def test_throughput_meter_window():
    meter = ThroughputMeter()
    meter.record()  # warmup op, before the window opens
    meter.open_window(now=10.0)
    for _ in range(50):
        meter.record(nbytes=1024)
    meter.close_window(now=15.0)
    assert meter.rate() == pytest.approx(10.0)
    assert meter.byte_rate() == pytest.approx(50 * 1024 / 5.0)


def test_throughput_meter_without_window():
    meter = ThroughputMeter()
    meter.record()
    assert meter.rate(now=5.0) == 0.0


def test_throughput_meter_live_rate():
    meter = ThroughputMeter()
    meter.open_window(now=0.0)
    meter.record()
    meter.record()
    assert meter.rate(now=4.0) == pytest.approx(0.5)
