"""Resource and Store semantics under contention."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_serializes_at_capacity_one():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def worker(name):
        yield res.acquire()
        start = env.now
        yield env.timeout(2)
        res.release()
        spans.append((name, start, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert spans == [("a", 0, 2), ("b", 2, 4)]


def test_resource_parallelism_at_higher_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    finish = []

    def worker():
        yield res.acquire()
        yield env.timeout(2)
        res.release()
        finish.append(env.now)

    for _ in range(4):
        env.process(worker())
    env.run()
    assert finish == [2, 2, 4, 4]


def test_release_without_acquire_rejected():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_queue_len_visible():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        yield res.acquire()
        yield env.timeout(10)
        res.release()

    def waiter():
        yield env.timeout(1)
        yield res.acquire()
        res.release()

    env.process(holder())
    env.process(waiter())
    env.run(until=2)
    assert res.queue_len == 1
    assert res.in_use == 1


def test_utilization_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker():
        yield res.acquire()
        yield env.timeout(5)
        res.release()

    env.process(worker())
    env.run(until=10)
    assert res.utilization() == pytest.approx(0.5)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for item in ("x", "y", "z"):
            store.put(item)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got_at = []

    def consumer():
        yield store.get()
        got_at.append(env.now)

    def producer():
        yield env.timeout(4)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [4]


def test_store_capacity_enforced():
    env = Environment()
    store = Store(env, capacity=1)
    store.put(1)
    with pytest.raises(SimulationError):
        store.put(2)


def test_store_depth_metrics():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.max_depth == 2
    assert store.total_put == 2


def test_many_waiters_woken_in_order():
    env = Environment()
    store = Store(env)
    order = []

    def consumer(name):
        item = yield store.get()
        order.append((name, item))

    for name in ("c1", "c2", "c3"):
        env.process(consumer(name))

    def producer():
        yield env.timeout(1)
        for item in range(3):
            store.put(item)

    env.process(producer())
    env.run()
    assert order == [("c1", 0), ("c2", 1), ("c3", 2)]
