"""DES kernel: event ordering, processes, conditions, interrupts."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5]


def test_events_fire_in_time_order():
    env = Environment()
    log = []

    def proc(delay, name):
        yield env.timeout(delay)
        log.append(name)

    env.process(proc(3, "c"))
    env.process(proc(1, "a"))
    env.process(proc(2, "b"))
    env.run()
    assert log == ["a", "b", "c"]


def test_same_time_fifo_order():
    env = Environment()
    log = []

    def proc(name):
        yield env.timeout(1)
        log.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10


def test_run_until_event():
    env = Environment()
    done = env.event()

    def proc():
        yield env.timeout(7)
        done.succeed("finished")
        yield env.timeout(100)

    env.process(proc())
    result = env.run(until=done)
    assert result == "finished"
    assert env.now == 7


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer(results):
        value = yield env.process(inner())
        results.append(value)

    results = []
    env.process(outer(results))
    env.run()
    assert results == [42]


def test_event_value_passing():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def trigger():
        yield env.timeout(2)
        gate.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == ["payload"]


def test_event_failure_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    env.run()
    with pytest.raises(SimulationError):
        env.check_failures()


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("oops")

    env.process(bad())
    env.run()
    with pytest.raises(ValueError):
        env.check_failures()


def test_waited_on_failure_is_not_unhandled():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("oops")

    def guardian():
        try:
            yield env.process(bad())
        except ValueError:
            pass

    env.process(guardian())
    env.run()
    env.check_failures()  # should not raise


def test_any_of_returns_first():
    env = Environment()
    winners = []

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(5, value="slow")
        first = yield env.any_of([fast, slow])
        winners.append(first.value)

    env.process(proc())
    env.run()
    assert winners == ["fast"]
    assert env.now == 5  # slow timeout still drains


def test_all_of_collects_values():
    env = Environment()
    collected = []

    def proc():
        values = yield env.all_of(
            [env.timeout(1, value="a"), env.timeout(2, value="b")]
        )
        collected.append(values)

    env.process(proc())
    env.run()
    assert collected == [["a", "b"]]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def poker(target):
        yield env.timeout(3)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(poker(target))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    proc.interrupt()  # must not raise
    env.run()


def test_yield_already_processed_event():
    env = Environment()
    log = []
    gate = env.event()
    gate.succeed("early")

    def late_waiter():
        yield env.timeout(5)
        value = yield gate
        log.append(value)

    env.process(late_waiter())
    env.run()
    assert log == ["early"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(9)
    assert env.peek() == 9


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_determinism_across_runs():
    def build_and_run():
        env = Environment()
        log = []

        def proc(pid):
            for step in range(3):
                yield env.timeout(pid * 0.5 + 1)
                log.append((env.now, pid, step))

        for pid in range(4):
            env.process(proc(pid))
        env.run()
        return log

    assert build_and_run() == build_and_run()
