"""Property tests for the per-key request-lock layer.

The lock table must never deadlock the cooperative scheduler (requests
spin-yield instead of blocking, and multi-key acquisition is
all-or-nothing), must keep reader/writer exclusion, and must always be
empty once every holder has released.
"""

from __future__ import annotations

import random

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in CI
    HAVE_HYPOTHESIS = False

from repro.core.locks import KeyLockTable
from repro.sgx.scheduler import DispatchSchedule, UserspaceScheduler
from repro.sgx.syscalls import AsyncSyscallInterface

KEYS = ["a", "b", "c"]


def test_exclusive_excludes_everything():
    table = KeyLockTable()
    assert table.try_acquire("k", exclusive=True)
    assert not table.try_acquire("k", exclusive=True)
    assert not table.try_acquire("k", exclusive=False)
    table.release("k", exclusive=True)
    assert len(table) == 0


def test_shared_holds_overlap_but_block_writers():
    table = KeyLockTable()
    assert table.try_acquire("k", exclusive=False)
    assert table.try_acquire("k", exclusive=False)
    assert not table.try_acquire("k", exclusive=True)
    table.release("k", exclusive=False)
    assert not table.try_acquire("k", exclusive=True)
    table.release("k", exclusive=False)
    assert table.try_acquire("k", exclusive=True)


def test_release_of_never_taken_lock_raises():
    table = KeyLockTable()
    with pytest.raises(KeyError):
        table.release("ghost", exclusive=True)
    table.try_acquire("k", exclusive=False)
    with pytest.raises(KeyError):
        table.release("other", exclusive=False)


def test_try_acquire_all_rolls_back_on_conflict():
    table = KeyLockTable()
    assert table.try_acquire("b", exclusive=True)
    assert not table.try_acquire_all(["a", "b", "c"], exclusive=True)
    # The partial grab of "a" must have been rolled back.
    assert not table.locked("a")
    assert not table.locked("c")
    table.release("b", exclusive=True)
    assert table.try_acquire_all(["a", "b", "c"], exclusive=True)
    table.release_all(["a", "b", "c"], exclusive=True)
    assert len(table) == 0


def test_conflicts_callback_blocks_both_modes():
    vetoed = {"hot"}
    table = KeyLockTable(conflicts=lambda key: key in vetoed)
    assert not table.try_acquire("hot", exclusive=True)
    assert not table.try_acquire("hot", exclusive=False)
    assert table.try_acquire("cold", exclusive=True)
    vetoed.clear()
    assert table.try_acquire("hot", exclusive=True)


def test_on_release_fires_per_release():
    released = []
    table = KeyLockTable(on_release=released.append)
    table.try_acquire("k", exclusive=False)
    table.try_acquire("k", exclusive=False)
    table.release("k", exclusive=False)
    table.release("k", exclusive=False)
    assert released == ["k", "k"]


if HAVE_HYPOTHESIS:

    @settings(max_examples=60, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(KEYS), st.booleans(), st.booleans()
            ),
            max_size=60,
        )
    )
    def test_random_acquire_release_never_corrupts(steps):
        """Random single-key traffic: exclusion invariants always hold.

        Each step (key, exclusive, hold) tries one acquisition and, per
        ``hold``, either releases it immediately or keeps it; kept
        holds release at the end, after which the table must be empty.
        """
        table = KeyLockTable()
        held: list[tuple[str, bool]] = []
        for key, exclusive, hold in steps:
            if table.try_acquire(key, exclusive):
                if hold:
                    held.append((key, exclusive))
                else:
                    table.release(key, exclusive)
            # Exclusion invariant after every step: a key is never
            # both shared and exclusive.
            for probe in KEYS:
                shared = bool(table._shared.get(probe, 0))
                assert not (shared and probe in table._exclusive)
        for key, exclusive in reversed(held):
            table.release(key, exclusive)
        assert len(table) == 0


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_green_threads_never_deadlock(seed):
    """Random lock traffic from green threads drains to quiescence.

    Each green thread performs a seeded sequence of multi-key
    all-or-nothing acquisitions with spin-yield retry, holds the keys
    across a few reschedules, then releases.  Under any dispatch
    schedule the run must finish (no deadlock, no livelock within the
    round bound) with the table empty.
    """
    table = KeyLockTable()
    scheduler = UserspaceScheduler(
        AsyncSyscallInterface(num_slots=4),
        hardware_threads=4,
        schedule=DispatchSchedule(seed),
    )

    def worker(worker_seed):
        rng = random.Random(worker_seed)
        for _ in range(6):
            keys = sorted(
                rng.sample(KEYS, rng.randrange(1, len(KEYS) + 1))
            )
            exclusive = rng.random() < 0.6
            while not table.try_acquire_all(keys, exclusive):
                yield "yield"
            for _ in range(rng.randrange(3)):
                yield "yield"
            table.release_all(keys, exclusive)
        return "done"

    threads = [
        scheduler.spawn(worker(seed * 100 + index)) for index in range(8)
    ]
    scheduler.run_to_completion(max_rounds=10_000)
    assert all(thread.result == "done" for thread in threads)
    assert all(thread.error is None for thread in threads)
    assert len(table) == 0
    assert table.acquisitions >= 8 * 6
