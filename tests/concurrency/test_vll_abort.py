"""Aborting a QUEUED transaction must wake its queue followers.

Regression test: ``VllManager.abort`` released the aborted
transaction's locks but never drained the queue, so a follower whose
only conflict was the aborted transaction stayed QUEUED until some
unrelated commit happened to drain for it — forever, on a quiet
system.  The sequential request path could not observe the stall (the
queue was always drained before the outermost commit returned), but
any out-of-band lock holder — a concurrent request holding a key lock,
or another queued transaction — makes it reachable.
"""

from __future__ import annotations

import pytest

from repro.core.locks import KeyLockTable
from repro.core.txn import QUEUED, VllManager
from repro.errors import TransactionError


def run_writes(tx):
    return {key: b"done" for key in tx.keys()}


def make_queued_pair(manager):
    """Two transactions on "x", both queued behind an external hold."""
    blocked = manager.create("fp")
    blocked.add_write("x", b"1")
    follower = manager.create("fp")
    follower.add_write("x", b"2")
    manager.commit(blocked)
    manager.commit(follower)
    assert blocked.state == QUEUED
    assert follower.state == QUEUED
    return blocked, follower


def test_abort_of_queued_tx_drains_followers():
    manager = VllManager(run_writes)
    # Simulate an in-flight lock holder on "x" the way the lock table
    # sees one mid-overlap: the count is up but no queued transaction
    # owns it (pre-fix, only a *commit* ever drained the queue).
    manager._locks["x"] = manager._locks.get("x", 0) + 1
    blocked, follower = make_queued_pair(manager)
    manager._locks["x"] -= 1  # the external holder finishes

    manager.abort(blocked)

    assert blocked.state == "aborted"
    assert follower.state == "committed", (
        "follower stayed QUEUED after its only blocker aborted"
    )
    assert manager.queue_length == 0
    assert manager.locked_keys() == set()


def test_abort_drain_respects_running_transactions():
    manager = VllManager(run_writes)
    # A transaction mid-execution on "x" (its commit overlaps drive
    # I/O under the engine): lock count up AND marked running, exactly
    # as ``_run`` tracks it.
    manager._locks["x"] = manager._locks.get("x", 0) + 1
    manager._running["x"] = 1
    blocked, follower = make_queued_pair(manager)

    # Blocker still executing: the abort must NOT run the follower.
    manager.abort(blocked)
    assert follower.state == QUEUED

    # The running transaction finishes; its unlock path drains.
    manager._running.pop("x")
    manager._locks["x"] -= 1
    manager._drain_queue()
    assert follower.state == "committed"


def test_abort_via_request_lock_wiring():
    """End-to-end over the real lock table, as the engine wires it."""
    table = KeyLockTable()
    manager = VllManager(run_writes, request_locks=table)
    table.bind(conflicts=manager.holds, on_release=manager.notify_release)

    assert table.try_acquire("x", exclusive=True)  # a concurrent put
    blocked, follower = make_queued_pair(manager)

    manager.abort(blocked)
    assert follower.state == QUEUED  # request lock still held

    table.release("x", exclusive=True)  # put finishes -> drain fires
    assert follower.state == "committed"
    assert manager.queue_length == 0


def test_abort_states():
    manager = VllManager(run_writes)
    open_tx = manager.create("fp")
    open_tx.add_write("y", b"1")
    manager.abort(open_tx)
    assert open_tx.state == "aborted"
    with pytest.raises(TransactionError):
        manager.abort(open_tx)
