"""AsyncTracker under load: evicting still-PENDING operations.

A burst of asynchronous submissions can push an operation out of the
result buffer before its execution finishes.  The client must then see
``ResultExpired`` (re-submit, per §4.1) — never a stale or phantom
state — and the tracker must account the pending eviction.
"""

from __future__ import annotations

import pytest

from repro.core.asyncapi import AsyncTracker, DONE, PENDING
from repro.errors import ResultExpired


def test_pending_eviction_is_counted_and_expires():
    tracker = AsyncTracker(buffer_size=4)
    first = tracker.begin("fp")
    assert first.state == PENDING

    # A burst of new submissions evicts the still-pending first op.
    others = [tracker.begin("fp") for _ in range(4)]
    assert len(tracker) == 4
    assert tracker.discarded == 1
    assert tracker.discarded_pending == 1

    with pytest.raises(ResultExpired):
        tracker.query(first.operation_id, "fp")

    # Its late completion lands nowhere and says so.
    assert tracker.complete(first.operation_id, "late-result") is False
    with pytest.raises(ResultExpired):
        tracker.query(first.operation_id, "fp")

    # Survivors are unaffected.
    assert tracker.complete(others[-1].operation_id, "ok") is True
    assert tracker.query(others[-1].operation_id, "fp").state == DONE


def test_done_eviction_not_counted_as_pending():
    tracker = AsyncTracker(buffer_size=2)
    first = tracker.begin("fp")
    tracker.complete(first.operation_id, "r1")
    tracker.begin("fp")
    tracker.begin("fp")  # evicts first, which already completed
    assert tracker.discarded == 1
    assert tracker.discarded_pending == 0


def test_eviction_under_sustained_load():
    tracker = AsyncTracker(buffer_size=8)
    entries = [tracker.begin("fp") for _ in range(50)]
    # Only the newest buffer_size operations survive.
    assert len(tracker) == 8
    assert tracker.discarded == 42
    assert tracker.discarded_pending == 42
    for entry in entries[:-8]:
        with pytest.raises(ResultExpired):
            tracker.query(entry.operation_id, "fp")
    for entry in entries[-8:]:
        assert tracker.query(entry.operation_id, "fp").state == PENDING


def test_cross_client_query_expires_not_leaks():
    tracker = AsyncTracker(buffer_size=8)
    entry = tracker.begin("fp-alice")
    tracker.complete(entry.operation_id, "secret")
    with pytest.raises(ResultExpired):
        tracker.query(entry.operation_id, "fp-mallory")
