"""Schedule-exploration harness for the concurrent request engine.

One *exploration* builds a small fresh system, derives a mixed
put/get/delete/transaction workload from a seed, runs it through the
:class:`~repro.core.engine.ConcurrentEngine` under the seed's dispatch
schedule, and checks the observed history against a sequential
in-memory model.  Every seed is a different interleaving of the same
kind of workload; sweeping seeds explores the schedule space the way
the fault-injection suite sweeps failure timings.

The linearizability argument: request locks are held from before the
first store access until after the last, and the completion log is
appended atomically with lock release (no preemption point between
them).  Per-key completion order therefore *is* the linearization
order, so replaying the completion log against a sequential model —
keys to the latest acknowledged (value, version) — must reproduce
every response exactly.  Transactions run on a disjoint key space and
are checked through their own invariant: each transaction reads both
transaction keys (must see an atomic snapshot: equal markers) and
writes its txid to both, so at quiescence the two keys must again hold
one transaction's marker.

On any violation the harness raises with the seed in the message, so
a failing interleaving can be replayed exactly:

    PYTHONPATH=src python -c "
    from tests.concurrency.harness import explore; explore(<seed>)"
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis import ShadowState, find_deadlocks, find_races
from repro.core.cache import CacheConfig
from repro.core.controller import ControllerConfig, PesosController
from repro.core.engine import ConcurrentEngine
from repro.core.request import Request
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

R_KEYS = [f"r-{i}" for i in range(6)]
T_KEYS = ["t-a", "t-b"]
TX_INIT = b"tx-init"


@dataclass
class Exploration:
    """Everything one seeded run produced, for assertions beyond pass."""

    seed: int
    requests: list
    responses: list
    completion_log: list
    trace: bytes
    committed_txids: list
    controller: PesosController = None
    violations: list = field(default_factory=list)
    #: Race/deadlock findings from the concurrency sanitizer (empty on
    #: a healthy run; populated before the raise when it fires).
    sanitizer_findings: list = field(default_factory=list)


class LinearizabilityError(AssertionError):
    """A history the sequential model cannot explain."""


def build_small_system(seed: int) -> PesosController:
    """3 drives, replication 2, tiny caches, preloaded key spaces."""
    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    for client in clients:
        client.wire_codec = False
    controller = PesosController(
        clients,
        storage_key=b"explore-key".ljust(32, b"\0"),
        config=ControllerConfig(
            replication_factor=2,
            cache=CacheConfig(
                object_bytes=1024, key_bytes=256, policy_bytes=4096
            ),
        ),
    )
    for key in R_KEYS:
        assert controller.put("fp", key, f"init:{key}".encode()).ok
    for key in T_KEYS:
        assert controller.put("fp", key, TX_INIT).ok
    return controller


def make_workload(
    controller: PesosController, seed: int, operations: int = 26
) -> tuple[list, dict]:
    """Seeded mixed workload: requests for the batch + put-value map.

    Transactions are assembled inline (create/add_read/add_write are
    pure metadata, no drive I/O) so the batch carries only their
    commit/abort requests, which is where concurrency matters.
    """
    rng = random.Random(seed)
    requests: list[Request] = []
    values: dict[int, bytes] = {}
    serial = 0
    for _ in range(operations):
        roll = rng.random()
        key = rng.choice(R_KEYS)
        if roll < 0.45:
            requests.append(Request(method="get", key=key))
        elif roll < 0.80:
            serial += 1
            value = f"s{seed}:w{serial}".encode()
            values[len(requests)] = value
            requests.append(Request(method="put", key=key, value=value))
        elif roll < 0.88:
            requests.append(Request(method="delete", key=key))
        else:
            tx = controller.txns.create("fp")
            for t_key in T_KEYS:
                tx.add_read(t_key)
            for t_key in T_KEYS:
                tx.add_write(t_key, tx.txid.encode())
            method = "commit_tx" if rng.random() < 0.8 else "abort_tx"
            requests.append(Request(method=method, txid=tx.txid))
    return requests, values


def check_history(exploration: Exploration, values: dict) -> None:
    """Replay the completion log against the sequential model."""
    seed = exploration.seed
    # Model: key -> (value, version) for live keys.
    model: dict[str, tuple[bytes, int]] = {}
    for key in R_KEYS:
        model[key] = (f"init:{key}".encode(), 0)

    def fail(message: str) -> None:
        raise LinearizabilityError(
            f"seed {seed}: {message}\n"
            f"replay with: tests.concurrency.harness.explore({seed})"
        )

    for entry in exploration.completion_log:
        index, method, key, status, _version = entry
        response = exploration.responses[index]
        if method == "get":
            if key in model:
                value, version = model[key]
                if status != 200:
                    fail(f"get {key!r} (op {index}) got {status}, "
                         f"model holds v{version}")
                if response.value != value or response.version != version:
                    fail(
                        f"get {key!r} (op {index}) observed "
                        f"v{response.version}={response.value!r}, model "
                        f"says v{version}={value!r}"
                    )
            elif status != 404:
                fail(f"get of deleted {key!r} (op {index}) got {status}")
        elif method == "put":
            if status != 200:
                fail(f"put {key!r} (op {index}) failed with {status}")
            previous = model.get(key, (b"", -1))[1]
            if response.version <= previous:
                fail(
                    f"put {key!r} (op {index}) acked v{response.version} "
                    f"<= model v{previous} (lost update)"
                )
            model[key] = (values[index], response.version)
        elif method == "delete":
            if key in model:
                if status != 200:
                    fail(f"delete {key!r} (op {index}) got {status}")
                del model[key]
            elif status != 404:
                fail(f"double delete {key!r} (op {index}) got {status}")
        elif method in ("commit_tx", "abort_tx"):
            continue  # checked via the transaction invariant below
        else:
            fail(f"unexpected method {method!r} in completion log")

    _check_transactions(exploration, fail)


def _check_transactions(exploration: Exploration, fail) -> None:
    """Atomic-snapshot + serial-order invariants on the tx key space.

    Every transaction reads both keys and writes its txid to both, so
    the store's per-key write versions reconstruct the serial order the
    lock manager actually produced: sorting committed transactions by
    their acked write version must give the *same* order on both keys,
    each transaction must have read an untorn snapshot, and that
    snapshot must be exactly what its serial predecessor wrote.
    """
    controller = exploration.controller
    committed = [
        controller.txns._transactions[txid]
        for txid in exploration.committed_txids
        if controller.txns._transactions[txid].state == "committed"
    ]

    def rank(tx, key):
        return int(tx.results[f"write:{key}"].lstrip(b"v"))

    orders = [
        [tx.txid for tx in sorted(committed, key=lambda t: rank(t, key))]
        for key in T_KEYS
    ]
    if orders[0] != orders[1]:
        fail(f"serial orders diverge across tx keys: {orders!r}")
    serial = sorted(committed, key=lambda t: rank(t, T_KEYS[0]))
    expected = TX_INIT
    for tx in serial:
        reads = [tx.results[f"read:{key}"] for key in T_KEYS]
        if len(set(reads)) != 1:
            fail(
                f"transaction {tx.txid} read a torn snapshot: "
                f"{[r[:24] for r in reads]}"
            )
        if reads[0] != expected:
            fail(
                f"transaction {tx.txid} read {reads[0]!r} but its "
                f"serial predecessor wrote {expected!r}"
            )
        expected = tx.txid.encode()
    finals = [controller.get("fp", key).value for key in T_KEYS]
    if len(set(finals)) != 1:
        fail(f"tx keys diverged at quiescence: {finals!r}")
    if finals[0] != expected:
        fail(
            f"final tx marker {finals[0]!r} does not match the last "
            f"serial writer {expected!r}"
        )


def explore(
    seed: int,
    operations: int = 26,
    workers: int = 6,
    engine_cls: type = ConcurrentEngine,
    sanitize: bool = True,
) -> Exploration:
    """Run one seeded interleaving end to end; raises on any violation.

    With ``sanitize`` (the default) the run records a shadow-state
    event stream and every explored interleaving is also checked for
    lockset races and lock-order cycles — defects *some other*
    interleaving would hit, even if this one got lucky.
    """
    controller = build_small_system(seed)
    requests, values = make_workload(controller, seed, operations)
    shadow = ShadowState() if sanitize else None
    with engine_cls(
        controller, seed=seed, hardware_threads=workers, sanitizer=shadow
    ) as engine:
        responses = engine.run_batch(requests, "fp")
        exploration = Exploration(
            seed=seed,
            requests=requests,
            responses=responses,
            completion_log=list(engine.completion_log),
            trace=engine.trace_bytes(),
            committed_txids=[
                request.txid
                for request in requests
                if request.method == "commit_tx"
            ],
            controller=controller,
        )
    if shadow is not None:
        exploration.sanitizer_findings = find_races(
            shadow.events
        ) + find_deadlocks(shadow.events)
        if exploration.sanitizer_findings:
            details = "\n".join(
                f"  [{f.rule}] {f.message}"
                for f in exploration.sanitizer_findings
            )
            raise LinearizabilityError(
                f"seed {seed}: concurrency sanitizer reported "
                f"{len(exploration.sanitizer_findings)} finding(s):\n"
                f"{details}"
            )
    for index, response in enumerate(responses):
        if response.status >= 500:
            raise LinearizabilityError(
                f"seed {seed}: op {index} "
                f"({requests[index].method}) crashed: {response.error}"
            )
    if len(controller.request_locks):
        raise LinearizabilityError(
            f"seed {seed}: request locks leaked: "
            f"{controller.request_locks.snapshot()}"
        )
    if controller.txns.queue_length:
        raise LinearizabilityError(
            f"seed {seed}: {controller.txns.queue_length} transactions "
            "stuck in the VLL queue at quiescence"
        )
    check_history(exploration, values)
    return exploration
