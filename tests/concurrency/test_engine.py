"""The concurrent request engine: correctness, batching, determinism."""

from __future__ import annotations

import pytest

from repro.core.cache import CacheConfig
from repro.core.controller import ControllerConfig, PesosController
from repro.core.engine import ConcurrentEngine, ThreadTask
from repro.core.request import (
    Request,
    build_http_request,
    parse_http_response,
)
from repro.core.webserver import WebServer
from repro.errors import ConfigurationError
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive


def build_controller(num_drives=4, **config_overrides):
    cluster = DriveCluster(num_drives=num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    for client in clients:
        client.wire_codec = False
    return PesosController(
        clients,
        storage_key=b"engine-test-key".ljust(32, b"\0"),
        config=ControllerConfig(
            replication_factor=2,
            cache=CacheConfig(
                object_bytes=1024, key_bytes=256, policy_bytes=4096
            ),
            **config_overrides,
        ),
    )


def workload(n=16, keys=8):
    requests = []
    for i in range(n):
        requests.append(
            Request(method="put", key=f"k{i % keys}", value=f"v{i}".encode())
        )
    return requests


class TestThreadTask:
    def test_behaves_like_a_generator(self):
        def fn(handle):
            a = handle.emit("first")
            b = handle.emit(("syscall", "op", (a,)))
            return a + b

        task = ThreadTask(fn)
        assert task.send(None) == "first"
        assert task.send(3) == ("syscall", "op", (3,))
        with pytest.raises(StopIteration) as info:
            task.send(4)
        assert info.value.value == 7

    def test_throw_propagates_into_the_task(self):
        seen = []

        def fn(handle):
            try:
                handle.emit("waiting")
            except ValueError as exc:
                seen.append(exc)
            return "recovered"

        task = ThreadTask(fn)
        assert task.send(None) == "waiting"
        with pytest.raises(StopIteration) as info:
            task.throw(ValueError("boom"))
        assert info.value.value == "recovered"
        assert len(seen) == 1

    def test_task_exception_surfaces_to_sender(self):
        def fn(handle):
            raise RuntimeError("inside")

        task = ThreadTask(fn)
        with pytest.raises(RuntimeError, match="inside"):
            task.send(None)


class TestEngineExecution:
    def test_batch_of_puts_then_gets(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=3) as engine:
            responses = engine.run_batch(workload(16))
        assert all(r.status == 200 for r in responses)
        # Every key readable afterwards through the plain path.
        for i in range(8):
            assert controller.get("fp", f"k{i}").ok
        assert len(controller.request_locks) == 0

    def test_overlapping_requests_share_rounds(self):
        wide = build_controller()
        with ConcurrentEngine(wide, seed=3, hardware_threads=8) as engine:
            engine.run_batch(workload(24))
            wide_rounds = engine.stats.rounds
        narrow = build_controller()
        with ConcurrentEngine(narrow, seed=3, hardware_threads=1) as engine:
            engine.run_batch(workload(24))
            narrow_rounds = engine.stats.rounds
        assert wide_rounds < narrow_rounds

    def test_drive_ops_travel_through_syscall_interface(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=3) as engine:
            engine.run_batch(workload(8))
            assert engine.stats.drive_ops > 0
            assert engine.syscalls.submitted == engine.stats.drive_ops
            assert engine.syscalls.completed == engine.stats.drive_ops
            assert engine.syscalls.in_flight == 0

    def test_close_restores_inline_execution(self):
        controller = build_controller()
        engine = ConcurrentEngine(controller, seed=3)
        engine.run_batch(workload(4))
        engine.close()
        submitted = engine.syscalls.submitted
        assert controller.put("fp", "after", b"x").ok
        assert engine.syscalls.submitted == submitted

    def test_request_crash_maps_to_500_response(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=3) as engine:
            engine.submit(Request(method="put", key="ok", value=b"v"))
            index = engine.submit(Request(method="put", key="boom", value=b"v"))
            original = controller.handle

            def exploding(request, fingerprint, now=0.0):
                if request.key == "boom":
                    raise RuntimeError("handler blew up")
                return original(request, fingerprint, now)

            controller.handle = exploding
            responses = engine.run()
        assert responses[0].status == 200
        assert responses[index].status == 500
        assert "handler blew up" in responses[index].error
        assert len(controller.request_locks) == 0

    def test_rejects_zero_inflight(self):
        controller = build_controller()
        with pytest.raises(ConfigurationError):
            ConcurrentEngine(controller, max_inflight=0)

    def test_admission_window_bounds_live_threads(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=3, max_inflight=4) as engine:
            responses = engine.run_batch(workload(20))
        assert all(r.status == 200 for r in responses)
        assert engine.scheduler._next_tid == 20


class TestCoalescing:
    def test_adjacent_same_drive_ops_batch(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=3, hardware_threads=8) as engine:
            engine.run_batch(workload(24))
        assert engine.stats.coalesced_calls > 0
        assert engine.stats.batched_submissions < engine.stats.drive_ops

    def test_coalescing_preserves_results(self):
        plain = build_controller()
        with ConcurrentEngine(plain, seed=3, coalesce=False) as engine:
            baseline = [
                (r.status, r.version) for r in engine.run_batch(workload(16))
            ]
            assert engine.stats.coalesced_calls == 0
        batched = build_controller()
        with ConcurrentEngine(batched, seed=3, coalesce=True) as engine:
            grouped = [
                (r.status, r.version) for r in engine.run_batch(workload(16))
            ]
        assert grouped == baseline


class TestDeterminism:
    def run_once(self, seed):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=seed) as engine:
            engine.run_batch(workload(20))
            return engine.trace_bytes()

    def test_same_seed_byte_identical(self):
        assert self.run_once(7) == self.run_once(7)

    def test_seed_changes_interleaving(self):
        traces = {self.run_once(seed) for seed in (7, 8, 9)}
        assert len(traces) > 1

    def test_dispatch_log_records_every_decision(self):
        controller = build_controller()
        with ConcurrentEngine(controller, seed=7) as engine:
            engine.run_batch(workload(8))
            log = engine.dispatch_trace()
        assert sum(1 for event, _ in log if event == "dispatch") >= 8
        assert any(event == "resume" for event, _ in log)


class TestWebServerBatch:
    def test_handle_batch_serves_raw_http_concurrently(self):
        controller = build_controller()
        server = WebServer(controller)
        items = [
            (
                build_http_request(
                    Request(method="put", key=f"w{i}", value=b"payload")
                ),
                f"client-{i % 3}",
            )
            for i in range(6)
        ]
        items.append((b"BOGUS / HTTP/1.1\r\n\r\n", "client-0"))
        raw_responses = server.handle_batch(items, seed=5, workers=4)
        assert len(raw_responses) == len(items)
        parsed = [parse_http_response(raw) for raw in raw_responses]
        assert all(r.status == 200 for r in parsed[:-1])
        assert parsed[-1].status == 400  # parse failure answered inline
        # The engine uninstalled its hook: the plain path still works.
        assert server.handle_bytes(
            build_http_request(Request(method="get", key="w0")), "client-0"
        ).startswith(b"HTTP/1.1 200")
