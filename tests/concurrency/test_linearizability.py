"""Schedule exploration: many seeded interleavings, zero violations.

Each seed drives a different dispatch schedule over a mixed
put/get/delete/transaction workload; the harness checks every history
against the sequential model and raises with the seed on mismatch.
``SCHEDULE_SEED`` shifts the explored region (the CI matrix runs three
disjoint regions), ``SCHEDULE_COUNT`` resizes it.
"""

from __future__ import annotations

import os

import pytest

from tests.concurrency.harness import explore

BASE = int(os.environ.get("SCHEDULE_SEED", "0")) * 10_000
COUNT = int(os.environ.get("SCHEDULE_COUNT", "200"))
SEEDS = range(BASE, BASE + COUNT)


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaving_is_linearizable(seed):
    explore(seed)


def test_same_seed_reproduces_identical_history():
    first = explore(421)
    second = explore(421)
    assert first.trace == second.trace
    assert first.completion_log == second.completion_log


def test_different_seeds_explore_different_interleavings():
    traces = {explore(seed).trace for seed in (11, 12, 13, 14)}
    assert len(traces) > 1, "schedule seed has no effect on dispatch"
