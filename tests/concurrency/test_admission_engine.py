"""Admission control on the concurrent request path.

The engine with an :class:`AdmissionController` attached must shed
deterministically (429/503 + Retry-After, folded into the replay
trace), bound its queue, respect the AIMD dispatch width — and never
lose an acknowledged write: every 2xx put remains readable afterwards.
"""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.engine import ConcurrentEngine
from repro.core.request import Request, build_http_request, parse_http_response
from repro.core.webserver import WebServer
from tests.concurrency.test_engine import build_controller, workload


def _admission(**overrides):
    config = AdmissionConfig(**overrides)
    return AdmissionController(config)


def _run(admission_config=None, ops=48, keys=12, seed=7, clients=4):
    controller = build_controller()
    admission = (
        None
        if admission_config is None
        else AdmissionController(admission_config)
    )
    with ConcurrentEngine(
        controller, seed=seed, hardware_threads=4, admission=admission
    ) as engine:
        for index, request in enumerate(workload(ops, keys=keys)):
            engine.submit(request, f"fp{index % clients}", now=float(index))
        responses = engine.run()
    return controller, engine, responses


def test_unlimited_engine_unchanged_without_admission():
    _controller, engine, responses = _run(None)
    assert all(response.status == 200 for response in responses)
    assert engine.stats.shed_requests == 0
    assert b"--admission--" not in engine.trace_bytes()


def test_overload_sheds_503_with_retry_after():
    _controller, engine, responses = _run(AdmissionConfig(queue_depth=8))
    shed = [r for r in responses if r.status == 503]
    served = [r for r in responses if r.status == 200]
    assert shed and served
    assert engine.stats.shed_requests == len(shed)
    assert all(r.retry_after is not None and r.retry_after > 0 for r in shed)


def test_rate_limited_client_sheds_429():
    _controller, engine, responses = _run(
        AdmissionConfig(rate_per_second=0.001, burst=2.0), clients=1
    )
    statuses = {response.status for response in responses}
    assert 429 in statuses
    rate_limited = [r for r in responses if r.status == 429]
    assert all(r.retry_after is not None for r in rate_limited)


def test_no_acked_write_lost_under_shedding():
    controller, _engine, responses = _run(AdmissionConfig(queue_depth=6))
    requests = workload(48, keys=12)
    acked = {}
    for request, response in zip(requests, responses):
        if request.method == "put" and response.ok:
            acked[request.key] = request.value
    assert acked  # the scenario admitted some writes
    for key, value in acked.items():
        read = controller.handle(Request(method="get", key=key), "fp0", 99.0)
        assert read.ok and read.value == value


def test_dispatch_width_capped_by_aimd_limit():
    class ProbedEngine(ConcurrentEngine):
        peak = 0

        def _admit(self):
            super()._admit()
            self.peak = max(self.peak, self.scheduler.alive)

    controller = build_controller()
    admission = AdmissionController(
        AdmissionConfig(initial_limit=2, max_limit=2, min_limit=1)
    )
    with ProbedEngine(
        controller, seed=7, hardware_threads=4, admission=admission
    ) as engine:
        for index, request in enumerate(workload(24, keys=8)):
            engine.submit(request, f"fp{index % 4}", now=float(index))
        engine.run()
    # With the limit pinned at 2, no round ever had >2 live threads.
    assert 0 < engine.peak <= 2


def test_trace_includes_admission_decisions_and_replays():
    def trace(seed):
        _controller, engine, _responses = _run(
            AdmissionConfig(queue_depth=8, seed=3), seed=seed
        )
        return engine.trace_bytes()

    first, second = trace(7), trace(7)
    assert b"--admission--" in first
    assert first == second
    assert trace(8) != first


def test_queue_depth_stays_bounded():
    config = AdmissionConfig(queue_depth=5)
    _controller, engine, _responses = _run(config)
    assert engine.admission.queue.peak_depth <= config.queue_depth


# -- through the web server -------------------------------------------------

def test_webserver_batch_path_sheds_and_serves():
    controller = build_controller()
    server = WebServer(
        controller,
        admission=AdmissionController(AdmissionConfig(queue_depth=8)),
    )
    items = [
        (
            build_http_request(
                Request(method="put", key=f"k{i % 6}", value=b"v")
            ),
            f"fp{i % 3}",
        )
        for i in range(32)
    ]
    responses = [
        parse_http_response(raw) for raw in server.handle_batch(items, seed=5)
    ]
    statuses = {response.status for response in responses}
    assert statuses <= {200, 503}
    assert 503 in statuses
    assert all(
        response.retry_after is not None
        for response in responses
        if response.status == 503
    )


def test_webserver_sync_path_rate_limits_429():
    controller = build_controller()
    server = WebServer(
        controller,
        admission=AdmissionController(
            AdmissionConfig(rate_per_second=0.001, burst=1.0)
        ),
    )
    raw = build_http_request(Request(method="get", key="k"))
    first = parse_http_response(server.handle_bytes(raw, "fp-a", now=0.0))
    second = parse_http_response(server.handle_bytes(raw, "fp-a", now=0.0))
    assert first.status in (200, 404)  # admitted (key may not exist)
    assert second.status == 429
    assert second.retry_after is not None


def test_health_reports_admission_state():
    import json

    controller = build_controller()
    admission = AdmissionController(
        AdmissionConfig(rate_per_second=0.001, burst=1.0)
    )
    server = WebServer(controller, admission=admission)
    raw = build_http_request(Request(method="get", key="k"))
    server.handle_bytes(raw, "fp-a", now=0.0)
    server.handle_bytes(raw, "fp-a", now=0.0)  # rate-shed
    health = server._handle_admin(b"GET /_health HTTP/1.1\r\n\r\n")
    body = json.loads(health.split(b"\r\n\r\n", 1)[1])
    assert body["admission"]["admitted"] == 1
    assert body["admission"]["shed"] == {"rate_limited": 1}


def test_webserver_binds_admission_to_controller_sessions():
    controller = build_controller()
    admission = AdmissionController(AdmissionConfig(rate_per_second=1.0))
    server = WebServer(controller, admission=admission)
    assert admission.sessions is controller.sessions
    assert server.admission is admission


def test_webserver_late_binds_admission_telemetry():
    from repro.telemetry import Telemetry

    controller = build_controller()
    controller.telemetry = Telemetry()
    admission = AdmissionController(
        AdmissionConfig(rate_per_second=0.001, burst=1.0)
    )
    server = WebServer(controller, admission=admission)
    raw = build_http_request(Request(method="get", key="k"))
    server.handle_bytes(raw, "fp-a", now=0.0)
    server.handle_bytes(raw, "fp-a", now=0.0)  # rate-shed
    metrics = server._handle_admin(b"GET /_metrics HTTP/1.1\r\n\r\n").decode()
    assert "pesos_admission_decisions_total" in metrics
    assert 'outcome="rate_limited"' in metrics


def test_admission_telemetry_chosen_at_construction_wins():
    from repro.telemetry import Telemetry

    controller = build_controller()
    controller.telemetry = Telemetry()
    explicit = Telemetry()
    admission = AdmissionController(
        AdmissionConfig(rate_per_second=1.0), telemetry=explicit
    )
    WebServer(controller, admission=admission)
    assert admission.telemetry is explicit
