"""Scenario runs: goodput, SLO headline numbers, reproducibility."""

import pytest

from repro.bench.concurrency import ConcurrencyConfig
from repro.workload.arrival import FlashCrowdCurve, SteadyCurve
from repro.workload.scenarios import ScenarioConfig, run_scenario

CAPACITY = 2000.0  # fixed for test speed; the bench calibrates its own


def _config(name, **overrides):
    base = ConcurrencyConfig(
        name="wl-test", record_count=16, operations=0, seed=21
    )
    return ScenarioConfig(
        name=name, base=base, seed=21, max_operations=256, **overrides
    )


@pytest.fixture(scope="module")
def steady_result():
    horizon = 256 / (0.8 * CAPACITY)
    return run_scenario(
        _config("steady"), SteadyCurve(0.8 * CAPACITY), CAPACITY, horizon
    )


def test_steady_under_capacity_sheds_nothing(steady_result):
    assert steady_result.shed_rate == 0.0
    assert steady_result.ok == steady_result.operations
    assert steady_result.worst_slo_state == "healthy"


def test_steady_reports_per_class_p99(steady_result):
    assert "get/p1" in steady_result.p99_by_class
    assert "put/p2" in steady_result.p99_by_class
    assert all(v >= 0 for v in steady_result.p99_by_class.values())


def test_scenario_trace_is_reproducible():
    horizon = 128 / CAPACITY
    shas = set()
    for _ in range(2):
        result = run_scenario(
            _config("repro"), SteadyCurve(CAPACITY), CAPACITY, horizon
        )
        shas.add(result.trace_sha)
    assert len(shas) == 1


def test_flash_crowd_sheds_but_keeps_goodput():
    horizon = 256 / (0.8 * CAPACITY)
    curve = FlashCrowdCurve(
        0.5 * CAPACITY, 3.0 * CAPACITY,
        start=0.3 * horizon, duration=0.4 * horizon,
    )
    result = run_scenario(_config("flash"), curve, CAPACITY, horizon)
    assert result.shed_rate > 0.1  # the storm overwhelms capacity
    statuses = set(result.shed_by_status)
    assert statuses <= {429, 503} and statuses
    # The acceptance gate: goodput during the storm stays >= 70% of
    # what a steady 0.8x run sustains.
    storm_goodput = result.goodput_in(
        curve.start, curve.start + curve.duration
    )
    assert storm_goodput >= 0.7 * 0.8 * CAPACITY
    assert result.acked_writes_lost == 0


def test_flash_crowd_burns_slo_budget():
    horizon = 256 / (0.8 * CAPACITY)
    curve = FlashCrowdCurve(
        0.5 * CAPACITY, 3.0 * CAPACITY,
        start=0.3 * horizon, duration=0.4 * horizon,
    )
    result = run_scenario(_config("burn"), curve, CAPACITY, horizon)
    assert result.max_burn_rate > 0.0
    assert result.worst_slo_state in ("burning", "exhausted")


def test_scan_traffic_reaches_the_range_path():
    horizon = 128 / CAPACITY
    result = run_scenario(
        _config("scans", scan_fraction=0.5, read_fraction=0.25),
        SteadyCurve(CAPACITY), CAPACITY, horizon,
    )
    assert "scan/p1" in result.p99_by_class
    assert result.acked_writes_lost == 0
