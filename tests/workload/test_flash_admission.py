"""Admission under flash crowds: shed decisions replay byte-for-byte.

The satellite contract: every 429/503 the admission layer hands out
during a flash-crowd storm is a pure function of (seed, curve, mix) —
two same-seed runs produce identical decision logs, identical status
tallies, and the same trace SHA, so a recorded trace replays exactly.
"""

import hashlib

from repro.bench.concurrency import ConcurrencyConfig
from repro.workload.arrival import FlashCrowdCurve
from repro.workload.scenarios import ScenarioConfig, run_scenario

CAPACITY = 2000.0


def _run(seed: int):
    base = ConcurrencyConfig(
        name="wl-flash", record_count=16, operations=0, seed=seed
    )
    horizon = 256 / (0.8 * CAPACITY)
    curve = FlashCrowdCurve(
        0.5 * CAPACITY, 3.0 * CAPACITY,
        start=0.3 * horizon, duration=0.4 * horizon,
    )
    config = ScenarioConfig(
        name="flash-replay", base=base, seed=seed, max_operations=256
    )
    return run_scenario(config, curve, CAPACITY, horizon)


def test_flash_shed_decisions_are_byte_reproducible():
    first = _run(seed=41)
    second = _run(seed=41)
    assert first.trace_sha == second.trace_sha
    assert first.shed_by_status == second.shed_by_status
    assert sum(first.shed_by_status.values()) > 0


def test_flash_sheds_with_both_statuses_across_seeds():
    """429 (per-session rate) and 503 (queue) both appear somewhere."""
    statuses = set()
    for seed in (41, 42, 43):
        statuses.update(_run(seed).shed_by_status)
    assert 503 in statuses
    assert statuses <= {429, 503}


def test_different_seeds_diverge():
    """The PRF jitter and mix are seed-keyed: seeds produce distinct
    traces (byte-reproducibility is per seed, not a constant)."""
    shas = {_run(seed).trace_sha for seed in (41, 42, 43)}
    assert len(shas) == 3


def test_trace_sha_covers_admission_decisions():
    """Tampering with the decision record must change the digest."""
    result = _run(seed=44)
    forged = hashlib.sha256(b"forged").hexdigest()[:16]
    assert result.trace_sha != forged
    assert len(result.trace_sha) == 16
