"""The headline workload bench: gates, trajectory, reproducibility."""

import json

import pytest

from repro.bench import trajectory
from repro.workload.bench import FLASH_RETENTION_FLOOR, run_workload_bench


@pytest.fixture(scope="module")
def headline(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trajectory")
    previous = trajectory.os.environ.get("REPRO_TRAJECTORY_DIR")
    trajectory.os.environ["REPRO_TRAJECTORY_DIR"] = str(directory)
    try:
        result = run_workload_bench(
            seed=17, operations=192, lifecycles=40_000
        )
    finally:
        if previous is None:
            del trajectory.os.environ["REPRO_TRAJECTORY_DIR"]
        else:
            trajectory.os.environ["REPRO_TRAJECTORY_DIR"] = previous
    return result, directory


def test_bench_clears_acceptance_gates(headline):
    result, _directory = headline
    assert result["flash_retention"] >= FLASH_RETENTION_FLOOR
    assert result["acked_writes_lost"] == 0
    assert result["churn_max_bytes_per_session"] < 2048
    assert result["goodput_steady"] > 0


def test_bench_records_trajectory_file(headline):
    result, directory = headline
    path = directory / "BENCH_workload.json"
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["bench"] == "workload"
    assert payload["latest"] == dict(sorted(result.items()))


def test_committed_bench_file_holds_the_gates():
    """The checked-in BENCH_workload.json must itself satisfy the
    acceptance criteria the CI job enforces on fresh runs."""
    committed = trajectory.load("workload")
    assert committed is not None, "BENCH_workload.json missing"
    latest = committed["latest"]
    assert latest["flash_retention"] >= FLASH_RETENTION_FLOOR
    assert latest["acked_writes_lost"] == 0
    assert latest["churn_lifecycles"] == 1_000_000
    assert latest["churn_max_bytes_per_session"] < 2048
