"""Session-churn soak: bounded footprint, deterministic reports."""

from repro.core.session import Session
from repro.workload.sessions import ChurnConfig, run_session_churn

#: Hard bound the soak asserts: structural bytes per live session.
BYTES_PER_SESSION_BOUND = 2048


def _small(**overrides) -> ChurnConfig:
    defaults = dict(
        lifecycles=50_000, sample_every=5_000, seed=31,
    )
    defaults.update(overrides)
    return ChurnConfig(**defaults)


def test_footprint_is_structural_and_deterministic():
    session = Session(fingerprint="fp-x", created_at=0.0, last_active=0.0)
    empty = session.footprint()
    session.operations.append("op-000000001")
    session.transactions.add("tx-000000001")
    grown = session.footprint()
    assert grown > empty
    # Draining state shrinks it back exactly — no monotonic creep.
    session.operations.clear()
    session.transactions.clear()
    assert session.footprint() == empty


def test_churn_footprint_stays_bounded():
    report = run_session_churn(_small())
    assert report.lifecycles == 50_000
    assert report.samples, "soak must sample the footprint"
    assert report.max_bytes_per_session < BYTES_PER_SESSION_BOUND
    # Later samples must not trend upward: the last sample stays within
    # 5% of the maximum seen, i.e. no slow per-lifecycle leak.
    last = report.samples[-1][2]
    assert last <= report.max_bytes_per_session * 1.05


def test_churn_live_set_stays_under_cap():
    config = _small()
    report = run_session_churn(config)
    assert report.peak_live <= config.max_sessions
    # Sessions actually churn: most lifecycles expire within the run.
    assert report.expired > report.lifecycles // 2
    assert report.final_live < report.created


def test_churn_resumes_returning_users():
    report = run_session_churn(_small(return_fraction=0.3))
    assert report.resumed > 0
    assert report.created + report.resumed == report.lifecycles


def test_churn_report_deterministic():
    first = run_session_churn(_small())
    second = run_session_churn(_small())
    assert first == second


def test_churn_report_row_is_summary():
    row = run_session_churn(_small(lifecycles=10_000)).row()
    assert set(row) == {
        "lifecycles", "created", "resumed", "expired", "peak_live",
        "max_bytes_per_session", "mean_bytes_per_session",
    }
