"""Arrival curves and the open-loop integrator."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrival import (
    DiurnalCurve,
    FlashCrowdCurve,
    HotKeyStorm,
    SteadyCurve,
    generate_arrivals,
)


def test_steady_arrivals_are_evenly_spaced():
    arrivals = generate_arrivals(SteadyCurve(10.0), horizon=2.0)
    assert arrivals[0] == 0.0
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(abs(gap - 0.1) < 1e-12 for gap in gaps)
    assert len(arrivals) == 20


def test_arrivals_deterministic():
    curve = DiurnalCurve(50.0, amplitude=0.5, period=10.0)
    assert generate_arrivals(curve, 30.0) == generate_arrivals(curve, 30.0)


def test_diurnal_rate_breathes_around_base():
    curve = DiurnalCurve(100.0, amplitude=0.5, period=40.0)
    assert curve.rate(10.0) == pytest.approx(150.0)  # peak of the sine
    assert curve.rate(30.0) == pytest.approx(50.0)  # trough
    arrivals = generate_arrivals(curve, 40.0)
    # More arrivals land in the high half-period than the low one.
    first = sum(1 for t in arrivals if t < 20.0)
    assert first > len(arrivals) - first


def test_flash_crowd_step_spikes_density():
    curve = FlashCrowdCurve(10.0, 100.0, start=5.0, duration=5.0)
    arrivals = generate_arrivals(curve, 15.0)
    storm = sum(1 for t in arrivals if curve.in_storm(t))
    calm = len(arrivals) - storm
    assert storm > 5 * calm / 2  # 10x rate over a third of the horizon
    assert curve.rate(5.0) == 100.0 and curve.rate(10.0) == 10.0


def test_flash_crowd_validates_shape():
    with pytest.raises(ConfigurationError):
        FlashCrowdCurve(100.0, 50.0, start=0.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        FlashCrowdCurve(10.0, 20.0, start=0.0, duration=0.0)


def test_diurnal_validates_amplitude():
    with pytest.raises(ConfigurationError):
        DiurnalCurve(10.0, amplitude=1.0)


def test_generate_arrivals_caps_events():
    arrivals = generate_arrivals(SteadyCurve(1000.0), 100.0, max_events=64)
    assert len(arrivals) == 64


def test_generate_arrivals_rejects_bad_horizon():
    with pytest.raises(ConfigurationError):
        generate_arrivals(SteadyCurve(10.0), horizon=0.0)


def test_hot_key_storm_focuses_choices():
    storm = HotKeyStorm(
        1000, seed=5, storm_start=10.0, storm_duration=10.0,
        hot_keys=4, hot_fraction=0.9,
    )
    outside = {storm.next(1.0) for _ in range(200)}
    inside = [storm.next(12.0) for _ in range(200)]
    # During the storm the vast majority of picks land on <= 4 keys.
    from collections import Counter

    top = Counter(inside).most_common(4)
    assert sum(count for _, count in top) >= 0.8 * len(inside)
    # Outside it the spread is zipfian-wide.
    assert len(outside) > 50


def test_hot_key_storm_deterministic():
    picks = []
    for _ in range(2):
        storm = HotKeyStorm(100, seed=9, storm_start=1.0, storm_duration=2.0)
        picks.append([storm.next(t / 10.0) for t in range(50)])
    assert picks[0] == picks[1]


def test_hot_key_storm_validates():
    with pytest.raises(ConfigurationError):
        HotKeyStorm(10, seed=1, storm_start=0, storm_duration=1, hot_keys=0)
    with pytest.raises(ConfigurationError):
        HotKeyStorm(
            10, seed=1, storm_start=0, storm_duration=1, hot_fraction=1.5
        )
