"""Harness robustness: failures mid-run and reproducibility."""

from repro.bench.configs import make_config
from repro.bench.harness import build_system, run_point
from repro.ycsb.workload import WORKLOAD_A

TINY = WORKLOAD_A.scaled(record_count=300, operation_count=600, value_size=256)


def test_drive_failure_mid_run_degrades_not_crashes():
    """With replication and a write quorum of one, a failed drive
    costs nothing; without replication, affected requests fail cleanly
    (503) and the run completes."""
    from dataclasses import replace

    config = replace(
        make_config("sgx", "sim", num_drives=2),
        replication_factor=2,
        write_quorum=1,
    )
    loaded = build_system(config, workload=TINY)
    loaded.cluster.drive(0).fail()
    loaded.controller.caches.objects.clear()
    loaded.controller.caches.keys.clear()
    result = run_point(loaded, 10, measure_ops=400, warmup_ops=40)
    assert result.errors == 0  # replicas absorbed the failure
    assert result.throughput > 0


def test_drive_failure_under_full_quorum_degrades_writes():
    """The default write quorum is every replica: with one of two
    drives down, writes are refused (503) rather than silently
    under-replicated, while replicated reads keep succeeding."""
    from dataclasses import replace

    config = replace(
        make_config("sgx", "sim", num_drives=2), replication_factor=2
    )
    loaded = build_system(config, workload=TINY)
    loaded.cluster.drive(0).fail()
    loaded.controller.caches.objects.clear()
    loaded.controller.caches.keys.clear()
    result = run_point(loaded, 10, measure_ops=400, warmup_ops=40)
    assert result.errors > 0  # quorum refusals, not lost writes
    assert result.throughput > 0


def test_unreplicated_drive_failure_surfaces_errors():
    config = make_config("sgx", "sim", num_drives=2)
    loaded = build_system(config, workload=TINY)
    loaded.cluster.drive(0).fail()
    loaded.controller.caches.objects.clear()
    loaded.controller.caches.keys.clear()
    result = run_point(loaded, 10, measure_ops=400, warmup_ops=40)
    # Roughly half the keys live on the dead drive: errors, no crash.
    assert result.errors > 0
    assert result.throughput > 0


def test_identical_builds_reproduce_identical_numbers():
    """The whole pipeline is deterministic given seeds."""

    def one_run():
        loaded = build_system(
            make_config("sgx", "sim"), workload=TINY, seed=7
        )
        return run_point(loaded, 8, measure_ops=300, warmup_ops=30, seed=11)

    a = one_run()
    b = one_run()
    assert a.throughput == b.throughput
    assert a.mean_latency == b.mean_latency
    assert a.p99_latency == b.p99_latency


def test_different_seeds_differ():
    loaded = build_system(make_config("sgx", "sim"), workload=TINY, seed=7)
    a = run_point(loaded, 8, measure_ops=300, warmup_ops=30, seed=1)
    b = run_point(loaded, 8, measure_ops=300, warmup_ops=30, seed=2)
    assert a.throughput != b.throughput  # jitter streams differ
