"""The python -m repro.bench command-line entry point."""

import os

import pytest

from repro.bench.__main__ import _RUNNERS, main


def test_unknown_experiment_rejected(capsys):
    assert main(["not-a-figure"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiments" in out


def test_runner_table_covers_all_figures():
    for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                 "fig10", "enc"):
        assert name in _RUNNERS


def test_cli_runs_one_experiment(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["abl-epc"]) == 0
    out = capsys.readouterr().out
    assert "AblEpc" in out
    assert os.path.exists(tmp_path / "ablepc.json")
