"""Experiment harness: building, loading, and measuring points."""

import pytest

from repro.bench.configs import make_config
from repro.bench.harness import build_system, run_point, sweep_clients
from repro.ycsb.workload import WORKLOAD_A

TINY = WORKLOAD_A.scaled(record_count=200, operation_count=400, value_size=256)


@pytest.fixture(scope="module")
def loaded():
    return build_system(
        make_config("sgx", "sim"),
        workload=TINY,
        policy_source="read :- sessionKeyIs(K)\nupdate :- sessionKeyIs(K)",
    )


def test_build_loads_all_records(loaded):
    first = loaded.trace.load_keys[0]
    response = loaded.controller.get("fp-bench", first)
    assert response.ok
    assert len(response.value) == 256


def test_build_installs_policy(loaded):
    assert loaded.policy_id
    meta = loaded.controller._get_meta(loaded.trace.load_keys[0])
    assert meta.policy_id == loaded.policy_id


def test_run_point_measures_throughput(loaded):
    result = run_point(loaded, 10, measure_ops=300, warmup_ops=50)
    assert result.throughput > 0
    assert result.mean_latency > 0
    assert result.p99_latency >= result.p50_latency
    assert result.operations == 300
    assert result.denied == 0
    assert result.errors == 0


def test_more_clients_more_throughput_until_saturation(loaded):
    light = run_point(loaded, 1, measure_ops=200, warmup_ops=20)
    heavy = run_point(loaded, 50, measure_ops=600, warmup_ops=60)
    assert heavy.throughput > 2 * light.throughput


def test_sweep_returns_point_per_count(loaded):
    results = sweep_clients(loaded, [1, 5], measure_ops=150, warmup_ops=20)
    assert [r.clients for r in results] == [1, 5]


def test_result_row_shape(loaded):
    result = run_point(loaded, 2, measure_ops=100, warmup_ops=10)
    row = result.row()
    assert set(row) == {"config", "clients", "kiops", "mean_ms", "p99_ms", "ops"}
    assert row["config"] == "sgx-sim"


def test_bad_policy_rejected():
    with pytest.raises(RuntimeError, match="policy rejected"):
        build_system(
            make_config("sgx", "sim"), workload=TINY, policy_source="read :-"
        )


def test_version_aware_build():
    from repro.usecases.versioned import versioned_policy

    loaded = build_system(
        make_config("native", "sim"),
        workload=TINY,
        policy_source=versioned_policy(),
        version_aware=True,
    )
    result = run_point(loaded, 5, measure_ops=200, warmup_ops=20)
    assert result.denied == 0
    assert result.errors == 0


def test_replicated_build_writes_everywhere():
    config = make_config("sgx", "sim", num_drives=2)
    from dataclasses import replace

    config = replace(config, replication_factor=2)
    loaded = build_system(config, workload=TINY)
    for drive in loaded.cluster:
        assert drive.key_count > 0


def test_run_point_reports_layer_breakdown(loaded):
    from repro.bench.model import LAYERS

    result = run_point(loaded, 4, measure_ops=200, warmup_ops=20)
    assert set(result.breakdown) == set(LAYERS)
    # The measured window charges real service time to the dominant
    # layers of this configuration.
    assert result.breakdown["cpu"] > 0
    assert result.breakdown["client_net"] > 0
    assert result.breakdown["drive_service"] > 0


def test_run_point_with_telemetry_exposes_layer_gauges(loaded):
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    result = run_point(
        loaded, 2, measure_ops=100, warmup_ops=10, telemetry=telemetry
    )
    families = {family.name for family in telemetry.registry.collect()}
    assert "pesos_bench_layer_seconds" in families
    assert result.breakdown["cpu"] > 0
