"""System model: cost derivation and the request lifecycle."""

import pytest

from repro.bench.configs import make_config
from repro.bench.model import SystemModel
from repro.core.controller import PesosController
from repro.core.effects import (
    DISK_READ,
    DISK_WRITE,
    ENCRYPT,
    POLICY_CHECK,
    POLICY_LOAD,
)
from repro.core.request import Response
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.sim import Environment


def _model(mode="sgx", **overrides):
    config = make_config(mode, "sim", **overrides)
    cluster = DriveCluster(num_drives=config.num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=b"k" * 32)
    env = Environment()
    return env, SystemModel(env, controller, config)


def test_costs_scale_with_disk_ops():
    _env, model = _model()
    cpu_none, ops_none, _ssd = model._derive_costs([], 1024, 1024)
    cpu_two, ops_two, _ssd = model._derive_costs(
        [(DISK_WRITE, 0, 1024), (DISK_WRITE, 0, 128)], 1024, 1024
    )
    assert len(ops_none) == 0
    assert len(ops_two) == 2
    assert cpu_two > cpu_none


def test_replica_writes_charged_beyond_two():
    _env, model = _model()
    base_events = [(DISK_WRITE, 0, 1024), (DISK_WRITE, 1, 128)]
    replicated = base_events + [(DISK_WRITE, 2, 1024), (DISK_WRITE, 2, 128)]
    cpu_base, _, _ = model._derive_costs(base_events, 1024, 64)
    cpu_repl, _, _ = model._derive_costs(replicated, 1024, 64)
    extra = cpu_repl - cpu_base
    # Two extra writes: replica coordination + per-op + syscalls.
    assert extra > 2 * model.config.replica_write_cpu


def test_sgx_charges_more_than_native_for_same_events():
    _env, sgx = _model("sgx")
    _env2, native = _model("native")
    events = [(DISK_READ, 0, 1024), (ENCRYPT, 1024), (POLICY_CHECK, 5)]
    sgx_cpu, _, _ = sgx._derive_costs(events, 1024, 1024)
    native_cpu, _, _ = native._derive_costs(events, 1024, 1024)
    assert sgx_cpu > native_cpu


def test_policy_load_charged():
    _env, model = _model()
    with_load, _, _ = model._derive_costs([(POLICY_LOAD, 300)], 64, 64)
    without, _, _ = model._derive_costs([], 64, 64)
    assert with_load - without == pytest.approx(
        model.config.cost.policy_load
    )


def test_epc_cost_zero_within_limit():
    _env, model = _model()
    assert model._epc_cost(4096) == 0.0


def test_epc_cost_positive_when_overflowing():
    from dataclasses import replace

    _env, model = _model()
    model.config = replace(
        model.config, cost=replace(model.config.cost, epc_limit=1 << 20)
    )
    assert model._epc_cost(64 * 1024) > 0.0


def test_request_lifecycle_advances_time_and_meters():
    env, model = _model()
    model.meter.open_window(env.now)

    def execute():
        model.controller.effects.record(DISK_WRITE, 0, 1024)
        return Response(status=200, value=b"x" * 128)

    done = {}

    def proc():
        response = yield from model.request(execute, request_bytes=1024)
        done["status"] = response.status

    env.process(proc())
    env.run()
    assert done["status"] == 200
    assert env.now > 0
    assert model.latency.count == 1
    assert model.meter.completed == 1


def test_concurrent_requests_queue_on_cpu():
    def execute():
        return Response(status=200, value=b"")

    # One uncontended request...
    env_solo, solo = _model(controller_cores=1)
    env_solo.process(solo.request(execute, request_bytes=512))
    env_solo.run()
    uncontended = solo.latency.stats.max

    # ...vs 64 concurrent ones on a single core.
    env, model = _model(controller_cores=1)
    for _ in range(64):
        env.process(model.request(execute, request_bytes=512))
    env.run()
    assert model.latency.count == 64
    # Queueing on the single CPU dominates the uncontended latency.
    assert model.latency.stats.min > 5 * uncontended


def test_drive_station_respects_concurrency():
    env, model = _model()
    station = model.drives[0]
    finished = []

    def proc():
        yield from station.service("read", 1024)
        finished.append(env.now)

    for _ in range(station.timing.concurrency + 1):
        env.process(proc())
    env.run()
    # The extra request had to wait for a slot.
    assert max(finished) > min(finished)
