"""Figure result collection and rendering."""

import json

from repro.bench.harness import ExperimentResult
from repro.bench.report import FigureResult, format_table, save_figure


def _result(kiops, clients=10):
    return ExperimentResult(
        config="test",
        clients=clients,
        throughput=kiops * 1000,
        mean_latency=0.5e-3,
        p50_latency=0.4e-3,
        p99_latency=2.0e-3,
        operations=1000,
    )


def test_add_and_lookup():
    figure = FigureResult("FigX", "title", "clients")
    figure.add("native", 10, _result(90))
    figure.add("native", 20, _result(95))
    assert figure.throughput_of("native", 10) == 90_000
    assert figure.peak("native") == 95_000


def test_lookup_missing_raises():
    figure = FigureResult("FigX", "title", "clients")
    figure.add("native", 10, _result(90))
    try:
        figure.throughput_of("native", 99)
    except KeyError:
        pass
    else:
        raise AssertionError("expected KeyError")


def test_render_contains_series_and_notes():
    figure = FigureResult(
        "FigX", "demo figure", "clients", paper_notes=["expected shape"]
    )
    figure.add("native", 10, _result(90))
    figure.add("sgx", 10, _result(85))
    text = figure.render()
    assert "FigX" in text
    assert "native" in text and "sgx" in text
    assert "90.0" in text and "85.0" in text
    assert "paper: expected shape" in text


def test_render_latency_metric():
    figure = FigureResult("FigX", "t", "clients")
    figure.add("native", 10, _result(90))
    assert "0.50" in figure.render(metric="latency_ms")


def test_format_table_alignment():
    table = format_table(["a", "bb"], [["1", "2"], ["33", "444"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_save_figure_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    figure = FigureResult("FigY", "t", "x")
    figure.add("s", 1, _result(50))
    path = save_figure(figure)
    data = json.loads(open(path).read())
    assert data["figure"] == "FigY"
    assert data["series"]["s"][0]["kiops"] == 50.0
