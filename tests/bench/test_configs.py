"""Evaluation configurations: the four combos and their invariants."""

import pytest

from repro.bench.configs import (
    make_config,
    paper_ratio_caches,
    NATIVE_REQUEST_COSTS,
    SGX_REQUEST_COSTS,
)
from repro.kinetic.timing import HddTiming, SimulatorTiming


def test_four_configurations_exist():
    names = {
        make_config(mode, backend).name
        for mode in ("native", "sgx")
        for backend in ("sim", "disk")
    }
    assert names == {"native-sim", "native-disk", "sgx-sim", "sgx-disk"}


def test_sgx_config_carries_enclave_costs():
    config = make_config("sgx", "sim")
    assert config.is_sgx
    assert config.cost.syscall_cost() > 0
    assert config.cost.epc_limit == 96 * 1024 * 1024


def test_native_config_has_no_enclave_costs():
    config = make_config("native", "sim")
    assert not config.is_sgx
    assert config.cost.syscall_cost() == 0


def test_backends_pick_timing_models():
    assert isinstance(make_config("sgx", "sim").drive_timing, SimulatorTiming)
    assert isinstance(make_config("sgx", "disk").drive_timing, HddTiming)


def test_disk_config_models_shared_enclosure():
    shared = make_config("sgx", "disk")
    dedicated = make_config("sgx", "disk", shared_enclosure=False)
    assert shared.enclosure_per_op > 0
    assert dedicated.enclosure_per_op == 0


def test_sgx_replication_costs_more_than_native():
    native = make_config("native", "sim")
    sgx = make_config("sgx", "sim")
    assert sgx.replica_write_cpu > native.replica_write_cpu


def test_request_costs_shared_between_modes():
    # Same request-path constants; only enclave overheads differ.
    assert NATIVE_REQUEST_COSTS.request_parse == SGX_REQUEST_COSTS.request_parse
    assert SGX_REQUEST_COSTS.boundary_per_byte > 0


def test_unknown_mode_and_backend_rejected():
    with pytest.raises(ValueError):
        make_config("tpm", "sim")
    with pytest.raises(ValueError):
        make_config("sgx", "tape")


def test_with_replication_helper():
    config = make_config("sgx", "sim").with_replication(3)
    assert config.replication_factor == 3
    assert config.name.endswith("-r3")


def test_paper_ratio_caches_scale():
    small = paper_ratio_caches(1_000, 1024)
    full = paper_ratio_caches(100_000, 1024)
    assert full.object_bytes > small.object_bytes
    # At paper scale the object cache is ~48 MB.
    assert 40 << 20 < full.object_bytes < 56 << 20
    assert full.policy_bytes == 5 << 20
