"""Overload bench: graceful degradation, shed contract, replayability."""

from repro.bench.overload import (
    OverloadConfig,
    calibrate_capacity,
    degradation,
    make_overload_workload,
    run_overload_point,
    run_overload_sweep,
)

# Enough offered work for the unprotected queue to actually build up;
# the collapse the sweep demonstrates is a function of queue growth.
SMOKE = OverloadConfig(operations=192, multipliers=(1.0, 4.0))


def _sweep():
    return run_overload_sweep(SMOKE)


def test_goodput_degrades_gracefully_with_admission():
    sweep = _sweep()
    assert degradation(sweep["admission"]) >= 0.8
    # The unprotected series must do visibly worse at the same load.
    protected = next(
        p for p in sweep["admission"] if p.multiplier == 4.0
    )
    unprotected = next(
        p for p in sweep["no-admission"] if p.multiplier == 4.0
    )
    assert protected.goodput > unprotected.goodput


def test_queue_bounded_and_sheds_carry_retry_after():
    for point in _sweep()["admission"]:
        assert point.peak_queue_depth <= SMOKE.queue_depth
        assert set(point.shed_by_status) <= {429, 503}
        assert point.shed_with_retry_after == sum(
            point.shed_by_status.values()
        )


def test_no_acked_write_lost_at_any_load():
    for series in _sweep().values():
        for point in series:
            assert point.acked_writes > 0
            assert point.acked_writes_lost == 0


def test_sweep_is_byte_replayable():
    first = [p.trace_sha for p in _sweep()["admission"]]
    second = [p.trace_sha for p in _sweep()["admission"]]
    assert first == second


def test_workload_and_calibration_deterministic():
    assert make_overload_workload(SMOKE)[0][0].key == (
        make_overload_workload(SMOKE)[0][0].key
    )
    assert calibrate_capacity(SMOKE) == calibrate_capacity(SMOKE)


def test_single_point_outcome_conservation():
    capacity = calibrate_capacity(SMOKE)
    point = run_overload_point(SMOKE, 4.0, True, capacity)
    assert point.served + sum(point.shed_by_status.values()) == (
        point.operations
    )
