"""Overload bench: graceful degradation, shed contract, replayability."""

from repro.bench.overload import (
    OverloadConfig,
    calibrate_capacity,
    degradation,
    make_overload_workload,
    run_overload_point,
    run_overload_sweep,
)

# Enough offered work for the unprotected queue to actually build up;
# the collapse the sweep demonstrates is a function of queue growth.
SMOKE = OverloadConfig(operations=192, multipliers=(1.0, 4.0))


def _sweep():
    return run_overload_sweep(SMOKE)


def test_goodput_degrades_gracefully_with_admission():
    sweep = _sweep()
    assert degradation(sweep["admission"]) >= 0.8
    # The unprotected series must do visibly worse at the same load.
    protected = next(
        p for p in sweep["admission"] if p.multiplier == 4.0
    )
    unprotected = next(
        p for p in sweep["no-admission"] if p.multiplier == 4.0
    )
    assert protected.goodput > unprotected.goodput


def test_queue_bounded_and_sheds_carry_retry_after():
    for point in _sweep()["admission"]:
        assert point.peak_queue_depth <= SMOKE.queue_depth
        assert set(point.shed_by_status) <= {429, 503}
        assert point.shed_with_retry_after == sum(
            point.shed_by_status.values()
        )


def test_no_acked_write_lost_at_any_load():
    for series in _sweep().values():
        for point in series:
            assert point.acked_writes > 0
            assert point.acked_writes_lost == 0


def test_sweep_is_byte_replayable():
    first = [p.trace_sha for p in _sweep()["admission"]]
    second = [p.trace_sha for p in _sweep()["admission"]]
    assert first == second


def test_workload_and_calibration_deterministic():
    assert make_overload_workload(SMOKE)[0][0].key == (
        make_overload_workload(SMOKE)[0][0].key
    )
    assert calibrate_capacity(SMOKE) == calibrate_capacity(SMOKE)


def test_single_point_outcome_conservation():
    capacity = calibrate_capacity(SMOKE)
    point = run_overload_point(SMOKE, 4.0, True, capacity)
    assert point.served + sum(point.shed_by_status.values()) == (
        point.operations
    )


# -- SLO + audit acceptance -------------------------------------------------

def _slo_telemetry():
    """A latency objective tuned so a 2x run walks the whole state arc.

    The threshold sits between an idle put's latency and the queue-wait
    latency once the admission queue fills, and the burn thresholds are
    reachable for the 30% budget: a seeded overload run starts healthy,
    burns as queueing inflates latency, and exhausts the budget before
    the run drains.
    """
    from repro.telemetry import Telemetry
    from repro.telemetry.slo import SloEngine, SloSpec

    telemetry = Telemetry()
    engine = telemetry.attach_slo(SloEngine([
        SloSpec(
            name="put-latency", request_class="put/p2",
            objective="latency", target=0.7, threshold=0.004,
            window=60.0, fast_window=0.004, slow_window=0.01,
            fast_burn=2.0, slow_burn=1.5,
        ),
    ]))
    return telemetry, engine.get("put-latency")


def test_overload_run_walks_healthy_burning_exhausted():
    telemetry, objective = _slo_telemetry()
    transitions = []

    original = telemetry.record_request

    def sampling(method, ok, latency, vnow, trace_id=None):
        original(method, ok, latency, vnow, trace_id=trace_id)
        state = objective.state(vnow)
        if not transitions or transitions[-1] != state:
            transitions.append(state)

    telemetry.record_request = sampling
    capacity = calibrate_capacity(SMOKE)
    run_overload_point(SMOKE, 2.0, True, capacity, telemetry=telemetry)
    assert transitions == ["healthy", "burning", "exhausted"]
    assert objective.state(objective.last_vnow) == "exhausted"


def test_overload_exemplars_resolve_to_traces():
    telemetry, objective = _slo_telemetry()
    capacity = calibrate_capacity(SMOKE)
    run_overload_point(SMOKE, 2.0, True, capacity, telemetry=telemetry)
    snap = objective.snapshot()
    assert snap["state"] == "exhausted"
    assert snap["exemplar_trace_ids"]
    for trace_id in snap["exemplar_trace_ids"]:
        span = telemetry.tracer.find(trace_id)
        assert span is not None, hex(trace_id)
        assert span.op == "put"


def test_overload_audit_chain_is_deterministic():
    capacity = calibrate_capacity(SMOKE)

    def run():
        sink = {}
        point = run_overload_point(
            SMOKE, 3.0, True, capacity, audit_log_size=512, sink=sink
        )
        auditor = sink["controller"].auditor
        assert auditor.verify()["ok"]
        hashes = [record.entry_hash for record in auditor.log.records]
        return point.audit_head, point.audit_records, hashes

    first = run()
    second = run()
    assert first == second
    head, records, _hashes = first
    assert records > 0
    assert head


def test_overload_point_without_audit_leaves_fields_empty():
    capacity = calibrate_capacity(SMOKE)
    point = run_overload_point(SMOKE, 1.0, True, capacity)
    assert point.audit_head == ""
    assert point.audit_records == 0
