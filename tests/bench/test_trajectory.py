"""Perf trajectory files: BENCH_<name>.json record/load/regress."""

import json
import os

from repro.bench import trajectory


def test_record_and_load_roundtrip(tmp_path):
    directory = str(tmp_path)
    path = trajectory.record(
        "demo", {"goodput": 12.5, "p99_ms": 3.0}, directory=directory
    )
    assert path == trajectory.path_of("demo", directory)
    data = trajectory.load("demo", directory)
    assert data["bench"] == "demo"
    assert data["latest"] == {"goodput": 12.5, "p99_ms": 3.0}
    assert data["history"] == []


def test_load_missing_returns_none(tmp_path):
    assert trajectory.load("absent", str(tmp_path)) is None


def test_changed_entry_pushes_previous_to_history(tmp_path):
    directory = str(tmp_path)
    trajectory.record("demo", {"goodput": 10.0}, directory=directory)
    trajectory.record("demo", {"goodput": 11.0}, directory=directory)
    data = trajectory.load("demo", directory)
    assert data["latest"] == {"goodput": 11.0}
    assert data["history"] == [{"goodput": 10.0}]


def test_unchanged_entry_leaves_file_byte_identical(tmp_path):
    directory = str(tmp_path)
    path = trajectory.record("demo", {"goodput": 10.0}, directory=directory)
    with open(path, "rb") as handle:
        first = handle.read()
    trajectory.record("demo", {"goodput": 10.0}, directory=directory)
    with open(path, "rb") as handle:
        assert handle.read() == first


def test_history_is_bounded(tmp_path):
    directory = str(tmp_path)
    for value in range(6):
        trajectory.record(
            "demo", {"goodput": float(value)},
            directory=directory, history_limit=3,
        )
    data = trajectory.load("demo", directory)
    assert data["latest"] == {"goodput": 5.0}
    assert [entry["goodput"] for entry in data["history"]] == [2.0, 3.0, 4.0]


def test_run_id_is_optional_provenance(tmp_path):
    directory = str(tmp_path)
    trajectory.record(
        "demo", {"goodput": 1.0}, directory=directory, run_id="ci-42"
    )
    assert trajectory.load("demo", directory)["latest"]["run_id"] == "ci-42"


def test_file_is_sorted_and_newline_terminated(tmp_path):
    directory = str(tmp_path)
    path = trajectory.record(
        "demo", {"zeta": 1.0, "alpha": 2.0}, directory=directory
    )
    with open(path) as handle:
        text = handle.read()
    assert text.endswith("\n")
    assert text == json.dumps(
        json.loads(text), indent=2, sort_keys=True
    ) + "\n"
    assert list(json.loads(text)["latest"]) == ["alpha", "zeta"]


def test_check_regression_passes_without_baseline(tmp_path):
    report = trajectory.check_regression(
        "absent", "goodput", 5.0, directory=str(tmp_path)
    )
    assert report["ok"]
    assert report["baseline"] is None
    assert report["ratio"] is None


def test_check_regression_within_tolerance(tmp_path):
    directory = str(tmp_path)
    trajectory.record("demo", {"goodput": 100.0}, directory=directory)
    assert trajectory.check_regression(
        "demo", "goodput", 95.0, directory=directory
    )["ok"]


def test_check_regression_fails_below_tolerance(tmp_path):
    directory = str(tmp_path)
    trajectory.record("demo", {"goodput": 100.0}, directory=directory)
    report = trajectory.check_regression(
        "demo", "goodput", 85.0, directory=directory
    )
    assert not report["ok"]
    assert report["baseline"] == 100.0
    assert report["ratio"] == 0.85


def test_check_regression_ignores_non_numeric_baseline(tmp_path):
    directory = str(tmp_path)
    trajectory.record("demo", {"goodput": "n/a"}, directory=directory)
    assert trajectory.check_regression(
        "demo", "goodput", 1.0, directory=directory
    )["ok"]


def test_trajectory_dir_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRAJECTORY_DIR", str(tmp_path))
    assert trajectory.trajectory_dir() == str(tmp_path)
    monkeypatch.delenv("REPRO_TRAJECTORY_DIR")
    # Default resolves to the repository root (where BENCH files live).
    assert os.path.isdir(trajectory.trajectory_dir())
