"""Drive semantics: versioned puts, ranges, ACLs, security, P2P."""

import pytest

from repro.errors import DriveOffline
from repro.kinetic.drive import Acl, KineticDrive, Role
from repro.kinetic.protocol import Message, MessageType, StatusCode

KEY = b"asdfasdf"  # factory demo key


def _request(message_type, body, identity="demo", key=KEY, sequence=1):
    return Message(
        message_type=message_type,
        identity=identity,
        sequence=sequence,
        body=body,
    ).sign(key)


def _put(drive, key, value, **extra):
    body = {"key": key, "value": value, "db_version": b"", "force": False}
    body.update(extra)
    return drive.handle(_request(MessageType.PUT, body))


def _get(drive, key):
    return drive.handle(_request(MessageType.GET, {"key": key}))


@pytest.fixture()
def drive():
    return KineticDrive("disk-0", capacity_bytes=1 << 20)


def test_put_get_roundtrip(drive):
    put_response = _put(drive, b"k1", b"hello")
    assert put_response.ok
    get_response = _get(drive, b"k1")
    assert get_response.ok
    assert get_response.body["value"] == b"hello"
    assert get_response.body["db_version"] == put_response.body["new_version"]


def test_get_missing_key(drive):
    assert _get(drive, b"nope").status == StatusCode.NOT_FOUND


def test_versioned_put_detects_stale_writer(drive):
    first = _put(drive, b"k", b"v1")
    version = first.body["new_version"]
    # Writer with the right version succeeds.
    second = _put(drive, b"k", b"v2", db_version=version)
    assert second.ok
    # Writer reusing the old version conflicts.
    stale = _put(drive, b"k", b"v3", db_version=version)
    assert stale.status == StatusCode.VERSION_MISMATCH
    assert stale.body["current_version"] == second.body["new_version"]


def test_force_put_overrides_version(drive):
    _put(drive, b"k", b"v1")
    forced = _put(drive, b"k", b"v2", force=True)
    assert forced.ok


def test_put_new_key_requires_empty_version(drive):
    response = _put(drive, b"new", b"v", db_version=b"bogus")
    assert response.status == StatusCode.VERSION_MISMATCH


def test_explicit_new_version_respected(drive):
    response = _put(drive, b"k", b"v", new_version=b"v42")
    assert response.body["new_version"] == b"v42"


def test_delete_with_version(drive):
    version = _put(drive, b"k", b"v").body["new_version"]
    bad = drive.handle(
        _request(MessageType.DELETE, {"key": b"k", "db_version": b"wrong"})
    )
    assert bad.status == StatusCode.VERSION_MISMATCH
    good = drive.handle(
        _request(MessageType.DELETE, {"key": b"k", "db_version": version})
    )
    assert good.ok
    assert _get(drive, b"k").status == StatusCode.NOT_FOUND
    assert drive.key_count == 0


def test_delete_missing_key(drive):
    response = drive.handle(
        _request(MessageType.DELETE, {"key": b"nope", "db_version": b""})
    )
    assert response.status == StatusCode.NOT_FOUND


def test_capacity_enforced():
    small = KineticDrive("tiny", capacity_bytes=10)
    assert _put(small, b"k", b"12345").ok
    response = _put(small, b"k2", b"123456789")
    assert response.status == StatusCode.NO_SPACE
    # Replacing with a smaller value frees space.
    assert _put(small, b"k", b"1", force=True).ok
    assert small.used_bytes == 1


def test_getkeyrange_ordering(drive):
    for key in (b"c", b"a", b"b", b"e", b"d"):
        _put(drive, key, b"v")
    response = drive.handle(
        _request(
            MessageType.GETKEYRANGE,
            {"start_key": b"a", "end_key": b"d", "max_returned": 10},
        )
    )
    assert response.body["keys"] == [b"a", b"b", b"c", b"d"]


def test_getkeyrange_exclusive_bounds(drive):
    for key in (b"a", b"b", b"c"):
        _put(drive, key, b"v")
    response = drive.handle(
        _request(
            MessageType.GETKEYRANGE,
            {
                "start_key": b"a",
                "end_key": b"c",
                "start_inclusive": False,
                "end_inclusive": False,
            },
        )
    )
    assert response.body["keys"] == [b"b"]


def test_getkeyrange_reverse_and_limit(drive):
    for key in (b"a", b"b", b"c", b"d"):
        _put(drive, key, b"v")
    response = drive.handle(
        _request(
            MessageType.GETKEYRANGE,
            {"start_key": b"a", "end_key": b"d", "reverse": True,
             "max_returned": 2},
        )
    )
    assert response.body["keys"] == [b"d", b"c"]


def test_getnext_getprevious(drive):
    for key in (b"a", b"c", b"e"):
        _put(drive, key, key.upper())
    nxt = drive.handle(_request(MessageType.GETNEXT, {"key": b"b"}))
    assert nxt.body["key"] == b"c"
    prev = drive.handle(_request(MessageType.GETPREVIOUS, {"key": b"c"}))
    assert prev.body["key"] == b"a"
    assert (
        drive.handle(_request(MessageType.GETNEXT, {"key": b"e"})).status
        == StatusCode.NOT_FOUND
    )
    assert (
        drive.handle(_request(MessageType.GETPREVIOUS, {"key": b"a"})).status
        == StatusCode.NOT_FOUND
    )


def test_bad_hmac_rejected(drive):
    request = _request(MessageType.GET, {"key": b"k"}, key=b"wrongkey")
    response = drive.handle(request)
    assert response.status == StatusCode.HMAC_FAILURE
    assert drive.stats.auth_failures == 1


def test_unknown_identity_rejected(drive):
    request = _request(MessageType.GET, {"key": b"k"}, identity="stranger")
    assert drive.handle(request).status == StatusCode.HMAC_FAILURE


def test_security_locks_out_old_accounts(drive):
    # Pesos bootstrap: replace all accounts with a single admin.
    new_key = b"pesos-secret-key"
    response = drive.handle(
        _request(
            MessageType.SECURITY,
            {"accounts": [["pesos", new_key, Role.all().value]]},
        )
    )
    assert response.ok
    # The factory demo identity no longer works.
    old = drive.handle(_request(MessageType.GET, {"key": b"k"}))
    assert old.status == StatusCode.HMAC_FAILURE
    # The new admin does.
    fresh = drive.handle(
        _request(MessageType.GET, {"key": b"k"}, identity="pesos", key=new_key)
    )
    assert fresh.status == StatusCode.NOT_FOUND  # authenticated, key missing
    assert drive.identities() == ["pesos"]


def test_security_refuses_empty_account_table(drive):
    response = drive.handle(_request(MessageType.SECURITY, {"accounts": []}))
    assert response.status == StatusCode.INVALID_REQUEST


def test_role_enforcement(drive):
    reader_key = b"reader-key"
    drive.handle(
        _request(
            MessageType.SECURITY,
            {
                "accounts": [
                    ["admin", KEY, Role.all().value],
                    ["reader", reader_key, Role.READ.value],
                ]
            },
            identity="demo",
        )
    )
    read = drive.handle(
        _request(MessageType.GET, {"key": b"k"}, identity="reader",
                 key=reader_key)
    )
    assert read.status == StatusCode.NOT_FOUND  # allowed, key absent
    write = drive.handle(
        _request(
            MessageType.PUT,
            {"key": b"k", "value": b"v", "db_version": b""},
            identity="reader",
            key=reader_key,
        )
    )
    assert write.status == StatusCode.NOT_AUTHORIZED


def test_setup_erase(drive):
    _put(drive, b"k", b"v")
    response = drive.handle(
        _request(MessageType.SETUP, {"erase": True, "cluster_version": 3})
    )
    assert response.ok
    assert drive.key_count == 0
    assert drive.used_bytes == 0
    assert drive.cluster_version == 3


def test_p2p_push():
    source = KineticDrive("src")
    target = KineticDrive("dst")
    source.register_peer(target)
    _put(source, b"k1", b"v1")
    _put(source, b"k2", b"v2")
    response = source.handle(
        _request(MessageType.PEER2PEERPUSH, {"peer": "dst", "keys": [b"k1", b"k2", b"missing"]})
    )
    assert response.ok
    assert response.body["pushed"] == 2
    assert _get(target, b"k1").body["value"] == b"v1"


def test_p2p_unknown_peer(drive):
    response = drive.handle(
        _request(MessageType.PEER2PEERPUSH, {"peer": "ghost", "keys": []})
    )
    assert response.status == StatusCode.INVALID_REQUEST


def test_p2p_offline_peer():
    source = KineticDrive("src")
    target = KineticDrive("dst")
    source.register_peer(target)
    target.fail()
    response = source.handle(
        _request(MessageType.PEER2PEERPUSH, {"peer": "dst", "keys": []})
    )
    assert response.status == StatusCode.INTERNAL_ERROR


def test_offline_drive_raises(drive):
    drive.fail()
    with pytest.raises(DriveOffline):
        _get(drive, b"k")
    drive.recover()
    assert _get(drive, b"k").status == StatusCode.NOT_FOUND


def test_getlog_reports_stats(drive):
    _put(drive, b"k", b"value")
    _get(drive, b"k")
    response = drive.handle(_request(MessageType.GETLOG, {}))
    assert response.body["puts"] == 1
    assert response.body["gets"] == 1
    assert response.body["key_count"] == 1
    assert response.body["used_bytes"] == 5


def test_responses_are_signed(drive):
    response = _put(drive, b"k", b"v")
    assert response.verify(KEY)
    assert not response.verify(b"other")


def test_drive_certificate_issued():
    from repro.crypto.certs import CertificateAuthority

    ca = CertificateAuthority("drive-vendor", key_bits=512)
    drive = KineticDrive("certified", identity_ca=ca)
    assert drive.certificate is not None
    ca.verify_chain(drive.certificate, now=0.0)
    assert "certified" in drive.certificate.subject
