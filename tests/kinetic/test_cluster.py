"""Drive cluster wiring and connect-all semantics."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.errors import ConfigurationError, DriveOffline
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive


def test_cluster_creates_named_drives():
    cluster = DriveCluster(num_drives=3)
    assert len(cluster) == 3
    assert [d.drive_id for d in cluster] == ["disk-0", "disk-1", "disk-2"]


def test_cluster_needs_a_drive():
    with pytest.raises(ConfigurationError):
        DriveCluster(num_drives=0)


def test_peers_wired_for_p2p():
    cluster = DriveCluster(num_drives=2)
    assert "disk-1" in cluster.drive(0)._peers
    assert "disk-0" in cluster.drive(1)._peers


def test_connect_all_returns_client_per_drive():
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all("demo", KineticDrive.DEMO_KEY)
    assert len(clients) == 2
    clients[0].put(b"k", b"v")
    assert clients[0].get(b"k")[0] == b"v"


def test_connect_all_fails_on_offline_drive():
    cluster = DriveCluster(num_drives=2)
    cluster.drive(1).fail()
    with pytest.raises(DriveOffline):
        cluster.connect_all("demo", KineticDrive.DEMO_KEY)


def test_connect_all_allow_degraded_covers_offline_drives():
    """Degraded bootstrap still opens a client per drive — the store's
    failover owns the offline ones — as long as the read quorum holds."""
    cluster = DriveCluster(num_drives=3)
    cluster.drive(1).fail()
    clients = cluster.connect_all(
        "demo", KineticDrive.DEMO_KEY, allow_degraded=True, min_online=2
    )
    assert len(clients) == 3
    with pytest.raises(DriveOffline):
        clients[1].put(b"k", b"v")
    clients[0].put(b"k", b"v")


def test_connect_all_degraded_still_needs_read_quorum():
    cluster = DriveCluster(num_drives=3)
    cluster.drive(0).fail()
    cluster.drive(1).fail()
    with pytest.raises(DriveOffline):
        cluster.connect_all(
            "demo", KineticDrive.DEMO_KEY, allow_degraded=True, min_online=2
        )


def test_connect_all_seeds_retry_jitter_per_drive():
    from repro.kinetic.retry import RetryPolicy

    cluster = DriveCluster(num_drives=2)
    policy = RetryPolicy()
    clients = cluster.connect_all(
        "demo", KineticDrive.DEMO_KEY, retry_policy=policy
    )
    assert all(c.retry_policy is policy for c in clients)
    # Per-index seeds: the two clients' jitter streams differ.
    a = clients[0]._retry_rng.random()
    b = clients[1]._retry_rng.random()
    assert a != b


def test_online_drives_filter():
    cluster = DriveCluster(num_drives=3)
    cluster.drive(0).fail()
    assert len(cluster.online_drives()) == 2


def test_certified_cluster_verifies_on_connect():
    ca = CertificateAuthority("vendor", key_bits=512)
    cluster = DriveCluster(num_drives=2, identity_ca=ca)
    clients = cluster.connect_all("demo", KineticDrive.DEMO_KEY)
    assert len(clients) == 2
    assert cluster.trust_store() is not None


def test_uncertified_cluster_has_no_trust_store():
    cluster = DriveCluster(num_drives=1)
    assert cluster.trust_store() is None
