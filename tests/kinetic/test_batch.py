"""Kinetic batch operations: atomic multi-op commits."""

import pytest

from repro.errors import KineticError, KineticVersionMismatch
from repro.kinetic.client import KineticClient
from repro.kinetic.drive import KineticDrive


@pytest.fixture()
def client():
    return KineticClient(
        KineticDrive("d0", capacity_bytes=1 << 16),
        KineticDrive.DEMO_IDENTITY,
        KineticDrive.DEMO_KEY,
    )


def test_batch_commit_applies_all(client):
    batch = client.start_batch()
    client.put(b"a", b"1", batch=batch)
    client.put(b"b", b"2", batch=batch)
    # Nothing visible before commit.
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"a")
    assert client.end_batch(batch) == 2
    assert client.get(b"a")[0] == b"1"
    assert client.get(b"b")[0] == b"2"


def test_batch_abort_discards(client):
    batch = client.start_batch()
    client.put(b"a", b"1", batch=batch)
    client.abort_batch(batch)
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"a")
    with pytest.raises(KineticError):
        client.end_batch(batch)  # already gone


def test_batch_version_conflict_aborts_everything(client):
    version = client.put(b"guarded", b"v0")
    batch = client.start_batch()
    client.put(b"other", b"new", batch=batch)
    client.put(b"guarded", b"v1", db_version=b"stale", batch=batch)
    with pytest.raises(KineticVersionMismatch):
        client.end_batch(batch)
    # Atomicity: the first op was not applied either.
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"other")
    assert client.get(b"guarded")[0] == b"v0"
    assert client.get_version(b"guarded") == version


def test_batch_correct_versions_commit(client):
    version = client.put(b"k", b"v0")
    batch = client.start_batch()
    client.put(b"k", b"v1", db_version=version, batch=batch)
    client.put(b"k2", b"x", batch=batch)
    assert client.end_batch(batch) == 2
    assert client.get(b"k")[0] == b"v1"


def test_batch_delete_and_put(client):
    version = client.put(b"old", b"v")
    batch = client.start_batch()
    client.delete(b"old", db_version=version, batch=batch)
    client.put(b"new", b"v", batch=batch)
    assert client.end_batch(batch) == 2
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"old")
    assert client.get(b"new")[0] == b"v"


def test_batch_delete_missing_aborts(client):
    client.put(b"present", b"v")
    batch = client.start_batch()
    client.put(b"present", b"v2", force=True, batch=batch)
    client.delete(b"ghost", batch=batch)
    with pytest.raises(KineticError):
        client.end_batch(batch)
    assert client.get(b"present")[0] == b"v"  # untouched


def test_batch_put_then_delete_same_key(client):
    batch = client.start_batch()
    client.put(b"temp", b"v", batch=batch)
    client.delete(b"temp", force=True, batch=batch)
    assert client.end_batch(batch) == 2
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"temp")


def test_batch_over_capacity_aborts(client):
    batch = client.start_batch()
    client.put(b"big1", b"x" * 40_000, batch=batch)
    client.put(b"big2", b"x" * 40_000, batch=batch)
    with pytest.raises(KineticError, match="NO_SPACE|full"):
        client.end_batch(batch)
    assert client.drive.key_count == 0


def test_op_with_unknown_batch_rejected(client):
    with pytest.raises(KineticError, match="no open batch"):
        client.put(b"k", b"v", batch=999)


def test_independent_batches(client):
    batch_a = client.start_batch()
    batch_b = client.start_batch()
    client.put(b"a", b"1", batch=batch_a)
    client.put(b"b", b"2", batch=batch_b)
    client.abort_batch(batch_a)
    assert client.end_batch(batch_b) == 1
    from repro.errors import KineticNotFound

    with pytest.raises(KineticNotFound):
        client.get(b"a")
    assert client.get(b"b")[0] == b"2"
