"""Wire protocol: TLV encoding, framing, HMAC, response pairing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KineticError
from repro.kinetic.protocol import (
    Message,
    MessageType,
    StatusCode,
    decode_fields,
    encode_fields,
    response_type,
)


def test_field_roundtrip_all_types():
    fields = {
        "int": 42,
        "big": 2**60,
        "bytes": b"\x00\xffdata",
        "str": "pesos",
        "list": [1, b"two", "three", [4]],
        "none": None,
        "bool": True,
    }
    decoded = decode_fields(encode_fields(fields))
    expected = dict(fields)
    expected["bool"] = 1  # bools canonicalize to ints
    assert decoded == expected


def test_field_encoding_deterministic():
    a = encode_fields({"b": 1, "a": 2})
    b = encode_fields({"a": 2, "b": 1})
    assert a == b


def test_negative_int_rejected():
    with pytest.raises(KineticError):
        encode_fields({"x": -1})


def test_unsupported_type_rejected():
    with pytest.raises(KineticError):
        encode_fields({"x": 1.5})


def test_truncated_fields_rejected():
    blob = encode_fields({"key": b"value"})
    with pytest.raises(KineticError):
        decode_fields(blob[:-3])


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(min_value=0, max_value=2**63),
            st.binary(max_size=64),
            st.text(max_size=32),
            st.none(),
            st.lists(st.integers(min_value=0, max_value=100), max_size=5),
        ),
        max_size=8,
    )
)
def test_field_roundtrip_property(fields):
    assert decode_fields(encode_fields(fields)) == fields


def _message(**kwargs):
    defaults = dict(
        message_type=MessageType.PUT,
        identity="pesos",
        sequence=7,
        body={"key": b"k1", "value": b"v1"},
    )
    defaults.update(kwargs)
    return Message(**defaults)


def test_message_wire_roundtrip():
    message = _message().sign(b"secret")
    decoded = Message.decode(message.encode())
    assert decoded.message_type == MessageType.PUT
    assert decoded.identity == "pesos"
    assert decoded.sequence == 7
    assert decoded.body == {"key": b"k1", "value": b"v1"}
    assert decoded.verify(b"secret")


def test_hmac_fails_with_wrong_key():
    message = _message().sign(b"secret")
    assert not message.verify(b"wrong")


def test_hmac_fails_after_body_tamper():
    message = _message().sign(b"secret")
    message.body["value"] = b"evil"
    assert not message.verify(b"secret")


def test_hmac_covers_sequence():
    message = _message().sign(b"secret")
    message.sequence = 99
    assert not message.verify(b"secret")


def test_bad_magic_rejected():
    message = _message().sign(b"k")
    with pytest.raises(KineticError):
        Message.decode(b"X" + message.encode()[1:])


def test_truncated_frame_rejected():
    wire = _message().sign(b"k").encode()
    with pytest.raises(KineticError):
        Message.decode(wire[: len(wire) // 2])


def test_response_pairing():
    request = _message()
    response = request.make_response(StatusCode.SUCCESS, body={"ok": 1})
    assert response.message_type == MessageType.PUT_RESPONSE
    assert response.sequence == request.sequence
    assert response.ok


def test_response_of_response_rejected():
    with pytest.raises(KineticError):
        response_type(MessageType.PUT_RESPONSE)


def test_every_request_type_has_response():
    for message_type in (
        MessageType.GET,
        MessageType.PUT,
        MessageType.DELETE,
        MessageType.GETKEYRANGE,
        MessageType.SECURITY,
        MessageType.SETUP,
        MessageType.PEER2PEERPUSH,
        MessageType.GETLOG,
        MessageType.NOOP,
    ):
        assert response_type(message_type).name == message_type.name + "_RESPONSE"


def test_error_response_not_ok():
    response = _message().make_response(
        StatusCode.NOT_FOUND, status_message="missing"
    )
    assert not response.ok
    assert response.status_message == "missing"


def test_wire_size_positive():
    assert _message().sign(b"k").wire_size() > 0
