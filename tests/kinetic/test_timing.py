"""Timing models: relative magnitudes the evaluation depends on."""

import random

from repro.kinetic.timing import (
    OP_RANGE,
    OP_READ,
    OP_WRITE,
    DriveTiming,
    HddTiming,
    SimulatorTiming,
)


def _mean(timing, op, nbytes, samples=2000, seed=11):
    rng = random.Random(seed)
    return sum(
        timing.service_time(op, nbytes, rng) for _ in range(samples)
    ) / samples


def test_fixed_timing_is_constant():
    timing = DriveTiming(fixed_seconds=0.5)
    rng = random.Random(1)
    assert timing.service_time(OP_READ, 1024, rng) == 0.5


def test_simulator_orders_of_magnitude_faster_than_hdd():
    sim = _mean(SimulatorTiming(), OP_READ, 1024)
    hdd = _mean(HddTiming(), OP_READ, 1024)
    assert hdd > 20 * sim


def test_simulator_mean_in_tens_of_microseconds():
    mean = _mean(SimulatorTiming(), OP_WRITE, 1024)
    assert 10e-6 < mean < 100e-6


def test_hdd_supports_roughly_800_iops_at_1kb():
    # A Pesos client op issues ~2 drive ops (value + metadata), so the
    # per-drive-op rate sits near 2x the paper's 823 client-ops/s.
    mean = _mean(HddTiming(), OP_WRITE, 1024)
    rate = 1.0 / mean
    assert 1200 < rate < 2200


def test_larger_payloads_cost_more():
    sim = SimulatorTiming(jitter=0.0)
    rng = random.Random(0)
    small = sim.service_time(OP_READ, 128, rng)
    large = sim.service_time(OP_READ, 64 * 1024, rng)
    assert large > small


def test_range_scan_costs_more_than_point_read():
    sim = SimulatorTiming(jitter=0.0)
    rng = random.Random(0)
    assert sim.service_time(OP_RANGE, 1024, rng) > sim.service_time(
        OP_READ, 1024, rng
    )
    hdd = HddTiming(jitter=0.0, read_miss_rate=0.0)
    assert hdd.service_time(OP_RANGE, 1024, rng) > hdd.service_time(
        OP_READ, 1024, rng
    )


def test_hdd_seeks_create_latency_tail():
    hdd = HddTiming(jitter=0.0, read_miss_rate=0.5)
    rng = random.Random(3)
    samples = [hdd.service_time(OP_READ, 1024, rng) for _ in range(500)]
    assert max(samples) > 5 * min(samples)


def test_timing_deterministic_given_seed():
    hdd = HddTiming()
    a = [hdd.service_time(OP_WRITE, 1024, random.Random(42)) for _ in range(5)]
    b = [hdd.service_time(OP_WRITE, 1024, random.Random(42)) for _ in range(5)]
    assert a == b


def test_concurrency_defaults():
    assert HddTiming().concurrency == 1
    assert SimulatorTiming().concurrency >= 1
