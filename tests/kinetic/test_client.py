"""Client library: sync API, errors, async pipeline, certificates."""

import pytest

from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.errors import (
    CertificateError,
    KineticAuthError,
    KineticError,
    KineticNotFound,
    KineticVersionMismatch,
)
from repro.kinetic.client import KineticClient
from repro.kinetic.drive import KineticDrive, Role
from repro.kinetic.protocol import MessageType, StatusCode


@pytest.fixture()
def drive():
    return KineticDrive("disk-0")


@pytest.fixture()
def client(drive):
    return KineticClient(drive, identity="demo", hmac_key=KineticDrive.DEMO_KEY)


def test_put_get_roundtrip(client):
    version = client.put(b"k", b"value")
    value, db_version = client.get(b"k")
    assert value == b"value"
    assert db_version == version


def test_get_missing_raises(client):
    with pytest.raises(KineticNotFound):
        client.get(b"missing")


def test_version_conflict_raises(client):
    version = client.put(b"k", b"v1")
    client.put(b"k", b"v2", db_version=version)
    with pytest.raises(KineticVersionMismatch):
        client.put(b"k", b"v3", db_version=version)


def test_get_version(client):
    version = client.put(b"k", b"v")
    assert client.get_version(b"k") == version


def test_delete(client):
    version = client.put(b"k", b"v")
    client.delete(b"k", db_version=version)
    with pytest.raises(KineticNotFound):
        client.get(b"k")


def test_force_delete(client):
    client.put(b"k", b"v")
    client.delete(b"k", force=True)


def test_key_range(client):
    for key in (b"b", b"a", b"c"):
        client.put(key, b"v")
    assert client.get_key_range(b"a", b"c") == [b"a", b"b", b"c"]


def test_get_next_previous(client):
    for key in (b"a", b"c"):
        client.put(key, key)
    key, value, _ = client.get_next(b"a")
    assert (key, value) == (b"c", b"c")
    key, value, _ = client.get_previous(b"c")
    assert (key, value) == (b"a", b"a")


def test_wrong_key_raises_auth_error(drive):
    bad_client = KineticClient(drive, identity="demo", hmac_key=b"wrong")
    with pytest.raises(KineticAuthError):
        bad_client.get(b"k")


def test_set_security_then_old_identity_locked_out(drive, client):
    client.set_security([("pesos", b"new-admin-key", Role.all())])
    with pytest.raises(KineticAuthError):
        client.noop()  # demo identity is gone
    admin = KineticClient(drive, identity="pesos", hmac_key=b"new-admin-key")
    admin.noop()


def test_setup_and_getlog(client):
    client.put(b"k", b"v")
    client.setup(cluster_version=5, erase=True)
    log = client.get_log()
    assert log["key_count"] == 0
    assert client.drive.cluster_version == 5


def test_p2p_push(drive):
    peer = KineticDrive("disk-1")
    drive.register_peer(peer)
    client = KineticClient(drive, "demo", KineticDrive.DEMO_KEY)
    client.put(b"k", b"v")
    assert client.p2p_push("disk-1", [b"k"]) == 1
    peer_client = KineticClient(peer, "demo", KineticDrive.DEMO_KEY)
    assert peer_client.get(b"k")[0] == b"v"


def test_flush_and_noop(client):
    client.flush()
    client.noop()


def test_certificate_verified_on_connect():
    ca = CertificateAuthority("vendor", key_bits=512)
    drive = KineticDrive("d", identity_ca=ca)
    trust = TrustStore()
    trust.add(ca)
    KineticClient(drive, "demo", KineticDrive.DEMO_KEY, trust_store=trust)


def test_replaced_drive_detected():
    ca = CertificateAuthority("vendor", key_bits=512)
    rogue_ca = CertificateAuthority("attacker", key_bits=512)
    replaced = KineticDrive("d", identity_ca=rogue_ca)
    trust = TrustStore()
    trust.add(ca)
    with pytest.raises(CertificateError):
        KineticClient(replaced, "demo", KineticDrive.DEMO_KEY, trust_store=trust)


def test_uncertified_drive_rejected_when_trust_required(drive):
    trust = TrustStore()
    trust.add(CertificateAuthority("vendor", key_bits=512))
    with pytest.raises(CertificateError):
        KineticClient(drive, "demo", KineticDrive.DEMO_KEY, trust_store=trust)


def test_async_pipeline_completion_order(client):
    results = []
    client.submit(
        MessageType.PUT,
        {"key": b"k1", "value": b"v1", "db_version": b""},
        callback=lambda r: results.append(("put", r.status)),
    )
    client.submit(
        MessageType.GET,
        {"key": b"k1"},
        callback=lambda r: results.append(("get", r.status)),
    )
    assert client.pending_count == 2
    assert client.drain() == 2
    assert results == [
        ("put", StatusCode.SUCCESS),
        ("get", StatusCode.SUCCESS),
    ]
    assert client.pending_count == 0


def test_async_pipeline_window_bound(drive):
    client = KineticClient(drive, "demo", KineticDrive.DEMO_KEY, max_pending=2)
    client.submit(MessageType.NOOP, {})
    client.submit(MessageType.NOOP, {})
    with pytest.raises(KineticError, match="window full"):
        client.submit(MessageType.NOOP, {})


def test_async_pipeline_partial_drain(client):
    for _ in range(3):
        client.submit(MessageType.NOOP, {})
    assert client.drain(max_responses=2) == 2
    assert client.pending_count == 1


def test_async_failure_recorded_not_raised(client):
    pending = client.submit(MessageType.GET, {"key": b"missing"})
    client.drain()
    assert pending.done
    assert pending.response.status == StatusCode.NOT_FOUND


def test_wire_accounting(client):
    client.put(b"k", b"v")
    assert client.requests_sent == 1
    assert client.bytes_on_wire > 0
