"""EvalContext helpers: content tuples, version views, claims."""

import pytest

from repro.errors import PolicyError
from repro.policy.ast import (
    HashValue,
    IntValue,
    PubKeyValue,
    StrValue,
    TupleValue,
)
from repro.policy.context import (
    EvalContext,
    ObjectView,
    VersionInfo,
    claim_to_tuple,
    content_hash,
    parse_content_tuples,
)


def test_parse_single_tuple():
    tuples = parse_content_tuples(b"'read'('obj1', 3, k'fp')")
    assert tuples == [
        TupleValue(
            "read", (StrValue("obj1"), IntValue(3), PubKeyValue("fp"))
        )
    ]


def test_parse_multiple_lines():
    content = b"'a'(1)\n'b'(2)\n"
    tuples = parse_content_tuples(content)
    assert [t.name for t in tuples] == ["a", "b"]


def test_parse_ignores_non_tuple_lines():
    content = b"just some payload\n'entry'(1)\n{binary-ish}"
    tuples = parse_content_tuples(content)
    assert len(tuples) == 1


def test_parse_binary_content_says_nothing():
    assert parse_content_tuples(bytes([0xFF, 0xFE, 0x00])) == []


def test_parse_nested_tuples():
    tuples = parse_content_tuples(b"'outer'(inner(1), h'ab')")
    assert tuples[0].args[0] == TupleValue("inner", (IntValue(1),))
    assert tuples[0].args[1] == HashValue("ab")


def test_parse_bare_name_tuple():
    assert parse_content_tuples(b"write(1)")[0].name == "write"


def test_render_roundtrip():
    original = TupleValue(
        "write",
        (StrValue("o"), IntValue(3), HashValue("aa"), PubKeyValue("bb")),
    )
    line = original.render()
    assert parse_content_tuples(line.encode()) == [original]


def test_version_info_from_content():
    info = VersionInfo.from_content(b"'fact'(42)", policy_hash="ph")
    assert info.size == len(b"'fact'(42)")
    assert info.content_hash == content_hash(b"'fact'(42)")
    assert info.policy_hash == "ph"
    assert info.tuples[0].name == "fact"


def test_object_view_lookup():
    view = ObjectView(
        object_id="obj",
        current_version=2,
        versions={2: VersionInfo.from_content(b"v2")},
    )
    assert view.info(2).size == 2
    assert view.info(1) is None


def test_context_resolve_refs():
    ctx = EvalContext(operation="read", session_key="k", this_id="a", log_id="b")
    assert ctx.resolve_ref("this") == "a"
    assert ctx.resolve_ref("log") == "b"
    with pytest.raises(PolicyError):
        ctx.resolve_ref("other")


def test_context_pending_version_visible():
    view = ObjectView(object_id="obj", current_version=3, versions={})
    pending = VersionInfo.from_content(b"incoming")
    ctx = EvalContext(
        operation="update",
        session_key="k",
        this_id="obj",
        objects={"obj": view},
        pending=pending,
    )
    assert ctx.version_info("obj", 4) is pending
    assert ctx.version_info("obj", 3) is None  # not recorded in view


def test_claim_conversion():
    tup = claim_to_tuple("time", (1518652800,))
    assert tup == TupleValue("time", (IntValue(1518652800),))
    tup = claim_to_tuple("ts", ("k:fingerprint",))
    assert tup.args[0] == PubKeyValue("fingerprint")
    tup = claim_to_tuple("digest", ("h:abcd",))
    assert tup.args[0] == HashValue("abcd")
    tup = claim_to_tuple("group", ("staff",))
    assert tup.args[0] == StrValue("staff")
    tup = claim_to_tuple("nested", (["inner", 1],))
    assert tup.args[0] == TupleValue("inner", (IntValue(1),))


def test_claim_conversion_rejects_unknown():
    with pytest.raises(PolicyError):
        claim_to_tuple("bad", (object(),))
