"""Binary format: compile, serialize, round-trip, hashing."""

import pytest

from repro.errors import PolicyCompileError, PolicyFormatError
from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_policy

ACCESS_POLICY = """
    read   :- sessionKeyIs(k'alice') \\/ sessionKeyIs(k'bob')
    update :- sessionKeyIs(k'alice')
    delete :- sessionKeyIs(k'admin')
"""

VERSION_POLICY = r"""
    update :- objId(this, O) /\ currVersion(O, cV) /\ nextVersion(cV + 1)
           \/ objId(this, NULL) /\ nextVersion(0)
"""


def test_compile_produces_all_permissions():
    policy = compile_policy(ACCESS_POLICY)
    assert policy.operations() == ["delete", "read", "update"]


def test_constant_pool_deduplicates():
    policy = compile_policy(ACCESS_POLICY)
    # alice appears twice but is pooled once; bob + admin = 3 constants.
    assert len(policy.constants) == 3


def test_variable_slots_in_first_use_order():
    policy = compile_policy(VERSION_POLICY)
    assert policy.variables == ["O", "cV"]


def test_serialization_roundtrip():
    policy = compile_policy(VERSION_POLICY)
    blob = policy.to_bytes()
    restored = CompiledPolicy.from_bytes(blob)
    assert restored.constants == policy.constants
    assert restored.variables == policy.variables
    assert restored.policy_hash() == policy.policy_hash()
    assert len(restored.permissions["update"]) == 2


def test_policy_hash_stable_and_content_addressed():
    a = compile_policy(ACCESS_POLICY)
    b = compile_policy(ACCESS_POLICY)
    c = compile_policy(VERSION_POLICY)
    assert a.policy_hash() == b.policy_hash()
    assert a.policy_hash() != c.policy_hash()


def test_hash_ignores_source_text_formatting():
    spaced = compile_policy("read :- sessionKeyIs(k'x')")
    compact = compile_policy("read:-sessionKeyIs(k'x')")
    assert spaced.policy_hash() == compact.policy_hash()


def test_size_bytes_is_compact():
    policy = compile_policy(ACCESS_POLICY)
    # Binary form should be within a few hundred bytes for a small policy.
    assert 0 < policy.size_bytes() < 600


def test_corrupt_blob_rejected():
    blob = compile_policy(ACCESS_POLICY).to_bytes()
    with pytest.raises(PolicyFormatError):
        CompiledPolicy.from_bytes(blob[: len(blob) // 2])


def test_wrong_version_rejected():
    from repro.kinetic.protocol import decode_fields, encode_fields

    blob = compile_policy(ACCESS_POLICY).to_bytes()
    fields = decode_fields(blob)
    fields["version"] = 99
    with pytest.raises(PolicyFormatError, match="version"):
        CompiledPolicy.from_bytes(encode_fields(fields))


def test_unknown_predicate_rejected():
    with pytest.raises(PolicyCompileError, match="unknown predicate"):
        compile_policy("read :- fliesLikeABird(X)")


def test_arity_mismatch_rejected():
    with pytest.raises(PolicyCompileError, match="argument"):
        compile_policy("read :- sessionKeyIs(A, B)")


def test_arity_range_accepted():
    # certificateSays accepts 2 or 3 arguments.
    compile_policy("read :- certificateSays(k'ca', 'time'(T))")
    compile_policy("read :- certificateSays(k'ca', 60, 'time'(T))")
    with pytest.raises(PolicyCompileError):
        compile_policy("read :- certificateSays(k'ca', 60, 'time'(T), X)")


def test_all_table1_predicates_compile():
    source = r"""
    read :- eq(A, 1) /\ le(A, 2) /\ lt(A, 3) /\ ge(A, 1) /\ gt(A, 0)
        /\ certificateSays(k'ca', 'fact'(F))
        /\ sessionKeyIs(K)
        /\ objId(this, O)
        /\ currVersion(O, V)
        /\ nextVersion(NV)
        /\ objSize(O, V, S)
        /\ objPolicy(O, V, PH)
        /\ objHash(O, V, H)
        /\ objSays(O, V, 'entry'(E))
    """
    policy = compile_policy(source)
    assert len(policy.permissions["read"][0]) == 14
