"""Property-based tests over the policy engine as a whole."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext
from repro.policy.interpreter import PolicyInterpreter

INTERP = PolicyInterpreter()

_fingerprints = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12
)


def _acl_source(readers, writers):
    def clause(fps):
        return " \\/ ".join(f"sessionKeyIs(k'{fp}')" for fp in fps)

    lines = []
    if readers:
        lines.append(f"read :- {clause(readers)}")
    if writers:
        lines.append(f"update :- {clause(writers)}")
    return "\n".join(lines) or "read :- eq(1, 0)"


@settings(max_examples=60, deadline=None)
@given(
    readers=st.lists(_fingerprints, max_size=5, unique=True),
    writers=st.lists(_fingerprints, max_size=5, unique=True),
    probe=_fingerprints,
)
def test_acl_grants_exactly_listed_clients(readers, writers, probe):
    """For any ACL policy, access <=> membership in the list."""
    policy = compile_policy(_acl_source(readers, writers))
    ctx = EvalContext(operation="read", session_key=probe)
    assert INTERP.evaluate(policy, "read", ctx).granted == (probe in readers)
    assert INTERP.evaluate(policy, "update", ctx).granted == (probe in writers)
    # Nothing ever grants delete (deny-by-default).
    assert not INTERP.evaluate(policy, "delete", ctx).granted


@settings(max_examples=60, deadline=None)
@given(
    readers=st.lists(_fingerprints, min_size=1, max_size=5, unique=True),
    writers=st.lists(_fingerprints, max_size=5, unique=True),
)
def test_serialization_preserves_decisions(readers, writers):
    """Compile -> serialize -> reload yields identical decisions."""
    policy = compile_policy(_acl_source(readers, writers))
    reloaded = CompiledPolicy.from_bytes(policy.to_bytes())
    for probe in readers + writers + ["outsider"]:
        for operation in ("read", "update", "delete"):
            ctx = EvalContext(operation=operation, session_key=probe)
            original = INTERP.evaluate(policy, operation, ctx).granted
            restored = INTERP.evaluate(reloaded, operation, ctx).granted
            assert original == restored


@settings(max_examples=40, deadline=None)
@given(
    current=st.integers(min_value=0, max_value=1_000),
    offered=st.integers(min_value=0, max_value=1_002),
)
def test_version_policy_accepts_only_successor(current, offered):
    """The §5.3 rule grants exactly version current+1 on an existing
    object (creation handled by the NULL clause)."""
    from repro.policy.context import ObjectView, VersionInfo

    policy = compile_policy(
        r"update :- objId(this, O) /\ currVersion(O, cV)"
        r" /\ nextVersion(cV + 1)"
        r" \/ objId(this, NULL) /\ nextVersion(0)"
    )
    view = ObjectView(
        object_id="obj",
        current_version=current,
        versions={current: VersionInfo.from_content(b"x")},
    )
    ctx = EvalContext(
        operation="update",
        session_key="anyone",
        this_id="obj",
        objects={"obj": view},
        request_version=offered,
    )
    decision = INTERP.evaluate(policy, "update", ctx)
    assert decision.granted == (offered == current + 1)


@settings(max_examples=40, deadline=None)
@given(offered=st.integers(min_value=0, max_value=5))
def test_version_policy_creation_only_at_zero(offered):
    policy = compile_policy(
        r"update :- objId(this, O) /\ currVersion(O, cV)"
        r" /\ nextVersion(cV + 1)"
        r" \/ objId(this, NULL) /\ nextVersion(0)"
    )
    ctx = EvalContext(
        operation="update",
        session_key="anyone",
        this_id=None,
        request_version=offered,
    )
    assert INTERP.evaluate(policy, "update", ctx).granted == (offered == 0)


@settings(max_examples=40, deadline=None)
@given(
    hashes=st.lists(
        st.text(alphabet="0123456789abcdef", min_size=4, max_size=8),
        min_size=1,
        max_size=4,
        unique=True,
    )
)
def test_policy_hash_injective_over_distinct_sources(hashes):
    """Distinct constants give distinct policy identities."""
    policies = [
        compile_policy(f"read :- objHash(this, 1, h'{digest}')")
        for digest in hashes
    ]
    ids = {policy.policy_hash() for policy in policies}
    assert len(ids) == len(hashes)
