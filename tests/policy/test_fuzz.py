"""Fuzzing the policy front-end: garbage must fail cleanly.

The policy compiler is attacker-facing (clients submit policy source
over the wire), so arbitrary input must produce a policy error — never
a crash, hang, or foreign exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.kinetic.protocol import decode_fields
from repro.errors import KineticError
from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_policy
from repro.policy.context import parse_content_tuples
from repro.policy.lexer import tokenize


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=200))
def test_lexer_never_crashes(source):
    try:
        tokenize(source)
    except PolicyError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=200))
def test_compiler_never_crashes(source):
    try:
        compile_policy(source)
    except PolicyError:
        pass


@settings(max_examples=200, deadline=None)
@given(
    st.text(
        alphabet="readupte:-()/\\',kh0123456789ABCxyz \n",
        max_size=120,
    )
)
def test_compiler_policy_shaped_garbage(source):
    """Near-miss inputs built from the grammar's own alphabet."""
    try:
        compile_policy(source)
    except PolicyError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=400))
def test_binary_loader_never_crashes(blob):
    """Corrupt compiled-policy blobs fetched from untrusted disks."""
    try:
        CompiledPolicy.from_bytes(blob)
    except PolicyError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=300))
def test_content_tuple_parser_never_crashes(content):
    """objSays parses arbitrary object bytes; they may say nothing."""
    tuples = parse_content_tuples(content)
    assert isinstance(tuples, list)


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=300))
def test_wire_decoder_never_crashes(blob):
    """Kinetic field decoding of attacker-controlled bytes.

    Truncated varints surface as VarintError and framing issues as
    KineticError — both PesosError, never a foreign exception.
    """
    from repro.errors import PesosError

    try:
        decode_fields(blob)
    except PesosError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=300))
def test_frame_decoder_never_crashes(blob):
    """Full Kinetic frames from an untrusted network peer."""
    from repro.errors import PesosError
    from repro.kinetic.protocol import Message

    try:
        Message.decode(blob)
    except PesosError:
        pass
