"""Property-based tests: compiled fast path vs the interpreter.

Two families, per the fast-path contract:

* equivalence — for any policy the grammar can express and any
  context, the closures produce a Decision identical field-by-field
  to :class:`PolicyInterpreter`'s (the differential harness supplies
  the corpus-shaped random contexts);
* cache soundness — a ``put_policy`` (invalidate + epoch advance) or
  a bare epoch advance must never let the engine serve a stale grant
  or denial.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.compiled import PolicyEngine, compile_closures
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext
from repro.policy.difftest import assert_identical, run_differential
from repro.policy.interpreter import PolicyInterpreter

INTERP = PolicyInterpreter()

_fingerprints = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10
)
# The grammar has no negative integer literals.
_small_ints = st.integers(min_value=0, max_value=6)


def _acl_source(readers) -> str:
    if not readers:
        return "read :- eq(1, 0)"
    clause = " \\/ ".join(f"sessionKeyIs(k'{fp}')" for fp in readers)
    return f"read :- {clause}"


def _mixed_source(readers, a: int, b: int) -> str:
    """ACL disjuncts plus constant-foldable relational/arith clauses."""
    clauses = [f"sessionKeyIs(k'{fp}')" for fp in readers]
    clauses.append(f"eq({a}, {b}) /\\ sessionKeyIs(K)")
    clauses.append(
        f"ge({a} + 1, {b}) /\\ eq(X, {a}) /\\ lt(X, {b} + 2) "
        f"/\\ sessionKeyIs(K)"
    )
    return "read :- " + " \\/ ".join(clauses)


@settings(max_examples=60, deadline=None)
@given(
    readers=st.lists(_fingerprints, max_size=4, unique=True),
    a=_small_ints,
    b=_small_ints,
    probe=_fingerprints,
)
def test_closures_equal_interpreter_on_generated_policies(
    readers, a, b, probe
):
    policy = compile_policy(_mixed_source(readers, a, b))
    fast = compile_closures(policy)
    for session_key in readers + [probe]:
        ctx = EvalContext(operation="read", session_key=session_key)
        assert_identical(
            INTERP.evaluate(policy, "read", ctx),
            fast.evaluate("read", ctx),
            label=f"generated probe={session_key}",
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_corpus_differential_holds_for_any_seed(seed):
    report = run_differential(seed=seed, per_operation=2)
    assert report.trace_sha_interpreter == report.trace_sha_compiled


@settings(max_examples=40, deadline=None)
@given(
    first=st.lists(_fingerprints, max_size=3, unique=True),
    second=st.lists(_fingerprints, max_size=3, unique=True),
    probes=st.lists(_fingerprints, min_size=1, max_size=6),
)
def test_put_policy_never_serves_stale_decisions(first, second, probes):
    """Replace the active policy the way the controller does on
    put_policy (invalidate + epoch advance): every later decision must
    reflect the new policy, cached history notwithstanding."""
    engine = PolicyEngine()
    active = compile_policy(_acl_source(first))
    for probe in probes:
        ctx = EvalContext(operation="read", session_key=probe)
        granted = engine.evaluate(active, "read", ctx).granted
        assert granted == (probe in first)
    engine.invalidate_policy(active.policy_hash())
    engine.advance_epoch()
    active = compile_policy(_acl_source(second))
    for probe in probes:
        ctx = EvalContext(operation="read", session_key=probe)
        granted = engine.evaluate(active, "read", ctx).granted
        assert granted == (probe in second)


@settings(max_examples=30, deadline=None)
@given(
    readers=st.lists(_fingerprints, min_size=1, max_size=3, unique=True),
    advances=st.integers(min_value=1, max_value=3),
)
def test_epoch_advance_forces_re_evaluation(readers, advances):
    """After any number of epoch advances nothing cached before is
    reachable — the next evaluation is a genuine miss, so a decision
    that depended on mutated world state cannot be replayed."""
    engine = PolicyEngine()
    policy = compile_policy(_acl_source(readers))
    ctx = EvalContext(operation="read", session_key=readers[0])
    assert engine.evaluate(policy, "read", ctx).granted
    hits_before = engine.decisions.stats.hits
    for _ in range(advances):
        engine.advance_epoch()
    assert len(engine.decisions) == 0
    assert engine.evaluate(policy, "read", ctx).granted
    assert engine.decisions.stats.hits == hits_before
    assert engine.decisions.stats.misses >= 2
