"""Tokenizer behaviour: every token kind, comments, errors."""

import pytest

from repro.errors import PolicySyntaxError
from repro.policy.lexer import TokenType, tokenize


def _types(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def test_basic_permission_tokens():
    assert _types("read :- sessionKeyIs(K)") == [
        TokenType.IDENT,
        TokenType.GRANT,
        TokenType.IDENT,
        TokenType.LPAREN,
        TokenType.IDENT,
        TokenType.RPAREN,
    ]


def test_connectives_ascii():
    assert _types(r"a(X) /\ b(Y) \/ c(Z)") == [
        TokenType.IDENT, TokenType.LPAREN, TokenType.IDENT, TokenType.RPAREN,
        TokenType.AND,
        TokenType.IDENT, TokenType.LPAREN, TokenType.IDENT, TokenType.RPAREN,
        TokenType.OR,
        TokenType.IDENT, TokenType.LPAREN, TokenType.IDENT, TokenType.RPAREN,
    ]


def test_connectives_unicode():
    assert TokenType.AND in _types("a(X) ∧ b(Y)")
    assert TokenType.OR in _types("a(X) ∨ b(Y)")


def test_connectives_keywords():
    types = _types("a(X) and b(Y) or c(Z)")
    assert types.count(TokenType.AND) == 1
    assert types.count(TokenType.OR) == 1


def test_string_literals():
    tokens = tokenize("'read' \"write\"")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].text == "read"
    assert tokens[1].text == "write"


def test_hash_and_pubkey_literals():
    tokens = tokenize("h'deadbeef' k'cafe01'")
    assert tokens[0].type is TokenType.HASH
    assert tokens[0].text == "deadbeef"
    assert tokens[1].type is TokenType.PUBKEY
    assert tokens[1].text == "cafe01"


def test_h_identifier_not_confused_with_hash():
    tokens = tokenize("hash(h)")
    assert tokens[0].type is TokenType.IDENT
    assert tokens[0].text == "hash"
    assert tokens[2].text == "h"


def test_integers_and_arithmetic():
    types = _types("nextVersion(cV + 1)")
    assert TokenType.PLUS in types
    assert TokenType.INT in types


def test_minus_token():
    assert TokenType.MINUS in _types("f(a - 1)")


def test_comments_ignored():
    tokens = tokenize("# full line\nread :- a(X) // trailing\n")
    assert tokens[0].text == "read"
    assert all(t.type is not TokenType.IDENT or t.text in ("read", "a", "X")
               for t in tokens)


def test_line_column_tracking():
    tokens = tokenize("read :-\n  a(X)")
    a_token = [t for t in tokens if t.text == "a"][0]
    assert a_token.line == 2
    assert a_token.column == 3


def test_unterminated_string():
    with pytest.raises(PolicySyntaxError):
        tokenize("read :- eq('oops")


def test_unterminated_hash_literal():
    with pytest.raises(PolicySyntaxError):
        tokenize("h'abc")


def test_unexpected_character():
    with pytest.raises(PolicySyntaxError) as excinfo:
        tokenize("read :- a(X) @ b(Y)")
    assert excinfo.value.line == 1


def test_multiline_string_rejected():
    with pytest.raises(PolicySyntaxError):
        tokenize("'line1\nline2'")


def test_empty_source_just_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF
