"""The compiled fast path: closures, folding, batching, decision cache."""

import pytest

from repro.policy.compiled import (
    DecisionCache,
    PolicyEngine,
    compile_closures,
    compiled_form,
)
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext
from repro.policy.difftest import (
    corpus_contexts,
    load_corpus,
    run_differential,
)
from repro.policy.interpreter import Decision, PolicyInterpreter

INTERP = PolicyInterpreter()

ALICE = "a1" * 32
BOB = "b2" * 32


# ---------------------------------------------------------------------------
# Differential: corpus + seeded contexts, interpreter vs closures
# ---------------------------------------------------------------------------

def test_differential_corpus_replay():
    report = run_differential(seed=3, per_operation=12)
    assert report.cases > 0
    assert report.grants > 0 and report.denials > 0
    assert report.trace_sha_interpreter == report.trace_sha_compiled


def test_differential_is_deterministic_in_the_seed():
    first = run_differential(seed=7, per_operation=6)
    second = run_differential(seed=7, per_operation=6)
    assert first.trace_sha_interpreter == second.trace_sha_interpreter
    assert first.compiled_calls == second.compiled_calls


# ---------------------------------------------------------------------------
# Partial evaluation: folding, stripping, duplicate memoization
# ---------------------------------------------------------------------------

def test_constant_true_conjuncts_fold():
    policy = compile_policy(
        f"read :- eq(1, 1) /\\ ge(3, 2) /\\ sessionKeyIs(k'{ALICE}')"
    )
    fast = compile_closures(policy)
    assert fast.delegate is None
    assert fast.folded_conjuncts >= 2
    for probe, expected in ((ALICE, True), (BOB, False)):
        ctx = EvalContext(operation="read", session_key=probe)
        interpreted = INTERP.evaluate(policy, "read", ctx)
        compiled = fast.evaluate("read", ctx)
        assert compiled.granted is expected
        assert compiled.granted == interpreted.granted
        # Folding must not change the audit trail: the constant
        # conjuncts still count as evaluated predicates.
        assert (
            compiled.predicates_evaluated
            == interpreted.predicates_evaluated
        )
        assert compiled.clause_path == interpreted.clause_path


def test_constant_false_clause_strips_its_tail():
    policy = compile_policy(
        f"read :- eq(1, 2) /\\ sessionKeyIs(K) \\/ sessionKeyIs(k'{ALICE}')"
    )
    fast = compile_closures(policy)
    assert fast.stripped_clauses >= 1
    for probe in (ALICE, BOB):
        ctx = EvalContext(operation="read", session_key=probe)
        interpreted = INTERP.evaluate(policy, "read", ctx)
        compiled = fast.evaluate("read", ctx)
        assert compiled.granted == interpreted.granted
        assert (
            compiled.predicates_evaluated
            == interpreted.predicates_evaluated
        )


def test_duplicate_clauses_replay_the_first_outcome():
    source = (
        f"read :- sessionKeyIs(k'{ALICE}') \\/ sessionKeyIs(k'{ALICE}')"
    )
    policy = compile_policy(source)
    fast = compile_closures(policy)
    assert fast.memoized_duplicates >= 1
    ctx = EvalContext(operation="read", session_key=BOB)
    interpreted = INTERP.evaluate(policy, "read", ctx)
    compiled = fast.evaluate("read", ctx)
    # Denial walks both (identical) disjuncts; the replayed clause
    # must contribute the same predicate count the interpreter saw.
    assert interpreted.predicates_evaluated == 2
    assert compiled.predicates_evaluated == 2
    assert not compiled.granted


# ---------------------------------------------------------------------------
# Batched evaluation
# ---------------------------------------------------------------------------

def test_evaluate_batch_matches_per_context_evaluation():
    for name, policy in load_corpus():
        fast = compile_closures(policy)
        cases = corpus_contexts(policy, seed=11, per_operation=5)
        by_operation = {}
        for operation, ctx in cases:
            by_operation.setdefault(operation, []).append(ctx)
        for operation, contexts in by_operation.items():
            batch = fast.evaluate_batch(operation, contexts)
            assert len(batch) == len(contexts)
            for position, ctx in enumerate(contexts):
                single = INTERP.evaluate(policy, operation, ctx)
                assert batch[position].granted == single.granted, name
                assert (
                    batch[position].clause_path == single.clause_path
                ), name


# ---------------------------------------------------------------------------
# DecisionCache
# ---------------------------------------------------------------------------

def _decision(granted: bool = True) -> Decision:
    return Decision(granted=granted, operation="read", matched_clause=0)


def test_cache_round_trip_and_copy_isolation():
    cache = DecisionCache(max_entries=8)
    cache.put("p1", "read", "shape", epoch=0, decision=_decision())
    out = cache.get("p1", "read", "shape", now=1.0)
    assert out is not None and out.granted
    # Mutating the returned Decision must not poison the cache.
    out.granted = False
    again = cache.get("p1", "read", "shape", now=1.0)
    assert again.granted
    assert cache.stats.hits == 2 and cache.stats.misses == 0


def test_epoch_advance_makes_old_entries_unreachable():
    cache = DecisionCache()
    cache.put("p1", "read", "shape", epoch=0, decision=_decision())
    cache.advance_epoch()
    assert cache.get("p1", "read", "shape", now=0.0) is None
    assert len(cache) == 0
    assert cache.stats.epoch_advances == 1


def test_put_refuses_stale_epoch_writes():
    cache = DecisionCache()
    epoch_before = cache.epoch
    cache.advance_epoch()
    cache.put(
        "p1", "read", "shape", epoch=epoch_before, decision=_decision()
    )
    assert len(cache) == 0
    assert cache.get("p1", "read", "shape", now=0.0) is None


def test_invalidate_policy_is_selective():
    cache = DecisionCache()
    cache.put("p1", "read", "s", epoch=0, decision=_decision())
    cache.put("p2", "read", "s", epoch=0, decision=_decision())
    assert cache.invalidate_policy("p1") == 1
    assert cache.get("p1", "read", "s", now=0.0) is None
    assert cache.get("p2", "read", "s", now=0.0) is not None


def test_time_bounded_entries_expire():
    cache = DecisionCache()
    cache.put(
        "p1", "read", "s", epoch=0, decision=_decision(), valid_until=100.0
    )
    assert cache.get("p1", "read", "s", now=99.9) is not None
    assert cache.get("p1", "read", "s", now=100.0) is None
    assert cache.stats.expired == 1
    # The expired entry was dropped, not just masked.
    assert len(cache) == 0


def test_lru_bound_evicts_oldest():
    cache = DecisionCache(max_entries=2)
    cache.put("p", "read", "a", epoch=0, decision=_decision())
    cache.put("p", "read", "b", epoch=0, decision=_decision())
    assert cache.get("p", "read", "a", now=0.0) is not None  # refresh a
    cache.put("p", "read", "c", epoch=0, decision=_decision())
    assert len(cache) == 2
    assert cache.get("p", "read", "b", now=0.0) is None
    assert cache.get("p", "read", "a", now=0.0) is not None


def test_contains_probe_leaves_stats_and_order_alone():
    cache = DecisionCache()
    cache.put("p", "read", "a", epoch=0, decision=_decision())
    assert cache.contains("p", "read", "a", now=0.0)
    assert not cache.contains("p", "read", "missing", now=0.0)
    assert cache.stats.hits == 0 and cache.stats.misses == 0


# ---------------------------------------------------------------------------
# PolicyEngine
# ---------------------------------------------------------------------------

def test_engine_caches_repeat_shapes():
    policy = compile_policy(f"read :- sessionKeyIs(k'{ALICE}')")
    engine = PolicyEngine()
    ctx = EvalContext(operation="read", session_key=ALICE)
    for _ in range(5):
        assert engine.evaluate(policy, "read", ctx).granted
    assert engine.decisions.stats.misses == 1
    assert engine.decisions.stats.hits == 4


def test_engine_never_caches_object_reading_policies():
    policy = compile_policy(
        "read :- objId(this, O) /\\ currVersion(O, V)"
    )
    assert not compiled_form(policy).cacheable
    engine = PolicyEngine()
    ctx = EvalContext(operation="read", session_key=ALICE)
    for _ in range(3):
        engine.evaluate(policy, "read", ctx)
    assert len(engine.decisions) == 0


def test_engine_decisions_match_interpreter_cached_or_not():
    policy = compile_policy(f"read :- sessionKeyIs(k'{ALICE}')")
    engine = PolicyEngine()
    ctx = EvalContext(operation="read", session_key=ALICE)
    cold = engine.evaluate(policy, "read", ctx)
    warm = engine.evaluate(policy, "read", ctx)
    reference = INTERP.evaluate(policy, "read", ctx)
    for decision in (cold, warm):
        assert decision.granted == reference.granted
        assert decision.clause_path == reference.clause_path
        assert (
            decision.predicates_evaluated
            == reference.predicates_evaluated
        )
        assert decision.bindings == reference.bindings


def test_engine_prewarm_seeds_the_cache():
    policy = compile_policy(
        f"read :- sessionKeyIs(k'{ALICE}') \\/ sessionKeyIs(k'{BOB}')"
    )
    engine = PolicyEngine()
    contexts = [
        EvalContext(operation="read", session_key=key)
        for key in (ALICE, BOB, ALICE)  # duplicate shape collapses
    ]
    warmed = engine.prewarm(policy, "read", contexts)
    assert warmed == 2
    assert engine.decisions.stats.misses == 0
    assert engine.evaluate(
        policy, "read", EvalContext(operation="read", session_key=ALICE)
    ).granted
    assert engine.decisions.stats.hits == 1
