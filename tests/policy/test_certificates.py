"""certificateSays: trust chains, freshness, nonces (§5.2 policies)."""

import pytest

from repro.crypto.certs import CertificateAuthority
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext
from repro.policy.interpreter import PolicyInterpreter

INTERP = PolicyInterpreter()


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("trusted-ca", key_bits=512)


@pytest.fixture(scope="module")
def timeserver(ca):
    return ca.issue_keypair("timeserver", key_bits=512)


def _time_cert(timeserver_kp, ca, timestamp, issued_at=0.0, nonce=""):
    """The time-authority chain: CA certifies ts key; ts certifies time."""
    ts_fp = timeserver_kp.public_key.fingerprint()
    authority_cert = ca.issue_certificate(
        "timeserver",
        timeserver_kp.public_key,
        claims=(("ts", (f"k:{ts_fp}",)),),
    )
    # The time certificate is signed by the timeserver's own key.
    from dataclasses import replace

    time_cert = replace(
        authority_cert,
        subject="time-statement",
        issuer="timeserver",
        claims=(("time", (timestamp,)),),
        not_before=issued_at,
        not_after=issued_at + 3600,
        nonce=nonce,
        signature=b"",
    )
    time_cert = replace(
        time_cert, signature=timeserver_kp.private_key.sign(time_cert.tbs_bytes())
    )
    return [authority_cert, time_cert]


def _ctx(certs, ca, now=100.0, nonce=""):
    return EvalContext(
        operation="update",
        session_key="anyone",
        certificates=certs,
        key_registry={ca.public_key.fingerprint(): ca.public_key},
        now=now,
        nonce=nonce,
    )


def _time_policy(ca, release_date):
    ca_fp = ca.public_key.fingerprint()
    return compile_policy(
        f"update :- certificateSays(k'{ca_fp}', 'ts'(TSKEY))"
        f" /\\ certificateSays(TSKEY, 'time'(T))"
        f" /\\ ge(T, {release_date})"
    )


def test_paper_time_policy_grants_after_date(ca, timeserver):
    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(timeserver, ca, timestamp=1500)
    decision = INTERP.evaluate(policy, "update", _ctx(certs, ca))
    assert decision.granted


def test_paper_time_policy_denies_before_date(ca, timeserver):
    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(timeserver, ca, timestamp=500)
    assert not INTERP.evaluate(policy, "update", _ctx(certs, ca)).granted


def test_chain_required_not_just_any_key(ca, timeserver):
    rogue_ca = CertificateAuthority("rogue", key_bits=512)
    rogue_ts = rogue_ca.issue_keypair("fake-timeserver", key_bits=512)
    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(rogue_ts, rogue_ca, timestamp=1500)
    # The rogue chain's CA key is not the policy's authority.
    assert not INTERP.evaluate(policy, "update", _ctx(certs, ca)).granted


def test_tampered_certificate_ignored(ca, timeserver):
    from dataclasses import replace

    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(timeserver, ca, timestamp=1500)
    certs[1] = replace(certs[1], claims=(("time", (2000,)),))  # forged
    assert not INTERP.evaluate(policy, "update", _ctx(certs, ca)).granted


def test_freshness_window_enforced(ca, timeserver):
    ca_fp = ca.public_key.fingerprint()
    policy = compile_policy(
        f"update :- certificateSays(k'{ca_fp}', 'ts'(TSKEY))"
        f" /\\ certificateSays(TSKEY, 60, 'time'(T))"
    )
    fresh = _time_cert(timeserver, ca, timestamp=1500, issued_at=90.0)
    stale = _time_cert(timeserver, ca, timestamp=1500, issued_at=0.0)
    assert INTERP.evaluate(policy, "update", _ctx(fresh, ca, now=100.0)).granted
    assert not INTERP.evaluate(policy, "update", _ctx(stale, ca, now=100.0)).granted


def test_nonce_binding(ca, timeserver):
    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(timeserver, ca, timestamp=1500, nonce="expected-nonce")
    granted = INTERP.evaluate(
        policy, "update", _ctx(certs, ca, nonce="expected-nonce")
    ).granted
    replayed = INTERP.evaluate(
        policy, "update", _ctx(certs, ca, nonce="different-nonce")
    ).granted
    assert granted
    assert not replayed


def test_expired_certificate_ignored(ca, timeserver):
    policy = _time_policy(ca, release_date=1000)
    certs = _time_cert(timeserver, ca, timestamp=1500, issued_at=0.0)
    # time cert valid 0..3600; at now=5000 it is expired.
    assert not INTERP.evaluate(policy, "update", _ctx(certs, ca, now=5000.0)).granted


def test_group_membership_certificate(ca):
    member = ca.issue_certificate(
        "alice-membership",
        ca.public_key,  # key irrelevant for the claim
        claims=(("group", ("staff",)),),
    )
    ca_fp = ca.public_key.fingerprint()
    policy = compile_policy(
        f"read :- certificateSays(k'{ca_fp}', 'group'('staff'))"
    )
    assert INTERP.evaluate(policy, "read", _ctx([member], ca)).granted
    policy_other = compile_policy(
        f"read :- certificateSays(k'{ca_fp}', 'group'('admins'))"
    )
    assert not INTERP.evaluate(policy_other, "read", _ctx([member], ca)).granted


def test_unknown_authority_yields_no_facts(ca, timeserver):
    policy = compile_policy(
        "update :- certificateSays(k'unknown-fp', 'time'(T))"
    )
    certs = _time_cert(timeserver, ca, timestamp=1500)
    assert not INTERP.evaluate(policy, "update", _ctx(certs, ca)).granted
