"""Interpreter + predicate semantics, ending with the paper's policies."""

import pytest

from repro.errors import PolicyDenied
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext, ObjectView, VersionInfo
from repro.policy.interpreter import PolicyInterpreter

INTERP = PolicyInterpreter()


def _ctx(**kwargs):
    defaults = dict(operation="read", session_key="alice-fp")
    defaults.update(kwargs)
    return EvalContext(**defaults)


def _eval(source, operation, ctx):
    return INTERP.evaluate(compile_policy(source), operation, ctx)


def _object(object_id, version, content=b"data", policy_hash="", extra=None):
    versions = {version: VersionInfo.from_content(content, policy_hash)}
    versions.update(extra or {})
    return ObjectView(
        object_id=object_id, current_version=version, versions=versions
    )


# -- basic evaluation machinery ------------------------------------------------

def test_session_key_grant_and_deny():
    policy = "read :- sessionKeyIs(k'alice-fp')"
    assert _eval(policy, "read", _ctx()).granted
    assert not _eval(policy, "read", _ctx(session_key="mallory")).granted


def test_missing_permission_denied_by_default():
    policy = "read :- sessionKeyIs(k'alice-fp')"
    assert not _eval(policy, "update", _ctx()).granted
    assert not _eval(policy, "delete", _ctx()).granted


def test_disjunction_tries_all_clauses():
    policy = r"read :- sessionKeyIs(k'bob') \/ sessionKeyIs(k'alice-fp')"
    decision = _eval(policy, "read", _ctx())
    assert decision.granted
    assert decision.matched_clause == 1


def test_conjunction_requires_all():
    policy = r"read :- sessionKeyIs(k'alice-fp') /\ eq(1, 2)"
    assert not _eval(policy, "read", _ctx()).granted


def test_check_raises_on_denial():
    policy = compile_policy("read :- sessionKeyIs(k'other')")
    with pytest.raises(PolicyDenied):
        INTERP.check(policy, "read", _ctx())


def test_decision_counts_predicates():
    policy = r"read :- eq(1, 2) \/ eq(1, 1)"
    decision = _eval(policy, "read", _ctx())
    assert decision.predicates_evaluated == 2


def test_variable_binding_visible_in_decision():
    policy = "read :- sessionKeyIs(K)"
    decision = _eval(policy, "read", _ctx())
    assert decision.granted
    assert decision.bindings["K"].value == "alice-fp"


def test_bindings_do_not_leak_between_clauses():
    # First clause binds K then fails; second clause must rebind fresh.
    policy = r"read :- sessionKeyIs(K) /\ eq(K, k'nobody') \/ sessionKeyIs(K)"
    decision = _eval(policy, "read", _ctx())
    assert decision.granted
    assert decision.matched_clause == 1


# -- relational predicates -----------------------------------------------------

def test_eq_binds_then_compares():
    assert _eval(r"read :- eq(X, 5) /\ eq(X, 5)", "read", _ctx()).granted
    assert not _eval(r"read :- eq(X, 5) /\ eq(X, 6)", "read", _ctx()).granted


def test_eq_two_unbound_fails_clause():
    assert not _eval("read :- eq(X, Y)", "read", _ctx()).granted


def test_relational_operators():
    ctx = _ctx()
    assert _eval("read :- le(1, 1)", "read", ctx).granted
    assert _eval("read :- lt(1, 2)", "read", ctx).granted
    assert not _eval("read :- lt(2, 2)", "read", ctx).granted
    assert _eval("read :- ge(2, 2)", "read", ctx).granted
    assert _eval("read :- gt(3, 2)", "read", ctx).granted
    assert not _eval("read :- gt(2, 3)", "read", ctx).granted


def test_relational_requires_bound_ints():
    assert not _eval("read :- lt(X, 2)", "read", _ctx()).granted


def test_arithmetic_in_argument():
    policy = r"read :- eq(X, 2) /\ eq(X + 1, 3) /\ eq(X - 1, 1)"
    assert _eval(policy, "read", _ctx()).granted


# -- object predicates ------------------------------------------------------------

def test_obj_id_binds_identifier():
    ctx = _ctx(this_id="obj-1", objects={"obj-1": _object("obj-1", 0)})
    policy = r"read :- objId(this, O) /\ eq(O, 'obj-1')"
    assert _eval(policy, "read", ctx).granted


def test_obj_id_null_for_missing_object():
    ctx = _ctx(operation="update", this_id=None, request_version=0)
    policy = r"update :- objId(this, NULL) /\ nextVersion(0)"
    assert _eval(policy, "update", ctx).granted


def test_obj_id_null_fails_for_existing_object():
    ctx = _ctx(this_id="obj-1", objects={"obj-1": _object("obj-1", 0)})
    assert not _eval("read :- objId(this, NULL)", "read", _ctx(this_id="x", objects={"x": _object("x", 0)})).granted
    assert not _eval("read :- objId(this, NULL)", "read", ctx).granted


def test_obj_id_variable_fails_for_missing_object():
    ctx = _ctx(this_id=None)
    assert not _eval("read :- objId(this, O)", "read", ctx).granted


def test_curr_version():
    ctx = _ctx(this_id="o", objects={"o": _object("o", 7)})
    assert _eval(r"read :- currVersion(this, 7)", "read", ctx).granted
    assert not _eval(r"read :- currVersion(this, 6)", "read", ctx).granted
    decision = _eval(r"read :- currVersion(this, V) /\ eq(V, 7)", "read", ctx)
    assert decision.granted


def test_curr_index_alias():
    ctx = _ctx(this_id="o", objects={"o": _object("o", 3)})
    assert _eval("read :- currIndex(this, 3)", "read", ctx).granted


def test_next_version_checks_request():
    ctx = _ctx(operation="update", request_version=4)
    assert _eval("update :- nextVersion(4)", "update", ctx).granted
    assert not _eval("update :- nextVersion(5)", "update", ctx).granted
    assert not _eval(
        "update :- nextVersion(4)", "update", _ctx(operation="update")
    ).granted  # no version argument supplied


def test_next_index_two_arg_form():
    ctx = _ctx(
        operation="update",
        this_id="o",
        request_version=4,
        objects={"o": _object("o", 3)},
    )
    policy = r"update :- objId(this, O) /\ currIndex(O, V) /\ nextIndex(O, V + 1)"
    assert _eval(policy, "update", ctx).granted


def test_obj_size():
    ctx = _ctx(this_id="o", objects={"o": _object("o", 1, content=b"12345")})
    assert _eval("read :- objSize(this, 1, 5)", "read", ctx).granted
    assert not _eval("read :- objSize(this, 1, 6)", "read", ctx).granted
    # Unbound version binds to current.
    policy = r"read :- objSize(this, V, S) /\ eq(V, 1) /\ eq(S, 5)"
    assert _eval(policy, "read", ctx).granted


def test_obj_hash():
    from repro.policy.context import content_hash

    digest = content_hash(b"payload")
    ctx = _ctx(this_id="o", objects={"o": _object("o", 2, content=b"payload")})
    assert _eval(f"read :- objHash(this, 2, h'{digest}')", "read", ctx).granted
    assert not _eval("read :- objHash(this, 2, h'0000')", "read", ctx).granted


def test_obj_policy():
    ctx = _ctx(
        this_id="o",
        objects={"o": _object("o", 1, policy_hash="feedface")},
    )
    assert _eval("read :- objPolicy(this, 1, h'feedface')", "read", ctx).granted


def test_obj_hash_of_pending_version():
    from repro.policy.context import content_hash

    incoming = b"new content"
    ctx = _ctx(
        operation="update",
        this_id="o",
        objects={"o": _object("o", 3)},
        pending=VersionInfo.from_content(incoming),
        request_version=4,
    )
    policy = (
        r"update :- currVersion(this, V) /\ "
        f"objHash(this, V + 1, h'{content_hash(incoming)}')"
    )
    assert _eval(policy, "update", ctx).granted


def test_missing_version_info_fails():
    ctx = _ctx(this_id="o", objects={"o": _object("o", 5)})
    assert not _eval("read :- objSize(this, 3, S)", "read", ctx).granted


def test_obj_says_unifies_content():
    log = _object("log", 1, content=b"'read'('obj', 3, k'alice-fp')")
    ctx = _ctx(this_id="obj", log_id="log",
               objects={"obj": _object("obj", 3), "log": log})
    policy = (
        r"read :- objId(this, O) /\ currVersion(O, V) /\ sessionKeyIs(U)"
        r" /\ objSays(log, LV, 'read'(O, V, U))"
    )
    assert _eval(policy, "read", ctx).granted


def test_obj_says_rejects_wrong_entry():
    log = _object("log", 1, content=b"'read'('other', 3, k'alice-fp')")
    ctx = _ctx(this_id="obj", log_id="log",
               objects={"obj": _object("obj", 3), "log": log})
    policy = r"read :- objId(this, O) /\ objSays(log, LV, 'read'(O, V, U))"
    assert not _eval(policy, "read", ctx).granted


def test_obj_says_matches_any_line():
    log = _object(
        "log", 2, content=b"'entry'(1)\n'entry'(2)\n'entry'(3)"
    )
    ctx = _ctx(log_id="log", objects={"log": log})
    assert _eval("read :- objSays(log, V, 'entry'(2))", "read", ctx).granted
