"""Registry coverage: every Table 1 predicate, opcodes, arities."""

import pytest

from repro.errors import PolicyCompileError
from repro.policy.predicates import (
    all_predicates,
    lookup_predicate,
    predicate_by_opcode,
)

#: The thirteen predicates of Table 1 plus the MAL index aliases.
TABLE_1 = [
    ("eq", 2, 2),
    ("le", 2, 2),
    ("lt", 2, 2),
    ("ge", 2, 2),
    ("gt", 2, 2),
    ("certificateSays", 2, 3),
    ("sessionKeyIs", 1, 1),
    ("objId", 2, 2),
    ("currVersion", 2, 2),
    ("nextVersion", 1, 1),
    ("objSize", 3, 3),
    ("objPolicy", 3, 3),
    ("objHash", 3, 3),
    ("objSays", 3, 3),
]

ALIASES = [("currIndex", 2, 2), ("nextIndex", 1, 2)]


@pytest.mark.parametrize("name,min_arity,max_arity", TABLE_1 + ALIASES)
def test_predicate_registered(name, min_arity, max_arity):
    spec = lookup_predicate(name)
    assert spec.min_arity == min_arity
    assert spec.max_arity == max_arity


def test_lookup_is_case_insensitive():
    assert lookup_predicate("sessionkeyis") is lookup_predicate("sessionKeyIs")


def test_unknown_predicate_raises():
    with pytest.raises(PolicyCompileError):
        lookup_predicate("unknownPredicate")


def test_opcodes_are_unique_and_resolvable():
    specs = all_predicates()
    opcodes = [spec.opcode for spec in specs]
    assert len(opcodes) == len(set(opcodes))
    for spec in specs:
        assert predicate_by_opcode(spec.opcode) is spec


def test_unknown_opcode_raises():
    with pytest.raises(PolicyCompileError):
        predicate_by_opcode(9999)


def test_registry_size_matches_table():
    assert len(all_predicates()) == len(TABLE_1) + len(ALIASES)
