"""Regressions for the compare-or-set unification bugs.

Two historical failure modes, each asserted under BOTH the interpreter
and the compiled closures (the fast path shares :mod:`evalcore`, so a
regression in either layer must trip these):

1. ``compare_or_set`` double-bind — a variable that was unbound when a
   predicate's arguments were evaluated may have been bound *by the
   predicate itself* before a later argument is compared
   (``objSize(this, V, V)``: version resolution binds ``V``, then the
   size argument used to re-``bind`` instead of comparing, turning a
   legitimate grant into a structural :class:`EvalError`).
2. ``unify_tuple`` partial-binding pollution — a failed match against
   one fact used to leave bindings from its matched prefix (including
   *nested* tuple elements) behind, poisoning the attempt against the
   next fact in the same predicate call.
"""

from repro.policy.compiled import compile_closures
from repro.policy.compiler import compile_policy
from repro.policy.context import EvalContext, ObjectView, VersionInfo
from repro.policy.interpreter import PolicyInterpreter

INTERP = PolicyInterpreter()


def _both_paths(policy, operation, ctx):
    """Evaluate under interpreter and closures; assert identity."""
    interpreted = INTERP.evaluate(policy, operation, ctx)
    compiled = compile_closures(policy).evaluate(operation, ctx)
    for attribute in (
        "granted",
        "clause_path",
        "predicates_evaluated",
        "matched_clause",
        "bindings",
    ):
        assert getattr(interpreted, attribute) == getattr(
            compiled, attribute
        ), attribute
    return interpreted


def _ctx(view: ObjectView) -> EvalContext:
    return EvalContext(
        operation="read",
        session_key="e1" * 32,
        this_id=view.object_id,
        objects={view.object_id: view},
    )


def test_repeated_variable_compares_against_live_binding():
    """objSize(this, V, V): V is bound by version resolution, then the
    size argument must *compare*, not double-bind."""
    policy = compile_policy("read :- objSize(this, V, V)")
    # Version 2 holding two bytes: size == version, so the clause holds.
    view = ObjectView(
        object_id="obj",
        current_version=2,
        versions={2: VersionInfo.from_content(b"xy")},
    )
    decision = _both_paths(policy, "read", _ctx(view))
    assert decision.granted
    assert decision.bindings["V"].value == 2


def test_repeated_variable_mismatch_denies_cleanly():
    policy = compile_policy("read :- objSize(this, V, V)")
    # Version 3 holding two bytes: 2 != 3 must deny, not error.
    view = ObjectView(
        object_id="obj",
        current_version=3,
        versions={3: VersionInfo.from_content(b"xy")},
    )
    decision = _both_paths(policy, "read", _ctx(view))
    assert not decision.granted
    assert decision.clause_path == "read/denied"


def test_failed_fact_leaves_no_nested_bindings_behind():
    """A nested pattern that fails against one fact must not poison the
    match against the next fact of the same objSays call."""
    policy = compile_policy("read :- objSays(this, LV, 'p'('q'(X), X))")
    content = b"'p'('q'(1),2)\n'p'('q'(3),3)"
    view = ObjectView(
        object_id="obj",
        current_version=1,
        versions={1: VersionInfo.from_content(content)},
    )
    decision = _both_paths(policy, "read", _ctx(view))
    assert decision.granted
    assert decision.bindings["X"].value == 3


def test_repeated_slot_within_one_pattern_unifies_by_first_occurrence():
    policy = compile_policy("read :- objSays(this, LV, 'w'(H, H))")
    content = b"'w'(1,2)\n'w'(5,5)"
    view = ObjectView(
        object_id="obj",
        current_version=1,
        versions={1: VersionInfo.from_content(content)},
    )
    decision = _both_paths(policy, "read", _ctx(view))
    assert decision.granted
    assert decision.bindings["H"].value == 5


def test_repeated_slot_mismatch_everywhere_denies():
    policy = compile_policy("read :- objSays(this, LV, 'w'(H, H))")
    view = ObjectView(
        object_id="obj",
        current_version=1,
        versions={1: VersionInfo.from_content(b"'w'(1,2)\n'w'(3,4)")},
    )
    decision = _both_paths(policy, "read", _ctx(view))
    assert not decision.granted
