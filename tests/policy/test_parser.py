"""Parser: grammar coverage and error reporting."""

import pytest

from repro.errors import PolicySyntaxError
from repro.policy.ast import (
    Arith,
    HashValue,
    IntValue,
    Literal,
    NullValue,
    ObjectRef,
    PubKeyValue,
    StrValue,
    TupleTerm,
    Variable,
)
from repro.policy.parser import parse_policy


def test_simple_access_control_policy():
    ast = parse_policy(
        """
        read   :- sessionKeyIs(k'alice')
        update :- sessionKeyIs(k'bob')
        delete :- sessionKeyIs(k'admin')
        """
    )
    assert [p.operation for p in ast.permissions] == ["read", "update", "delete"]
    read = ast.permission("read")
    assert len(read.clauses) == 1
    predicate = read.clauses[0].predicates[0]
    assert predicate.name == "sessionKeyIs"
    assert predicate.args == (Literal(PubKeyValue("alice")),)


def test_destroy_is_delete_alias():
    ast = parse_policy("destroy :- sessionKeyIs(k'admin')")
    assert ast.permission("delete") is not None


def test_disjunction_produces_clauses():
    ast = parse_policy(r"read :- sessionKeyIs(k'a') \/ sessionKeyIs(k'b')")
    assert len(ast.permission("read").clauses) == 2


def test_conjunction_within_clause():
    ast = parse_policy(r"update :- objId(this, O) /\ currVersion(O, V)")
    clause = ast.permission("update").clauses[0]
    assert [p.name for p in clause.predicates] == ["objId", "currVersion"]


def test_dnf_structure():
    ast = parse_policy(
        r"read :- a(X) /\ b(Y) \/ c(Z) /\ d(W) \/ e(Q)"
    )
    clauses = ast.permission("read").clauses
    assert [len(c.predicates) for c in clauses] == [2, 2, 1]


def test_object_refs():
    ast = parse_policy("read :- objId(this, O) and objId(log, L)")
    predicates = ast.permission("read").clauses[0].predicates
    assert predicates[0].args[0] == ObjectRef("this")
    assert predicates[1].args[0] == ObjectRef("log")


def test_this_case_insensitive():
    ast = parse_policy("read :- objId(THIS, O)")
    assert ast.permission("read").clauses[0].predicates[0].args[0] == ObjectRef("this")


def test_null_literal():
    ast = parse_policy("update :- objId(this, NULL)")
    arg = ast.permission("update").clauses[0].predicates[0].args[1]
    assert arg == Literal(NullValue())


def test_arithmetic_term():
    ast = parse_policy("update :- nextVersion(cV + 1)")
    arg = ast.permission("update").clauses[0].predicates[0].args[0]
    assert arg == Arith(op="+", left=Variable("cV"), right=Literal(IntValue(1)))


def test_subtraction_term():
    ast = parse_policy("read :- eq(V, W - 1)")
    arg = ast.permission("read").clauses[0].predicates[0].args[1]
    assert isinstance(arg, Arith)
    assert arg.op == "-"


def test_chained_arithmetic_left_assoc():
    ast = parse_policy("read :- eq(X, A + 1 - 2)")
    arg = ast.permission("read").clauses[0].predicates[0].args[1]
    assert arg.op == "-"
    assert arg.left.op == "+"


def test_quoted_tuple_term():
    ast = parse_policy("update :- certificateSays(k'ca', 'time'(T))")
    tuple_arg = ast.permission("update").clauses[0].predicates[0].args[1]
    assert tuple_arg == TupleTerm(name="time", args=(Variable("T"),))


def test_bare_tuple_term():
    ast = parse_policy("read :- objSays(this, V, entry(A, 1))")
    tuple_arg = ast.permission("read").clauses[0].predicates[0].args[2]
    assert tuple_arg.name == "entry"
    assert tuple_arg.args == (Variable("A"), Literal(IntValue(1)))


def test_nested_tuple():
    ast = parse_policy("read :- certificateSays(k'ca', 'grp'(member('alice')))")
    outer = ast.permission("read").clauses[0].predicates[0].args[1]
    inner = outer.args[0]
    assert inner == TupleTerm(name="member", args=(Literal(StrValue("alice")),))


def test_hash_literal_argument():
    ast = parse_policy("read :- objHash(this, V, h'aabb')")
    arg = ast.permission("read").clauses[0].predicates[0].args[2]
    assert arg == Literal(HashValue("aabb"))


def test_empty_args():
    ast = parse_policy("read :- someFlag()")
    assert ast.permission("read").clauses[0].predicates[0].args == ()


def test_paper_versioned_store_policy_parses():
    ast = parse_policy(
        r"""
        update :- objId(this, O) /\ currVersion(O, cV)
                  /\ nextVersion(cV + 1)
               \/ objId(this, NULL) /\ nextVersion(0)
        """
    )
    assert len(ast.permission("update").clauses) == 2


def test_paper_mal_policy_parses():
    ast = parse_policy(
        r"""
        read :- objId(THIS, O) /\ objId(LOG, L) /\ currIndex(O, V)
                /\ sessionKeyIs(U) /\ objSays(L, LV, 'read'(O, V, U))
        update :- objId(THIS, O) /\ objId(LOG, L) /\ sessionKeyIs(U)
                /\ currIndex(O, V) /\ nextIndex(O, V + 1)
                /\ objHash(O, V, CH) /\ objHash(O, V + 1, NH)
                /\ objSays(L, LV, 'write'(O, V, CH, NH, U))
        """
    )
    assert ast.permission("read") is not None
    assert ast.permission("update") is not None


def test_duplicate_permission_rejected():
    with pytest.raises(PolicySyntaxError, match="duplicate"):
        parse_policy("read :- a(X)\nread :- b(Y)")


def test_unknown_permission_rejected():
    with pytest.raises(PolicySyntaxError, match="unknown permission"):
        parse_policy("write :- a(X)")


def test_empty_policy_rejected():
    with pytest.raises(PolicySyntaxError):
        parse_policy("   # nothing here\n")


def test_missing_grant_rejected():
    with pytest.raises(PolicySyntaxError):
        parse_policy("read sessionKeyIs(K)")


def test_missing_paren_rejected():
    with pytest.raises(PolicySyntaxError):
        parse_policy("read :- sessionKeyIs(K")


def test_dangling_and_rejected():
    with pytest.raises(PolicySyntaxError):
        parse_policy(r"read :- a(X) /\ ")


def test_error_carries_location():
    with pytest.raises(PolicySyntaxError) as excinfo:
        parse_policy("read :-\n  sessionKeyIs(")
    assert excinfo.value.line == 2
