"""Decompiler: render + round-trip guarantees."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_policy
from repro.policy.render import explain_policy, render_policy

PAPER_POLICIES = [
    # §5.1 access control
    "read :- sessionKeyIs(k'alice') \\/ sessionKeyIs(k'bob')\n"
    "update :- sessionKeyIs(k'alice')\n"
    "delete :- sessionKeyIs(k'admin')",
    # §5.2 time-based (chain of trust)
    "update :- certificateSays(k'ca', 'ts'(TSKEY))"
    " /\\ certificateSays(TSKEY, 60, 'time'(T)) /\\ ge(T, 1000)",
    # §5.3 versioned store
    "update :- objId(this, O) /\\ currVersion(O, cV)"
    " /\\ nextVersion(cV + 1)"
    " \\/ objId(this, NULL) /\\ nextVersion(0)",
    # §5.4 MAL (read permission)
    "read :- objId(this, O) /\\ objId(log, L) /\\ currIndex(O, V)"
    " /\\ sessionKeyIs(U) /\\ objSays(L, LV, 'read'(O, V, U))",
]


@pytest.mark.parametrize("source", PAPER_POLICIES)
def test_roundtrip_preserves_identity(source):
    policy = compile_policy(source)
    rendered = render_policy(policy)
    recompiled = compile_policy(rendered)
    assert recompiled.policy_hash() == policy.policy_hash()


def test_rendering_survives_serialization():
    policy = compile_policy(PAPER_POLICIES[2])
    reloaded = CompiledPolicy.from_bytes(policy.to_bytes())
    assert render_policy(reloaded) == render_policy(policy)


def test_render_shows_all_permissions():
    policy = compile_policy(PAPER_POLICIES[0])
    text = render_policy(policy)
    assert text.splitlines()[0].startswith("read :- ")
    assert "update :- " in text
    assert "delete :- " in text


def test_render_arithmetic_and_refs():
    policy = compile_policy(PAPER_POLICIES[2])
    text = render_policy(policy)
    assert "cV + 1" in text
    assert "objId(this, O)" in text
    assert "NULL" in text


def test_render_tuples_and_hashes():
    policy = compile_policy("read :- objHash(this, 2, h'abcd')"
                            " /\\ objSays(this, V, 'e'(1, k'fp'))")
    text = render_policy(policy)
    assert "h'abcd'" in text
    assert "'e'(1, k'fp')" in text


def test_explain_mentions_missing_permissions():
    policy = compile_policy("read :- eq(1, 1)")
    explained = explain_policy(policy)
    assert "update: never granted" in explained
    assert "delete: never granted" in explained
    assert policy.policy_hash()[:16] in explained


_fps = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@settings(max_examples=50, deadline=None)
@given(
    readers=st.lists(_fps, min_size=1, max_size=4, unique=True),
    threshold=st.integers(min_value=0, max_value=999),
)
def test_roundtrip_property(readers, threshold):
    clause = " \\/ ".join(f"sessionKeyIs(k'{fp}')" for fp in readers)
    source = (
        f"read :- {clause}\n"
        f"update :- currVersion(this, V) /\\ ge(V, {threshold})"
    )
    policy = compile_policy(source)
    assert compile_policy(render_policy(policy)).policy_hash() == (
        policy.policy_hash()
    )
