#!/usr/bin/env python3
"""§5.3 — versioned storage: lost updates become policy violations.

Two operators concurrently edit a firewall ruleset.  With the version
policy, every update must name the successor of the current version,
so the second writer's stale update is *denied by the store* instead
of silently clobbering — and the full history stays readable for
forensics.

Run: ``python examples/versioned_audit.py``
"""

from repro.core.controller import PesosController
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.usecases.versioned import VersionedStore

OP_A, OP_B, AUDITOR = "fp-op-a", "fp-op-b", "fp-auditor"


def main() -> None:
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=b"v" * 32)
    store = VersionedStore(controller)

    # Create the ruleset (creation must target version 0).
    store.put(OP_A, "fw/ruleset", b"allow 443/tcp\n", expected_version=0)
    print("v0 created")

    # Both operators read v0 (version 0), then race to update.
    current = store.get(OP_A, "fw/ruleset")
    print(f"both operators read v{current.version}")

    first = store.put(
        OP_A, "fw/ruleset",
        b"allow 443/tcp\nallow 22/tcp from bastion\n",
        expected_version=current.version + 1,
    )
    print(f"operator A writes v{first.version}: HTTP {first.status}")

    # Operator B still believes the object is at v0 -> denied.
    stale = store.put(
        OP_B, "fw/ruleset",
        b"allow 443/tcp\nallow 0.0.0.0/0\n",  # would have been bad!
        expected_version=current.version + 1,
    )
    print(f"operator B's stale write: HTTP {stale.status} (lost update "
          f"prevented)")

    # B retries against the current version, as the protocol demands.
    latest = store.get(OP_B, "fw/ruleset")
    retry = store.put(
        OP_B, "fw/ruleset",
        latest.value + b"allow 51820/udp\n",
        expected_version=latest.version + 1,
    )
    print(f"operator B's rebased write: HTTP {retry.status}, v{retry.version}")

    # The auditor reconstructs the full change history.
    print("\naudit trail:")
    for version, content in enumerate(store.history(AUDITOR, "fw/ruleset")):
        rules = content.decode().strip().replace("\n", " | ")
        print(f"  v{version}: {rules}")


if __name__ == "__main__":
    main()
