#!/usr/bin/env python3
"""§5.4 — mandatory access logging: no access without a logged intent.

A medical-records scenario: every read or write of a patient record
must first be recorded in an append-only log.  The MAL policy makes
this *mandatory* — the storage layer denies any access whose intent is
missing from the log, so the audit trail is complete by construction.

Run: ``python examples/mandatory_access_logging.py``
"""

from repro.core.controller import PesosController
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.usecases.mal import MalStore

HOSPITAL, DR_WHO, DR_EVIL = "fp-hospital", "fp-dr-who", "fp-dr-evil"


def main() -> None:
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=b"m" * 32)
    mal = MalStore(controller)

    mal.protect(HOSPITAL, "patient/4711", b"blood type: 0-; allergies: none")
    print("record protected; log object created")

    # A legitimate access: log the intent, then read.
    record = mal.read(DR_WHO, "patient/4711")
    print(f"dr-who reads after logging: {record.value!r}")

    # A stealthy access without logging is denied by the store itself.
    sneaky = mal.unlogged_read(DR_EVIL, "patient/4711")
    print(f"dr-evil reading without logging: HTTP {sneaky.status}")

    # Writes log the content hashes before and after — provenance.
    updated = mal.write(DR_WHO, "patient/4711",
                        b"blood type: 0-; allergies: penicillin")
    print(f"dr-who updates after logging: HTTP {updated.status}")

    # An intent for content X does not authorize writing content Y:
    # dr-evil logs one value but tries to write another.
    import hashlib

    from repro.core.request import Request
    from repro.usecases.mal import write_intent

    target = controller._get_meta("patient/4711")
    version = target.current_version
    mal._append_log(
        DR_EVIL, "patient/4711",
        write_intent(
            "patient/4711", version,
            target.versions[version].content_hash,
            hashlib.sha256(b"innocuous note").hexdigest(),
            DR_EVIL,
        ),
    )
    forged = controller.handle(
        Request(method="put", key="patient/4711",
                value=b"blood type: AB+", version=version + 1),
        DR_EVIL,
    )
    print(f"dr-evil writing content not matching the intent: "
          f"HTTP {forged.status}")

    # The audit trail shows exactly who did (and tried) what.
    print("\naudit trail:")
    for line in mal.audit_trail(HOSPITAL, "patient/4711"):
        print(f"  {line}")


if __name__ == "__main__":
    main()
