#!/usr/bin/env python3
"""Scaling out: shards, elastic drives, and the SSD cache tier.

Combines the three scalability mechanisms the paper discusses:

1. §6.2 — multiple Pesos instances behind a load balancer, sharding
   the object space (ShardedPesos).
2. §3.1 future work — consistent hashing for dynamic drive
   membership (HashRing / ElasticStore).
3. §8 future work — an untrusted local SSD as a fast cache tier with
   integrity and freshness protection (SsdCacheTier).

Run: ``python examples/sharded_deployment.py``
"""

from repro.core.controller import ControllerConfig, PesosController
from repro.core.hashring import HashRing
from repro.core.request import Request
from repro.core.sharding import ShardedPesos
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

ALICE = "fp-alice"


def _instance(name: str) -> PesosController:
    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    return PesosController(
        clients,
        storage_key=name.encode().ljust(32, b"\0"),
        config=ControllerConfig(ssd_cache_entries=4096),
    )


def main() -> None:
    # --- three shards behind a load balancer -------------------------------
    balancer = ShardedPesos([_instance(f"shard-{i}") for i in range(3)])

    policy = balancer.handle(
        Request(method="put_policy",
                value=f"read :- sessionKeyIs(K)\n"
                      f"update :- sessionKeyIs(k'{ALICE}')".encode()),
        ALICE,
    )
    print(f"policy broadcast to {len(balancer.shards)} shards: "
          f"{policy.policy_id[:12]}...")

    for index in range(30):
        balancer.handle(
            Request(method="put", key=f"obj-{index}",
                    value=f"payload {index}".encode(),
                    policy_id=policy.policy_id),
            ALICE,
        )
    print(f"30 objects spread as {balancer.routed} requests/shard")

    response = balancer.handle(Request(method="get", key="obj-7"), ALICE)
    print(f"read through the balancer: {response.value!r}")

    # --- SSD tier in action on one shard ---------------------------------------
    shard = balancer.shard_for("obj-7")
    shard.caches.objects.clear()  # drop the enclave cache
    balancer.handle(Request(method="get", key="obj-7"), ALICE)
    print(f"SSD tier hits on obj-7's shard: {shard.ssd_cache.stats.hits}")

    # --- consistent hashing: how membership changes move keys ---------------
    ring = HashRing(["disk-0", "disk-1", "disk-2"], vnodes=64)
    keys = [f"obj-{i}" for i in range(1000)]
    before = {key: ring.placement(key, 1)[0] for key in keys}
    ring.add_drive("disk-3")
    moved = sum(
        1 for key in keys if ring.placement(key, 1)[0] != before[key]
    )
    print(f"adding a 4th drive moves {moved}/1000 keys "
          f"(~{moved / 10:.0f}%, ideal 25%)")


if __name__ == "__main__":
    main()
