#!/usr/bin/env python3
"""Quickstart: the full Pesos deployment flow, end to end.

Walks the paper's §3.1 bootstrap on simulated infrastructure:

1. An operator registers the controller binary's measurement and its
   runtime secrets at the attestation service.
2. An SGX platform launches the enclave; remote attestation releases
   the secrets to it (and refuses a tampered binary).
3. The controller connects to the Kinetic drives with factory
   credentials and locks out every other account.
4. Clients store objects under declarative policies; the controller
   enforces them on every access.

Run: ``python examples/quickstart.py``
"""

import secrets

from repro.core.controller import PesosController
from repro.errors import AttestationError
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.sgx.attestation import AttestationService, SgxPlatform
from repro.sgx.enclave import EnclaveBinary


def main() -> None:
    # -- operator side -----------------------------------------------------
    binary = EnclaveBinary(
        name="pesos-controller", content=b"\x7fELF pesos controller v1.0"
    )
    service = AttestationService()
    platform = SgxPlatform("rack-42-machine-7", key_bits=512)
    service.trust_platform(platform)
    runtime_secrets = {
        "storage_key": secrets.token_bytes(32).hex(),
        "disk_identity": "pesos-admin",
        "disk_hmac_key": secrets.token_bytes(32).hex(),
    }
    service.register_enclave(binary.measurement(), runtime_secrets)
    print(f"registered measurement {binary.measurement()[:16]}...")

    # A tampered binary cannot attest — this is the whole point.
    try:
        PesosController.launch(
            binary.tampered(), platform, service,
            DriveCluster(num_drives=1),
        )
    except AttestationError as exc:
        print(f"tampered binary refused: {exc}")

    # -- genuine launch -------------------------------------------------------
    cluster = DriveCluster(num_drives=3)
    controller = PesosController.launch(binary, platform, service, cluster)
    print(f"controller launched; drives locked to: "
          f"{cluster.drive(0).identities()}")

    # The factory 'demo' account no longer works on any drive.
    from repro.errors import KineticAuthError
    from repro.kinetic.client import KineticClient

    try:
        KineticClient(
            cluster.drive(0), KineticDrive.DEMO_IDENTITY,
            KineticDrive.DEMO_KEY,
        ).noop()
    except KineticAuthError:
        print("cloud provider locked out of the drives")

    # -- client side ------------------------------------------------------------
    alice, bob = "fp-alice", "fp-bob"
    policy = controller.put_policy(
        alice,
        f"read   :- sessionKeyIs(k'{alice}') \\/ sessionKeyIs(k'{bob}')\n"
        f"update :- sessionKeyIs(k'{alice}')\n"
        f"delete :- sessionKeyIs(k'{alice}')",
    )
    print(f"policy installed: {policy.policy_id[:16]}...")

    controller.put(alice, "greeting", b"hello pesos", policy_id=policy.policy_id)
    print(f"alice reads:  {controller.get(alice, 'greeting').value!r}")
    print(f"bob reads:    {controller.get(bob, 'greeting').value!r}")

    denied = controller.put(bob, "greeting", b"bob was here")
    print(f"bob's write:  HTTP {denied.status} ({denied.error})")

    updated = controller.put(alice, "greeting", b"hello again")
    print(f"alice's write: version {updated.version}")

    # Everything on disk is encrypted before it leaves the controller.
    drive = cluster.drive(0)
    ciphertexts = [e.value for e in drive._entries.values()]
    assert all(b"hello" not in blob for blob in ciphertexts)
    print("drive holds only ciphertext — verified")


if __name__ == "__main__":
    main()
