#!/usr/bin/env python3
"""§5.1 — a content server with per-object access control lists.

A small publishing platform: authors publish articles readable by
subscribers, editable only by their authors, and deletable only by the
site admin.  All enforcement happens inside the (simulated) enclave —
the application layer never re-checks permissions.

Run: ``python examples/content_server.py``
"""

from repro.core.controller import PesosController
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.usecases.content_server import ContentServer

ADMIN = "fp-admin"
AUTHORS = {"ana": "fp-ana", "ben": "fp-ben"}
SUBSCRIBERS = ["fp-sub-1", "fp-sub-2"]
FREELOADER = "fp-freeloader"


def main() -> None:
    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=b"s" * 32)
    server = ContentServer(controller, admin_fingerprint=ADMIN)

    # Authors publish; subscribers (and the authors) may read.
    readers = list(AUTHORS.values()) + SUBSCRIBERS
    server.publish(
        AUTHORS["ana"], "articles/intro-to-sgx",
        b"SGX provides hardware-protected enclaves...",
        readers=readers,
    )
    server.publish(
        AUTHORS["ben"], "articles/kinetic-drives",
        b"Kinetic drives bundle an HDD with a SoC...",
        readers=readers,
    )
    print("published 2 articles")

    # Subscribers read.
    response = server.fetch(SUBSCRIBERS[0], "articles/intro-to-sgx")
    print(f"subscriber reads: {response.value[:40]!r}...")

    # Non-subscribers are denied by the storage layer itself.
    denied = server.fetch(FREELOADER, "articles/intro-to-sgx")
    print(f"freeloader: HTTP {denied.status}")

    # Only the author can edit their article.
    vandal = controller.put(
        AUTHORS["ben"], "articles/intro-to-sgx", b"ben's hot take"
    )
    print(f"ben editing ana's article: HTTP {vandal.status}")
    fix = controller.put(
        AUTHORS["ana"], "articles/intro-to-sgx",
        b"SGX provides hardware-protected enclaves (updated).",
    )
    print(f"ana editing her article: HTTP {fix.status}, v{fix.version}")

    # Retraction requires the admin.
    print(f"ana deleting: HTTP "
          f"{server.remove(AUTHORS['ana'], 'articles/intro-to-sgx').status}")
    print(f"admin deleting: HTTP "
          f"{server.remove(ADMIN, 'articles/intro-to-sgx').status}")

    # Policies are shared 1:M — both articles used the same ACL policy.
    meta = controller._get_meta("articles/kinetic-drives")
    print(f"policy reuse: articles share policy {meta.policy_id[:12]}...")


if __name__ == "__main__":
    main()
