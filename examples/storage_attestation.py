#!/usr/bin/env python3
"""Storage attestation and replica integrity maintenance.

The paper (§1): "Pesos provides cryptographic attestation for the
stored objects and their associated policies to verify the policy
enforcement."  Here a client obtains a signed statement binding an
object's key, version, content hash and policy, verifies it offline
against the controller's certificate, and an operator audits and
repairs damaged replicas after silent corruption on one drive.

Run: ``python examples/storage_attestation.py``
"""

import hashlib

from repro.core.controller import (
    ControllerConfig,
    PesosController,
    verify_attestation,
)
from repro.core.request import Request
from repro.core.store import placement
from repro.crypto.certs import CertificateAuthority
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

ALICE = "fp-alice"


def main() -> None:
    # The controller's signing identity would be certified during
    # attestation-based deployment; clients pin its certificate.
    ca = CertificateAuthority("deployment-ca", key_bits=512)
    controller_keys = ca.issue_keypair("pesos-controller", key_bits=512)

    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(
        clients,
        storage_key=b"a" * 32,
        config=ControllerConfig(replication_factor=2),
        signing_keys=controller_keys,
    )

    policy = controller.put_policy(ALICE, "read :- sessionKeyIs(K)\n"
                                          f"update :- sessionKeyIs(k'{ALICE}')")
    controller.put(ALICE, "contract", b"party A pays party B 100 units",
                   policy_id=policy.policy_id)

    # --- attestation ---------------------------------------------------------
    response = controller.handle(
        Request(method="attest", key="contract"), ALICE, now=1700000000.0
    )
    statement = verify_attestation(
        response.value,
        bytes.fromhex(response.extra["signature"]),
        controller_keys.public_key,
    )
    print("attestation verified:")
    print(f"  key          = {statement['key']}")
    print(f"  version      = {statement['version']}")
    print(f"  content hash = {statement['content_hash'][:24]}...")
    print(f"  policy       = {statement['policy_id'][:24]}...")
    expected = hashlib.sha256(b"party A pays party B 100 units").hexdigest()
    assert statement["content_hash"] == expected
    print("  content hash matches what alice uploaded")

    # --- scrub and repair -------------------------------------------------------
    primary = placement("contract", 3, 2)[0]
    drive = cluster.drive(primary)
    for key, entry in drive._entries.items():
        if key.startswith(b"v/contract"):
            entry.value = entry.value[:-1] + b"\x00"  # silent bit rot
    print(f"\nbit rot injected on disk-{primary}")

    report = controller.scrub_object("contract")
    for version, index, status in report:
        print(f"  scrub v{version} disk-{index}: {status}")

    fixed = controller.repair_object("contract")
    print(f"repair rewrote {fixed} replica blob(s)")
    assert all(s == "ok" for _v, _d, s in controller.scrub_object("contract"))
    print("all replicas healthy again")


if __name__ == "__main__":
    main()
