#!/usr/bin/env python3
"""§5.2 — time-based storage: a time capsule and a retention lease.

Time-based policies need a trusted time source: a *time authority*
whose key a CA endorses.  Clients fetch signed, nonce-bound time
certificates and attach them to requests; the policy checks the chain
of trust (``certificateSays(K_CA, 'ts'(TSKEY))``), the freshness
window, and the release date.

Run: ``python examples/time_capsule.py``
"""

from repro.core.controller import PesosController
from repro.crypto.certs import CertificateAuthority
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.usecases.time_based import TimeAuthority, TimeVault

ALICE, BOB = "fp-alice", "fp-bob"
RELEASE = 1_800_000_000  # the embargo lifts at this (unix) time


def main() -> None:
    # Infrastructure: a CA endorses the time authority's key.
    ca = CertificateAuthority("global-clock-ca", key_bits=512)
    authority = TimeAuthority(ca, key_bits=512)

    cluster = DriveCluster(num_drives=2)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(
        clients,
        storage_key=b"t" * 32,
        authority_keys={ca.public_key.fingerprint(): ca.public_key},
    )
    vault = TimeVault(controller, authority, ca.public_key.fingerprint())

    # --- a time capsule: sealed research results --------------------------
    vault.seal_until(
        ALICE, "embargoed-results", b"fusion at room temperature!", RELEASE
    )
    print(f"capsule sealed until t={RELEASE}")

    early = vault.open_at(BOB, "embargoed-results", RELEASE - 86_400)
    print(f"one day early: HTTP {early.status}")

    on_time = vault.open_at(BOB, "embargoed-results", RELEASE + 60)
    print(f"after release: HTTP {on_time.status} -> {on_time.value!r}")

    # Without a certificate there is no trusted time — always denied.
    bare = controller.get(BOB, "embargoed-results", now=float(RELEASE + 60))
    print(f"no certificate: HTTP {bare.status}")

    # --- a retention lease: records that must survive until a date --------
    vault.seal_until(
        ALICE, "audit-records-2025", b"ledger lines...", RELEASE,
        mode="lease",
    )
    anyone = controller.get(BOB, "audit-records-2025")
    print(f"lease allows reads: HTTP {anyone.status}")
    tamper = controller.put(ALICE, "audit-records-2025", b"redacted")
    print(f"owner shredding early: HTTP {tamper.status}")


if __name__ == "__main__":
    main()
