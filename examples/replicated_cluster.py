#!/usr/bin/env python3
"""Replication, drive failure, and ACID transactions (§4.4, §4.5).

A three-drive cluster with 2-way replication: objects survive a drive
failure, reads fail over to the replica automatically, and a
multi-object transfer commits atomically under the VLL lock manager —
or aborts entirely if any of its policy checks fail.

Run: ``python examples/replicated_cluster.py``
"""

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import Request
from repro.core.store import placement
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive

BANK, MALLORY = "fp-bank", "fp-mallory"


def main() -> None:
    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(
        clients,
        storage_key=b"r" * 32,
        config=ControllerConfig(replication_factor=2),
    )

    # --- replication and failover -----------------------------------------
    controller.put(BANK, "account/alice", b"100")
    controller.put(BANK, "account/bob", b"50")
    replicas = placement("account/alice", 3, 2)
    print(f"account/alice lives on drives {replicas}")

    failed = replicas[0]
    cluster.drive(failed).fail()
    print(f"disk-{failed} failed")
    controller.caches.objects.clear()  # force a disk read
    controller.caches.keys.clear()
    response = controller.get(BANK, "account/alice")
    print(f"read after failure: HTTP {response.status} -> {response.value!r}"
          f" (served by the replica)")
    cluster.drive(failed).recover()

    # --- an atomic transfer -------------------------------------------------
    txid = controller.handle(Request(method="create_tx"), BANK).txid
    controller.handle(
        Request(method="add_read", key="account/alice", txid=txid), BANK
    )
    controller.handle(
        Request(method="add_write", key="account/alice", value=b"75",
                txid=txid), BANK,
    )
    controller.handle(
        Request(method="add_write", key="account/bob", value=b"75",
                txid=txid), BANK,
    )
    commit = controller.handle(Request(method="commit_tx", txid=txid), BANK)
    print(f"transfer committed: HTTP {commit.status}")
    print(f"balances: alice={controller.get(BANK, 'account/alice').value!r} "
          f"bob={controller.get(BANK, 'account/bob').value!r}")

    # --- atomicity under policy denial ---------------------------------------
    policy = controller.put_policy(
        BANK,
        f"read :- sessionKeyIs(k'{BANK}')\nupdate :- sessionKeyIs(k'{BANK}')",
    )
    controller.put(BANK, "account/vault", b"1000000",
                   policy_id=policy.policy_id)

    txid = controller.handle(Request(method="create_tx"), MALLORY).txid
    controller.handle(
        Request(method="add_write", key="account/mallory", value=b"1000000",
                txid=txid), MALLORY,
    )
    controller.handle(
        Request(method="add_write", key="account/vault", value=b"0",
                txid=txid), MALLORY,
    )
    heist = controller.handle(Request(method="commit_tx", txid=txid), MALLORY)
    print(f"\nmallory's transaction: HTTP {heist.status} ({heist.error})")
    leftover = controller.get(MALLORY, "account/mallory")
    print(f"mallory's side-account after abort: HTTP {leftover.status} "
          f"(nothing was written)")


if __name__ == "__main__":
    main()
