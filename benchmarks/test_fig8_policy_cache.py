"""Fig. 8: policy-to-object mapping vs the policy cache.

Paper: with one policy for all objects the enforcement overhead stays
below 5.5%; throughput is flat while unique policies fit the 50 k
entry cache and declines once the count exceeds it (cliff near 60 k
for 100 k objects).  Scaled run keeps the same object:cache ratio.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig8_policy_cache


def test_fig8(regenerate):
    figure = regenerate(fig8_policy_cache)
    emit(figure)

    for series in ("native-sim", "sgx-sim"):
        points = sorted(figure.series[series], key=lambda p: p[0])
        xs = [x for x, _r in points]
        rates = [r.throughput for _x, r in points]
        cache_size = xs[-4]  # by construction: ..., cache, 1.2x, 1.6x, 2x
        in_cache = [r for x, r in zip(xs, rates) if x <= cache_size]
        beyond = rates[-1]
        # Flat while everything fits (within 5% of the single-policy rate).
        assert min(in_cache) > 0.94 * in_cache[0]
        # Clear decline once policies exceed the cache.
        assert beyond < 0.95 * in_cache[0]

    # Enforcement itself is cheap: Pesos with one policy for all
    # objects stays within ~12% of native (paper: <5.5% vs no checking).
    pesos_one = figure.series["sgx-sim"][0][1].throughput
    native_one = figure.series["native-sim"][0][1].throughput
    assert pesos_one > 0.85 * native_one
