"""Fig. 6: payload-size sweep at 100 clients.

Paper: ~105 kIOP/s at 128 B, gradual decline beyond 256 B as larger
objects amortize per-request costs but saturate the I/O paths; Pesos
stays close to native for small objects.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig6_payload


def test_fig6(regenerate):
    figure = regenerate(fig6_payload)
    emit(figure)

    for series in ("native-sim", "sgx-sim"):
        small = figure.throughput_of(series, 128)
        medium = figure.throughput_of(series, 1024)
        huge = figure.throughput_of(series, 65536)
        # Throughput decreases monotonically-ish with payload size.
        assert small > medium > huge
        # 64 KB objects are I/O-bound: at least 4x below the 128 B rate.
        assert huge < small / 4

    # Pesos overhead stays moderate for small objects (paper: <=4%;
    # allow slack for sampling noise at reduced scale).
    for size in (128, 256, 512, 1024, 2048):
        native = figure.throughput_of("native-sim", size)
        pesos = figure.throughput_of("sgx-sim", size)
        assert pesos >= 0.85 * native, (size, pesos / native)
