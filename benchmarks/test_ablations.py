"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the mechanisms the paper
credits for its performance: the asynchronous syscall interface
(§4.6), the in-enclave cache regions (§4.2), and staying within the
EPC (§2.1/§4.2).
"""

from benchmarks.conftest import emit
from repro.bench.experiments import (
    ablation_caches,
    ablation_epc,
    ablation_ssd,
    ablation_syscalls,
)


def test_async_syscalls_win(regenerate):
    figure = regenerate(ablation_syscalls)
    emit(figure)
    async_rate = figure.throughput_of("sgx-sim", "async")
    sync_rate = figure.throughput_of("sgx-sim-sync", "sync")
    # Trap-per-call syscalls cost a large fraction of peak throughput.
    assert sync_rate < 0.85 * async_rate


def test_caches_win(regenerate):
    figure = regenerate(ablation_caches)
    emit(figure)
    with_caches = figure.throughput_of("sgx-sim-paper-budgets", "paper-budgets")
    without = figure.throughput_of("sgx-sim-minimal", "minimal")
    assert without < with_caches


def test_ssd_tier_lifts_disk_backend(regenerate):
    figure = regenerate(ablation_ssd)
    emit(figure)
    without = figure.throughput_of("sgx-disk-no-ssd", "no-ssd")
    with_ssd = figure.throughput_of("sgx-disk-with-ssd", "with-ssd")
    # The tier absorbs read misses that otherwise hit the HDDs.
    assert with_ssd > 1.10 * without


def test_epc_overflow_costs(regenerate):
    figure = regenerate(ablation_epc)
    emit(figure)
    fits = figure.throughput_of("sgx-sim", "fits-epc")
    overflows = figure.throughput_of("sgx-sim-paging", "overflows-epc")
    assert overflows < 0.99 * fits
