"""Fig. 9: the versioned-storage use case.

Paper: Pesos reaches 82 kIOP/s with the version policy vs 84 kIOP/s
without policy checking — ~2.3% overhead.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig9_versioned


def test_fig9(regenerate):
    figure = regenerate(fig9_versioned)
    emit(figure)

    def peak(series):
        return figure.peak(series)

    for mode in ("native", "sgx"):
        versioned = peak(f"{mode}-versioned")
        baseline = peak(f"{mode}-baseline")
        overhead = 1 - versioned / baseline
        # Versioning costs something, but stays single-digit percent
        # (paper: 2.3%).
        assert 0.0 <= overhead < 0.12, (mode, overhead)

    # The ordering of the four lines matches the paper: native above
    # pesos, baselines above versioned.
    assert peak("native-baseline") >= peak("sgx-baseline")
    assert peak("native-versioned") >= peak("sgx-versioned")
