"""Fig. 10: mandatory access logging granularity.

Paper (write-only workload): logging every write costs heavily
(~50 kIOP/s vs a ~66-70 kIOP/s Pesos baseline); logging every 10th
write recovers ~95% of baseline; the plateau sits near 66 kIOP/s for
Pesos and 77 kIOP/s for native.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig10_mal


def test_fig10(regenerate):
    figure = regenerate(fig10_mal)
    emit(figure)

    for series in ("native-sim", "sgx-sim"):
        def rate(granularity):
            return figure.throughput_of(series, granularity)

        baseline = rate(0)
        # Logging every write costs substantially (paper: 50k vs ~70k).
        assert rate(1) < 0.80 * baseline
        # Every 10th write recovers most of the baseline (paper: 95%).
        assert rate(10) > 0.88 * baseline
        # Coarser granularity converges towards the baseline.
        assert rate(100) > rate(10) > rate(1)

    # Native stays above Pesos throughout.
    for g in (0, 1, 10, 100):
        assert figure.throughput_of("native-sim", g) >= figure.throughput_of(
            "sgx-sim", g
        )
