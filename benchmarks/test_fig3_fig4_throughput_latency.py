"""Fig. 3 + Fig. 4: throughput and latency vs number of clients.

Paper: native-sim peaks ~95 kIOP/s; Pesos-sim ~85 kIOP/s (>=85% of
native); the Kinetic HDDs saturate around 1,080 IOP/s with latency
within ~5% of native before overload, then growing linearly.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig3_fig4


def test_fig3_fig4(regenerate):
    fig3, fig4 = regenerate(fig3_fig4)
    emit(fig3, fig4)

    native_peak = fig3.peak("native-sim")
    pesos_peak = fig3.peak("sgx-sim")

    # Native wins, but Pesos stays within 85% of it (the headline).
    assert pesos_peak <= native_peak
    assert pesos_peak >= 0.82 * native_peak
    # Peaks land in the right decade (tens of kIOP/s vs the simulator).
    assert 60_000 < native_peak < 140_000

    # Real disks are orders of magnitude slower and SGX-insensitive.
    disk_native = fig3.peak("native-disk")
    disk_pesos = fig3.peak("sgx-disk")
    assert disk_native < native_peak / 20
    assert 600 < disk_pesos < 2_000
    assert abs(disk_pesos - disk_native) / disk_native < 0.15

    # Latency (Fig. 4): flat-ish before saturation, then queueing.
    def latency_at(series, clients):
        for x, result in fig4.series[series]:
            if x == clients:
                return result.mean_latency
        raise KeyError(clients)

    assert latency_at("sgx-sim", 20) < 2e-3  # sub-2ms pre-saturation
    assert latency_at("sgx-sim", 300) > 2 * latency_at("sgx-sim", 20)
    # SGX impact on latency is small before overload (paper: within 5%).
    assert latency_at("sgx-sim", 20) < 1.25 * latency_at("native-sim", 20)
    # Disk latency exceeds sim latency at every load level.
    assert latency_at("sgx-disk", 20) > 5 * latency_at("sgx-sim", 20)
