"""§6.1 claim: "we found that the results were similar in each case".

The paper only plots YCSB-A because workloads A-D gave similar
results.  This benchmark checks that claim holds in the reproduction:
peak Pesos throughput across the four stock workloads stays within a
moderate band (read-heavier workloads are somewhat faster, since
reads move less data to the drives).
"""

from benchmarks.conftest import emit
from repro.bench.configs import make_config
from repro.bench.harness import build_system, run_point
from repro.bench.report import FigureResult
from repro.bench.experiments import _measure_ops, _scaled, OPEN_POLICY
from repro.ycsb.workload import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
)


def _run_variants():
    figure = FigureResult(
        figure="Workloads",
        title="YCSB workloads A-D (Pesos vs simulator, 200 clients)",
        x_label="workload",
        paper_notes=["§6.1: results were similar across workloads A-D"],
    )
    for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D):
        workload = spec.scaled(
            record_count=_scaled(10_000), operation_count=_scaled(10_000)
        )
        loaded = build_system(
            make_config("sgx", "sim"),
            workload=workload,
            policy_source=OPEN_POLICY,
        )
        result = run_point(loaded, 200, measure_ops=_measure_ops())
        figure.add("sgx-sim", spec.name, result)
    return figure


def test_workloads_a_through_d_similar(regenerate):
    figure = regenerate(_run_variants)
    emit(figure)
    rates = {
        name: result.throughput
        for name, result in (
            (x, r) for x, r in figure.series["sgx-sim"]
        )
    }
    # All four land in the same regime: within 40% of each other.
    assert max(rates.values()) < 1.4 * min(rates.values()), rates
    # Read-only C is the fastest or close to it.
    assert rates["C"] >= 0.95 * max(rates.values())
