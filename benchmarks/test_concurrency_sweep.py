"""Concurrency sweep: the green-thread request engine (§4.6).

Acceptance shape: on an I/O-heavy mixed workload over 4 drives, the
concurrent engine at 8 workers must deliver at least 1.5x the
sequential (workers=1) virtual-time throughput, throughput must grow
monotonically with workers, and a seeded run must reproduce its
request ordering byte for byte.
"""

from benchmarks.conftest import emit
from repro.bench.concurrency import run_trace
from repro.bench.experiments import concurrency_sweep


def test_concurrency_sweep(regenerate):
    figure = regenerate(concurrency_sweep)
    emit(figure)

    series = figure.series["concurrency"]
    by_workers = {workers: point for workers, point in series}
    baseline = by_workers[1]

    # Overlapping drive I/O must pay: >=1.5x sequential at 8 workers.
    speedup = by_workers[8].throughput / baseline.throughput
    assert speedup >= 1.5, f"8-worker speedup only {speedup:.2f}x"

    # More workers never hurt on this workload.
    rates = [point.throughput for _workers, point in series]
    assert rates == sorted(rates), rates

    # Wider rounds coalesce more adjacent same-drive operations.
    assert by_workers[8].coalesced_calls > baseline.coalesced_calls

    # Near-identical drive work regardless of interleaving (cache
    # eviction order shifts a few reads between cache and drives).
    drive_ops = [point.drive_ops for _workers, point in series]
    assert max(drive_ops) - min(drive_ops) <= 0.05 * min(drive_ops), drive_ops


def test_seeded_run_is_byte_reproducible():
    assert run_trace() == run_trace()
