"""Fig. 5: scalability with the number of disks (one controller each).

Paper: near-linear scaling — sim 95->280 kIOP/s (native) and
89->242 kIOP/s (Pesos); disks 818->2,427 / 823->2,439 IOP/s.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig5_scalability


def test_fig5(regenerate):
    figure = regenerate(fig5_scalability)
    emit(figure)

    for series in ("native-sim", "sgx-sim", "native-disk", "sgx-disk"):
        one = figure.throughput_of(series, 1)
        three = figure.throughput_of(series, 3)
        # Near-linear: 3 instances deliver ~3x one instance (sampling
        # noise across instance seeds allows a little super-linearity).
        assert 2.4 <= three / one <= 3.6, (series, three / one)

    # Per-instance rates in the paper's ballparks.
    assert 600 < figure.throughput_of("sgx-disk", 1) < 1_200
    assert 60_000 < figure.throughput_of("sgx-sim", 1) < 120_000
    # Pesos tracks native closely; a small inversion is within noise
    # (the paper's own Fig. 5 shows pesos-disk marginally above
    # native-disk: 2,439 vs 2,427 IOP/s).
    assert figure.throughput_of("sgx-sim", 3) < 1.05 * figure.throughput_of(
        "native-sim", 3
    )
