"""Fig. 7: replicating every object onto all disks.

Paper: native loses ~12% of throughput per added replica; Pesos drops
~30% from one to two disks and ~13% per disk after that (the enclave
pays per-replica coordination costs).
"""

from benchmarks.conftest import emit
from repro.bench.experiments import fig7_replication


def test_fig7(regenerate):
    figure = regenerate(fig7_replication)
    emit(figure)

    native = [figure.throughput_of("native-sim", n) for n in (1, 2, 3, 4)]
    pesos = [figure.throughput_of("sgx-sim", n) for n in (1, 2, 3, 4)]

    # Monotone decline for both.
    assert native[0] > native[1] > native[2] > native[3]
    assert pesos[0] > pesos[1] > pesos[2] > pesos[3]

    native_first_drop = 1 - native[1] / native[0]
    pesos_first_drop = 1 - pesos[1] / pesos[0]
    # Native's per-replica cost is mild (paper ~12%).
    assert 0.03 < native_first_drop < 0.25, native_first_drop
    # Pesos pays clearly more on the first replica (paper ~30%).
    assert pesos_first_drop > native_first_drop + 0.05
    assert 0.15 < pesos_first_drop < 0.45, pesos_first_drop
