"""§6.2 text experiment: payload-encryption overhead.

Paper: AES-GCM payload encryption costs ~1.5% at 1 KB across 1-300
clients.
"""

from benchmarks.conftest import emit
from repro.bench.experiments import encryption_overhead


def test_encryption_overhead(regenerate):
    figure = regenerate(encryption_overhead)
    emit(figure)

    for clients in (100, 300):
        with_enc = figure.throughput_of("sgx-sim", clients)
        without = figure.throughput_of("sgx-sim-noenc", clients)
        overhead = 1.0 - with_enc / without
        # Small but nonzero: between 0 and 5% (paper: ~1.5%).
        assert -0.01 <= overhead <= 0.05, (clients, overhead)
