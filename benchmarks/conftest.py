"""Benchmark suite configuration.

Each benchmark regenerates one table/figure of the paper's evaluation:
it runs the experiment in the calibrated discrete-event model, prints
the same rows/series the paper reports, dumps JSON under
``benchmarks/results/``, and asserts the figure's *shape* (orderings,
ratios, crossovers).  pytest-benchmark wraps each regeneration so the
wall-clock cost of the harness itself is also tracked.

``REPRO_BENCH_SCALE`` scales record/operation counts; the default for
the benchmark suite is 0.5 (5 k records — a compromise between
sampling noise and wall-clock).  Set it to 1.0 to match the README's
reference numbers exactly, or lower for a quick smoke run.
"""

import os

import pytest

os.environ.setdefault("REPRO_BENCH_SCALE", "0.5")


@pytest.fixture()
def regenerate(benchmark):
    """Run an experiment under pytest-benchmark, once."""

    def runner(experiment, *args, **kwargs):
        return benchmark.pedantic(
            experiment, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def emit(*figures) -> None:
    """Print and persist each figure's data.

    Besides the per-figure JSON, rendered tables are appended to
    ``benchmarks/results/figures.txt`` so they remain readable even
    when pytest captures stdout.
    """
    from repro.bench.report import results_dir, save_figure

    for figure in figures:
        rendered = figure.render()
        print()
        print(rendered)
        path = save_figure(figure)
        print(f"  [saved {os.path.relpath(path)}]")
        with open(os.path.join(results_dir(), "figures.txt"), "a") as handle:
            handle.write(rendered + "\n\n")
