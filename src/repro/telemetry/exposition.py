"""Renderers: Prometheus text exposition format and JSON.

``render_prometheus`` follows the text format rules scrape pipelines
expect: ``# HELP`` / ``# TYPE`` preamble per family, label values with
backslash/quote/newline escaping, and histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import math


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_float(value: float) -> str:
    """Shortest ``%g``-style string that round-trips to ``value``.

    ``repr`` already picks the shortest decimal digits but keeps
    artifacts like ``0.30000000000000004`` verbose where a scrape
    pipeline only needs a parseable round-trip; probing ``.1g``
    upward returns the first precision that survives ``float()``.
    """
    for precision in range(1, 18):
        text = format(value, f".{precision}g")
        if float(text) == value:
            return text
    return repr(float(value))


def _format_value(value: float) -> str:
    if value != value:  # NaN (empty-histogram percentile readouts)
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return _format_float(float(value))


def render_families(families) -> str:
    """Render an iterable of metric families as Prometheus text."""
    lines: list[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            if family.kind == "histogram":
                _render_histogram_sample(lines, family.name, sample)
            else:
                lines.append(
                    f"{family.name}{_format_labels(sample.labels)} "
                    f"{_format_value(sample.value)}"
                )
    return "\n".join(lines) + "\n"


def render_prometheus(registry) -> str:
    """Render every family in ``registry`` as Prometheus text format."""
    return render_families(registry.collect())


def _render_histogram_sample(lines: list, name: str, sample) -> None:
    cumulative = sample.extra.get("buckets", [])
    running = 0
    for bound, running in cumulative:
        labels = dict(sample.labels)
        labels["le"] = _format_value(bound)
        lines.append(
            f"{name}_bucket{_format_labels(labels)} {running}"
        )
    labels = dict(sample.labels)
    labels["le"] = "+Inf"
    count = sample.extra.get("count", 0)
    lines.append(f"{name}_bucket{_format_labels(labels)} {count}")
    lines.append(
        f"{name}_sum{_format_labels(sample.labels)} "
        f"{_format_value(sample.extra.get('sum', 0.0))}"
    )
    lines.append(f"{name}_count{_format_labels(sample.labels)} {count}")


def registry_to_dict(registry) -> dict:
    """JSON-ready snapshot of every metric family."""
    families = {}
    for family in registry.collect():
        entries = []
        for sample in family.samples:
            entry: dict = {"labels": sample.labels, "value": sample.value}
            if family.kind == "histogram":
                entry["sum"] = sample.extra.get("sum", 0.0)
                entry["count"] = sample.extra.get("count", 0)
                entry["buckets"] = [
                    {"le": bound, "cumulative": running}
                    for bound, running in sample.extra.get("buckets", [])
                ]
            entries.append(entry)
        families[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": entries,
        }
    return families


def render_json(registry) -> str:
    return json.dumps(registry_to_dict(registry), indent=2, sort_keys=True)


def traces_to_dict(
    tracer, limit: int = 32, slow_only: bool = False
) -> dict:
    """JSON-ready dump of recent traces and the slow-request log.

    ``slow_only`` drops the recent ring from the payload —
    ``GET /_traces?slow=1`` — so an operator chasing a burning latency
    SLO sees only attributable offenders (each slow entry carries the
    root span's ``op`` label and ``trace_id``).
    """
    payload = {
        "spans_started": tracer.spans_started,
        "traces_completed": tracer.traces_completed,
        "slow_threshold_s": tracer.slow_threshold,
        "slow": [span.to_dict() for span in tracer.slow()],
    }
    if not slow_only:
        payload["recent"] = [span.to_dict() for span in tracer.recent(limit)]
    return payload


def render_traces_json(
    tracer, limit: int = 32, slow_only: bool = False
) -> str:
    return json.dumps(traces_to_dict(tracer, limit, slow_only), indent=2)
