"""SLO engine: error budgets and burn-rate alerts on virtual time.

An SLO (:class:`SloSpec`) declares, for one *request class*, either an
availability objective ("99% of requests succeed") or a latency
objective ("99% of requests finish under 25 virtual milliseconds"),
measured over a sliding window of **virtual time** — the same clock the
benchmarks, the admission layer, and the fault schedules run on, so two
same-seed runs burn their budgets identically.

Alerting follows the multi-window burn-rate pattern from the Google SRE
workbook: the *burn rate* is how fast the error budget is being spent
relative to the sustainable rate (a burn rate of 1.0 spends exactly the
budget over the objective window).  An objective *burns* only when both
a fast and a slow window exceed their thresholds — the fast window makes
the alert responsive, the slow window keeps a short blip from paging —
and is *exhausted* once the bad fraction over the full window has used
the entire budget.  The resulting state machine per objective is::

    healthy  ->  burning  ->  exhausted
       ^___________/_____________/      (budget refills as the window slides)

Events that violate a latency objective leave an *exemplar*: the trace
id of the offending request, so ``GET /_slo`` links a burning objective
straight to span trees an operator can pull from ``GET /_traces``.

The engine is plain data + arithmetic: no locks, no wall clock, no
background thread.  Recording is O(objectives per class) appends plus
amortized window pruning; evaluation happens at scrape time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricFamily, Sample

#: Alert states, ordered by severity (index = numeric metric value).
STATE_HEALTHY = "healthy"
STATE_BURNING = "burning"
STATE_EXHAUSTED = "exhausted"
STATES = (STATE_HEALTHY, STATE_BURNING, STATE_EXHAUSTED)

#: Priority class per request method, mirroring the admission layer's
#: ordering (writes outrank reads outrank status polls).  Kept local so
#: ``repro.telemetry`` stays import-cycle-free of ``repro.core``.
_METHOD_CLASSES: dict[str, str] = {
    "get": "get/p1",
    "attest": "get/p1",
    "scan": "scan/p1",
    "put": "put/p2",
    "delete": "put/p2",
    "rmw": "put/p2",
    "put_policy": "policy/p2",
    "get_policy": "policy/p1",
    "create_tx": "txn/p1",
    "add_read": "txn/p2",
    "add_write": "txn/p2",
    "commit_tx": "txn/p2",
    "abort_tx": "txn/p2",
    "tx_results": "txn/p1",
    "status": "status/p0",
}


def classify(method: str) -> str:
    """Map a request method to its SLO request class."""
    return _METHOD_CLASSES.get(method, "other/p1")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over one request class.

    ``objective`` is ``"availability"`` (an event is good when the
    request succeeded) or ``"latency"`` (good when it succeeded *and*
    finished within ``threshold`` virtual seconds).  ``target`` is the
    required good fraction over ``window`` virtual seconds; the error
    budget is the complementary ``1 - target`` fraction.
    """

    name: str
    request_class: str
    objective: str = "availability"
    target: float = 0.99
    #: Latency bound in virtual seconds (latency objectives only).
    threshold: float | None = None
    #: Sliding objective window, in virtual seconds.
    window: float = 60.0
    #: Burn-rate alert window pair (virtual seconds); both must exceed
    #: their threshold simultaneously for the objective to "burn".
    fast_window: float | None = None
    slow_window: float | None = None
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    #: Exemplar ring size (trace ids of breaching events).
    max_exemplars: int = 8

    def __post_init__(self) -> None:
        if self.objective not in ("availability", "latency"):
            raise ConfigurationError(
                f"slo {self.name!r}: unknown objective {self.objective!r}"
            )
        if self.objective == "latency" and self.threshold is None:
            raise ConfigurationError(
                f"slo {self.name!r}: latency objective needs a threshold"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"slo {self.name!r}: target must be in (0, 1)"
            )
        if self.window <= 0.0:
            raise ConfigurationError(
                f"slo {self.name!r}: window must be positive"
            )

    @property
    def fast(self) -> float:
        """Fast alert window (default: 1/12 of the objective window)."""
        return self.fast_window or self.window / 12.0

    @property
    def slow(self) -> float:
        """Slow alert window (default: half the objective window)."""
        return self.slow_window or self.window / 2.0


def default_slos(
    window: float = 60.0, latency_threshold: float = 0.025
) -> list[SloSpec]:
    """The stock objective set: GET/PUT/policy/txn classes, both kinds."""
    specs: list[SloSpec] = []
    for request_class in ("get/p1", "put/p2", "policy/p2", "txn/p2"):
        short = request_class.replace("/", "-")
        specs.append(
            SloSpec(
                name=f"{short}-availability",
                request_class=request_class,
                objective="availability",
                target=0.99,
                window=window,
            )
        )
        specs.append(
            SloSpec(
                name=f"{short}-latency",
                request_class=request_class,
                objective="latency",
                target=0.99,
                threshold=latency_threshold,
                window=window,
            )
        )
    return specs


class ObjectiveState:
    """Sliding-window event record + budget ledger for one objective."""

    __slots__ = (
        "spec", "events", "exemplars", "good_total", "bad_total", "last_vnow",
    )

    def __init__(self, spec: SloSpec):
        self.spec = spec
        #: (vnow, bad) pairs, pruned to the longest window of interest.
        self.events: deque[tuple[float, bool]] = deque()
        #: (trace_id, vnow, latency) of breaching events, newest last.
        self.exemplars: deque[tuple] = deque(maxlen=spec.max_exemplars)
        self.good_total = 0
        self.bad_total = 0
        self.last_vnow = 0.0

    # -- recording ---------------------------------------------------------

    def record(
        self, ok: bool, latency: float, vnow: float, trace_id=None
    ) -> None:
        spec = self.spec
        if spec.objective == "latency":
            bad = not ok or latency > spec.threshold
        else:
            bad = not ok
        self.events.append((vnow, bad))
        self.last_vnow = max(self.last_vnow, vnow)
        if bad:
            self.bad_total += 1
            if trace_id is not None:
                self.exemplars.append((trace_id, vnow, latency))
        else:
            self.good_total += 1
        self._prune(vnow)

    def _prune(self, vnow: float) -> None:
        horizon = vnow - max(self.spec.window, self.spec.slow)
        events = self.events
        while events and events[0][0] < horizon:
            events.popleft()

    # -- evaluation --------------------------------------------------------

    def _window_counts(self, vnow: float, window: float) -> tuple[int, int]:
        """(total, bad) over the trailing ``window`` virtual seconds."""
        start = vnow - window
        total = bad = 0
        for when, was_bad in reversed(self.events):
            if when < start:
                break
            total += 1
            bad += was_bad
        return total, bad

    def burn_rate(self, vnow: float, window: float) -> float:
        """Budget spend rate over ``window``; 1.0 = sustainable."""
        total, bad = self._window_counts(vnow, window)
        if not total:
            return 0.0
        return (bad / total) / (1.0 - self.spec.target)

    def budget_remaining(self, vnow: float) -> float:
        """Unspent error-budget fraction over the objective window.

        1.0 with an untouched budget, 0.0 (clamped) once the bad
        fraction has consumed ``1 - target`` of the window's events.
        """
        total, bad = self._window_counts(vnow, self.spec.window)
        if not total:
            return 1.0
        budget = (1.0 - self.spec.target) * total
        return max(0.0, 1.0 - bad / budget)

    def state(self, vnow: float) -> str:
        spec = self.spec
        if self.budget_remaining(vnow) <= 0.0:
            return STATE_EXHAUSTED
        fast = self.burn_rate(vnow, spec.fast)
        slow = self.burn_rate(vnow, spec.slow)
        if fast >= spec.fast_burn and slow >= spec.slow_burn:
            return STATE_BURNING
        return STATE_HEALTHY

    def snapshot(self, vnow: float | None = None) -> dict:
        """JSON-ready view of this objective at ``vnow``."""
        if vnow is None:
            vnow = self.last_vnow
        spec = self.spec
        total, bad = self._window_counts(vnow, spec.window)
        return {
            "slo": spec.name,
            "request_class": spec.request_class,
            "objective": spec.objective,
            "target": spec.target,
            "threshold_s": spec.threshold,
            "window_s": spec.window,
            "events_in_window": total,
            "bad_in_window": bad,
            "good_total": self.good_total,
            "bad_total": self.bad_total,
            "budget_remaining": round(self.budget_remaining(vnow), 6),
            "burn_rate_fast": round(self.burn_rate(vnow, spec.fast), 3),
            "burn_rate_slow": round(self.burn_rate(vnow, spec.slow), 3),
            "state": self.state(vnow),
            "exemplar_trace_ids": [trace for trace, _v, _l in self.exemplars],
            "exemplars": [
                {
                    "trace_id": trace,
                    "vnow": when,
                    "latency_s": latency,
                }
                for trace, when, latency in self.exemplars
            ],
        }


class SloEngine:
    """Evaluates a set of :class:`SloSpec` against the request stream.

    One engine guards one controller (one registry).  Attach it to a
    :class:`~repro.telemetry.Telemetry` with
    :meth:`Telemetry.attach_slo` so the request path records through
    ``telemetry.record_request(...)`` and the budget/burn series land
    on ``/_metrics`` via a registry callback.
    """

    def __init__(self, specs: list[SloSpec] | None = None):
        self._by_class: dict[str, list[ObjectiveState]] = {}
        self.objectives: list[ObjectiveState] = []
        self.recorded = 0
        for spec in specs if specs is not None else default_slos():
            self.add(spec)

    def add(self, spec: SloSpec) -> ObjectiveState:
        state = ObjectiveState(spec)
        self.objectives.append(state)
        self._by_class.setdefault(spec.request_class, []).append(state)
        return state

    def get(self, name: str) -> ObjectiveState | None:
        for state in self.objectives:
            if state.spec.name == name:
                return state
        return None

    # -- recording ---------------------------------------------------------

    def record(
        self,
        method: str,
        ok: bool,
        latency: float,
        vnow: float,
        trace_id=None,
    ) -> None:
        """Fold one finished request into every objective of its class."""
        states = self._by_class.get(classify(method))
        if not states:
            return
        self.recorded += 1
        for state in states:
            state.record(ok, latency, vnow, trace_id)

    # -- evaluation --------------------------------------------------------

    def last_vnow(self) -> float:
        return max(
            (state.last_vnow for state in self.objectives), default=0.0
        )

    def worst_state(self, vnow: float | None = None) -> str:
        if vnow is None:
            vnow = self.last_vnow()
        worst = 0
        for state in self.objectives:
            if state.events:
                worst = max(worst, STATES.index(state.state(vnow)))
        return STATES[worst]

    def health_status(self, vnow: float | None = None) -> str:
        """Fold the alert states into the ``/_health`` vocabulary."""
        return {
            STATE_HEALTHY: "ok",
            STATE_BURNING: "degraded",
            STATE_EXHAUSTED: "critical",
        }[self.worst_state(vnow)]

    def snapshot(self, vnow: float | None = None) -> dict:
        """The ``GET /_slo`` payload."""
        if vnow is None:
            vnow = self.last_vnow()
        objectives = [state.snapshot(vnow) for state in self.objectives]
        return {
            "vnow": vnow,
            "recorded": self.recorded,
            "worst_state": self.worst_state(vnow),
            "objectives": objectives,
        }

    # -- exposition --------------------------------------------------------

    def metric_families(self):
        """Registry callback: budget/burn/state gauges per objective."""
        vnow = self.last_vnow()
        remaining, fast, slow, states, events = [], [], [], [], []
        for state in self.objectives:
            labels = {"slo": state.spec.name}
            remaining.append(
                Sample(
                    "pesos_slo_error_budget_remaining",
                    labels,
                    state.budget_remaining(vnow),
                )
            )
            fast.append(
                Sample(
                    "pesos_slo_burn_rate",
                    {**labels, "window": "fast"},
                    state.burn_rate(vnow, state.spec.fast),
                )
            )
            slow.append(
                Sample(
                    "pesos_slo_burn_rate",
                    {**labels, "window": "slow"},
                    state.burn_rate(vnow, state.spec.slow),
                )
            )
            states.append(
                Sample(
                    "pesos_slo_state",
                    labels,
                    float(STATES.index(state.state(vnow))),
                )
            )
            events.append(
                Sample(
                    "pesos_slo_events_total",
                    {**labels, "outcome": "good"},
                    float(state.good_total),
                )
            )
            events.append(
                Sample(
                    "pesos_slo_events_total",
                    {**labels, "outcome": "bad"},
                    float(state.bad_total),
                )
            )
        yield MetricFamily(
            name="pesos_slo_error_budget_remaining",
            kind="gauge",
            help="Unspent error-budget fraction over the objective window.",
            samples=remaining,
        )
        yield MetricFamily(
            name="pesos_slo_burn_rate",
            kind="gauge",
            help="Error-budget spend rate (1.0 = sustainable), by window.",
            samples=fast + slow,
        )
        yield MetricFamily(
            name="pesos_slo_state",
            kind="gauge",
            help="Alert state per objective: 0 healthy, 1 burning, "
            "2 exhausted.",
            samples=states,
        )
        yield MetricFamily(
            name="pesos_slo_events_total",
            kind="counter",
            help="Requests folded into each objective, by outcome.",
            samples=events,
        )

    def register(self, registry) -> None:
        registry.register_callback(self.metric_families)
