"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single collection point for every instrument a
process (or one controller) exposes.  Instruments are get-or-create —
asking twice for the same name returns the same object — and support
Prometheus-style labels: ``counter.labels("get").inc()`` maintains one
monotonic series per label combination.

Design constraints, in order:

1. *Hot-path cost.*  Recording must be a dict lookup plus a float add;
   no locks, no string formatting, no timestamping.  Rendering
   (exposition) does all the expensive work at scrape time.
2. *Derived values stay lazy.*  Hit ratios, queue depths, and memory
   footprints are computed by *callback gauges* at collection time, so
   components never pay to keep a gauge in sync on the hot path.
3. *Bounded error percentiles.*  Histograms use a fixed list of upper
   bounds (Prometheus ``le`` semantics); percentile readout linearly
   interpolates inside the winning bucket.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default histogram upper bounds (seconds) spanning sub-microsecond
#: policy checks to multi-second tail latencies.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default bounds for byte-sized observations (64 B .. 64 MB).
DEFAULT_SIZE_BUCKETS = tuple(64 * 4**n for n in range(10))


@dataclass
class Sample:
    """One exposition-ready series: ``name{labels} value``."""

    name: str
    labels: dict
    value: float
    #: Histogram extras ride along so renderers can emit
    #: ``_bucket``/``_sum``/``_count`` without re-reading the source.
    extra: dict = field(default_factory=dict)


@dataclass
class MetricFamily:
    """All samples for one instrument name, plus its metadata."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: list = field(default_factory=list)


class _Instrument:
    """Base: a named instrument with zero or more label dimensions."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: tuple = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, object] = {}

    def _child_key(self, values: tuple) -> tuple:
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {values!r}"
            )
        return tuple(str(value) for value in values)

    def labels(self, *values):
        key = self._child_key(values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def _label_dict(self, key: tuple) -> dict:
        return dict(zip(self.labelnames, key))

    def reset(self) -> None:
        """Drop every series (test/ad-hoc use; exposition never resets)."""
        self._children.clear()

    def samples(self):
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase")
        self.value += amount


class Counter(_Instrument):
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1) -> None:
        """Increment the unlabeled series."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """Sum over every label combination."""
        return sum(child.value for child in self._children.values())

    def series(self) -> dict:
        """Snapshot of label tuple -> value (read-only view helper)."""
        return {key: child.value for key, child in self._children.items()}

    def samples(self):
        if not self._children and not self.labelnames:
            yield Sample(self.name, {}, 0.0)
        for key, child in self._children.items():
            yield Sample(self.name, self._label_dict(key), child.value)


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A value that can go up and down (sizes, depths, ratios)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    @property
    def value(self) -> float:
        return sum(child.value for child in self._children.values())

    def samples(self):
        if not self._children and not self.labelnames:
            yield Sample(self.name, {}, 0.0)
        for key, child in self._children.items():
            yield Sample(self.name, self._label_dict(key), child.value)


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, pct: float) -> float:
        """Percentile estimate with linear interpolation in-bucket.

        An empty histogram has no percentiles: the readout is ``NaN``
        (never a raise, and never a fake ``0.0`` that dashboards would
        plot as a perfect latency).  Observations beyond the last bound
        report the top bound (the histogram cannot know how far past
        it they landed).
        """
        if not 0 < pct <= 100:
            raise ConfigurationError("percentile must be in (0, 100]")
        if not self.count:
            return math.nan
        target = self.count * pct / 100.0
        running = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if running + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                fraction = (target - running) / bucket_count
                return lower + (upper - lower) * fraction
            running += bucket_count
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(_Instrument):
    """Fixed-bucket histogram with percentile readout."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: tuple = (), buckets: tuple | None = None):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(buckets or DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def percentile(self, pct: float) -> float:
        """Percentile over every label combination (``NaN`` when empty)."""
        if not self.labelnames:
            return self.labels().percentile(pct)
        merged = _HistogramChild(self.bounds)
        for child in self._children.values():
            merged.counts = [
                a + b for a, b in zip(merged.counts, child.counts)
            ]
            merged.sum += child.sum
            merged.count += child.count
        return merged.percentile(pct)

    @property
    def count(self) -> int:
        return sum(child.count for child in self._children.values())

    @property
    def sum(self) -> float:
        return sum(child.sum for child in self._children.values())

    def samples(self):
        if not self._children and not self.labelnames:
            # Expose the empty unlabeled histogram so scrapers see it.
            self.labels()
        for key, child in self._children.items():
            cumulative = []
            running = 0
            for bound, bucket_count in zip(child.bounds, child.counts):
                running += bucket_count
                cumulative.append((bound, running))
            yield Sample(
                self.name,
                self._label_dict(key),
                child.count,
                extra={
                    "buckets": cumulative,
                    "sum": child.sum,
                    "count": child.count,
                },
            )


class MetricsRegistry:
    """Named instruments plus lazy collection callbacks."""

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._callbacks: list = []

    # -- instrument factories (get-or-create) ---------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: tuple, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls) or (
                tuple(labelnames) != instrument.labelnames
            ):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind} with labels {instrument.labelnames}"
                )
            return instrument
        instrument = cls(name, help_text, tuple(labelnames), **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple = (),
                  buckets: tuple | None = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    # -- lazy derived metrics -------------------------------------------

    def register_callback(self, callback) -> None:
        """Register ``callback() -> iterable[MetricFamily]``.

        Called at every :meth:`collect`; the standard way to expose
        derived values (hit ratios, queue depths, memory footprints)
        without hot-path bookkeeping.
        """
        self._callbacks.append(callback)

    # -- collection ------------------------------------------------------

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def collect(self) -> list:
        """Snapshot every family, instruments first then callbacks."""
        families = [
            MetricFamily(
                name=instrument.name,
                kind=instrument.kind,
                help=instrument.help,
                samples=list(instrument.samples()),
            )
            for _name, instrument in sorted(self._instruments.items())
        ]
        for callback in self._callbacks:
            families.extend(callback())
        return families

    def reset(self) -> None:
        """Clear all instruments and callbacks (test isolation)."""
        self._instruments.clear()
        self._callbacks.clear()


#: Process-wide default registry: module-level components (SGX
#: machinery, ad-hoc scripts) record here unless handed a registry.
DEFAULT_REGISTRY = MetricsRegistry()
