"""Policy-decision auditing: the recorder in front of the hash chain.

:class:`PolicyAuditor` is what the request path talks to.  It owns a
:class:`repro.sgx.auditlog.AuditLog` (the tamper-evident chain inside
the enclave boundary), translates interpreter decisions and admission
sheds into canonical records, and surfaces the chain on telemetry:

- ``pesos_audit_records_total`` — chain length (counter semantics).
- ``pesos_audit_chain_head`` — gauge carrying the current head digest
  as a (single-sample, replaced-at-scrape) label, so a scrape pipeline
  can alert on unexpected head movement or divergence across replicas.
- ``pesos_audit_decisions_total`` — decisions by kind.

Everything recorded is a pure function of the request trace: virtual
timestamps, session fingerprints, policy hashes, clause indices.  Two
same-seed runs therefore produce byte-identical chains — the property
``GET /_audit`` lets an operator (or CI) check remotely.
"""

from __future__ import annotations

from repro.sgx.auditlog import (
    DECISION_ALLOW,
    DECISION_DENY,
    DECISION_FORK,
    DECISION_PIN,
    DECISION_SHED,
    AuditLog,
)
from repro.telemetry.metrics import MetricFamily, Sample


class PolicyAuditor:
    """Appends every policy decision to the enclave audit chain."""

    def __init__(self, capacity: int = 1024, telemetry=None):
        self.log = AuditLog(capacity=capacity)
        self.decisions_by_kind: dict[str, int] = {}
        if telemetry is not None and telemetry.enabled:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry) -> None:
        """Expose chain head + length as scrape-time families."""
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.register_callback(self._metric_families)

    # -- recording ---------------------------------------------------------

    def record_decision(
        self,
        decision,
        policy_hash: str,
        session: str,
        key: str,
        vnow: float,
    ) -> None:
        """One interpreter verdict (the controller's ``_check_policy``).

        ``decision`` is a :class:`repro.policy.interpreter.Decision`;
        its clause path and bindings land in the record so the chain
        answers "which clause allowed this?" byte-reproducibly.
        """
        kind = DECISION_ALLOW if decision.granted else DECISION_DENY
        self._count(kind)
        self.log.append(
            vnow=vnow,
            session=session,
            operation=decision.operation,
            key=key,
            decision=kind,
            policy_hash=policy_hash,
            clause_path=decision.clause_path,
            detail=decision.audit_detail(),
        )

    def record_shed(
        self,
        method: str,
        reason: str,
        session: str,
        key: str,
        vnow: float,
    ) -> None:
        """An admission shed: policy evaluation never ran at all."""
        self._count(DECISION_SHED)
        self.log.append(
            vnow=vnow,
            session=session,
            operation=method,
            key=key,
            decision=DECISION_SHED,
            detail=reason,
        )

    def record_pin(
        self, vnow: float, epoch: int, root: str, event: str
    ) -> None:
        """One freshness root pin (counter advance), hash-chained.

        The pinned root rides in ``policy_hash`` (it is a digest of
        enclave-attested state, same trust class) and the epoch in the
        key column, so the chain answers "what root was pinned at
        counter value N?" tamper-evidently.
        """
        self._count(DECISION_PIN)
        self.log.append(
            vnow=vnow,
            session="",
            operation="pin",
            key=f"epoch:{epoch}",
            decision=DECISION_PIN,
            policy_hash=root,
            detail=event,
        )

    def record_fork(self, vnow: float, reason: str) -> None:
        """Startup fork detection refused to serve."""
        self._count(DECISION_FORK)
        self.log.append(
            vnow=vnow,
            session="",
            operation="bootstrap",
            key="",
            decision=DECISION_FORK,
            detail=reason,
        )

    def _count(self, decision: str) -> None:
        self.decisions_by_kind[decision] = (
            self.decisions_by_kind.get(decision, 0) + 1
        )

    # -- inspection --------------------------------------------------------

    @property
    def head(self) -> str:
        return self.log.head

    def verify(self) -> dict:
        return self.log.verify()

    def snapshot(self, limit: int = 64, verify: bool = False) -> dict:
        """The ``GET /_audit`` payload."""
        payload = self.log.snapshot(limit)
        payload["decisions"] = dict(sorted(self.decisions_by_kind.items()))
        if verify:
            payload["verification"] = self.verify()
        return payload

    # -- exposition --------------------------------------------------------

    def _metric_families(self):
        yield MetricFamily(
            name="pesos_audit_records_total",
            kind="counter",
            help="Policy-decision records appended to the audit chain.",
            samples=[
                Sample("pesos_audit_records_total", {}, float(len(self.log)))
            ],
        )
        yield MetricFamily(
            name="pesos_audit_chain_head",
            kind="gauge",
            help="Current audit-chain head digest (as the single sample's "
            "label; the value is the chain length it commits to).",
            samples=[
                Sample(
                    "pesos_audit_chain_head",
                    {"digest": self.log.head},
                    float(len(self.log)),
                )
            ],
        )
        yield MetricFamily(
            name="pesos_audit_decisions_total",
            kind="counter",
            help="Audited decisions, by kind.",
            samples=[
                Sample(
                    "pesos_audit_decisions_total", {"decision": kind}, count
                )
                for kind, count in sorted(self.decisions_by_kind.items())
            ],
        )


__all__ = [
    "DECISION_ALLOW",
    "DECISION_DENY",
    "DECISION_FORK",
    "DECISION_PIN",
    "DECISION_SHED",
    "PolicyAuditor",
]
