"""Span-based request tracing.

A *span* covers one timed region of the request path; spans nest, so a
completed root span is a tree: ``http.request`` over
``controller.handle`` over ``store.read_value`` over ``kinetic.get``.
Each span carries attributes (operation, key, byte counts), a
wall-clock duration, and — when the tracer has a virtual clock, as the
discrete-event benchmarks do — a virtual-time duration as well.

The tracer keeps a bounded ring of recent completed traces plus a
separate *slow log* of root spans that exceeded a configurable
threshold, so an operator can always answer "what did the last slow
request spend its time on" from the ``/_traces`` admin endpoint.

Single-threaded by design, like the controller it instruments: the
active-span stack is a plain list, not a contextvar.
"""

from __future__ import annotations

import itertools
import time
from collections import deque


class Span:
    """One timed region; completed spans form a tree via ``children``."""

    __slots__ = (
        "name", "attributes", "children", "trace_id", "error",
        "start_wall", "end_wall", "start_virtual", "end_virtual",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer", trace_id: int,
                 attributes: dict):
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.trace_id = trace_id
        self.error = ""
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_virtual: float | None = None
        self.end_virtual: float | None = None
        self._tracer = tracer

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and not self.error:
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False

    # -- recording --------------------------------------------------------

    def set(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return max(0.0, self.end_wall - self.start_wall)

    @property
    def virtual_duration(self) -> float | None:
        if self.start_virtual is None or self.end_virtual is None:
            return None
        return self.end_virtual - self.start_virtual

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def op(self) -> str:
        """Operation / request-class label for slow-log attribution.

        Root spans of the request path carry the method as an
        attribute (``http.request`` sets ``method``; explicit ``op``
        wins); the span name is the fallback so infrastructure spans
        stay attributable too.
        """
        value = self.attributes.get("op") or self.attributes.get("method")
        return str(value) if value else self.name

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "op": self.op,
            "duration_s": self.duration,
            "attributes": self.attributes,
            "children": [child.to_dict() for child in self.children],
        }
        if self.virtual_duration is not None:
            record["virtual_duration_s"] = self.virtual_duration
        if self.error:
            record["error"] = self.error
        return record


class _NullSpan:
    """Reusable no-op span so disabled tracing costs one attr lookup."""

    __slots__ = ()
    name = ""
    op = ""
    trace_id = 0
    attributes: dict = {}
    children: list = []
    duration = 0.0
    virtual_duration = None
    error = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees and retains recent / slow completed traces."""

    def __init__(
        self,
        clock=time.perf_counter,
        virtual_clock=None,
        ring_size: int = 128,
        slow_threshold: float | None = None,
        slow_log_size: int = 64,
    ):
        self.clock = clock
        #: Optional zero-argument callable returning virtual time (the
        #: benchmark environment's ``env.now``); may be (re)attached at
        #: any point via :meth:`set_virtual_clock`.
        self.virtual_clock = virtual_clock
        self.slow_threshold = slow_threshold
        self._stack: list[Span] = []
        self._recent: deque[Span] = deque(maxlen=ring_size)
        self._slow: deque[Span] = deque(maxlen=slow_log_size)
        self._trace_ids = itertools.count(1)
        self.spans_started = 0
        self.traces_completed = 0

    def set_virtual_clock(self, virtual_clock) -> None:
        self.virtual_clock = virtual_clock

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, **attributes) -> Span:
        """Create a span; use as ``with tracer.span("x") as span:``."""
        if self._stack:
            trace_id = self._stack[-1].trace_id
        else:
            trace_id = next(self._trace_ids)
        return Span(name, self, trace_id, attributes)

    def _push(self, span: Span) -> None:
        span.start_wall = self.clock()
        if self.virtual_clock is not None:
            span.start_virtual = self.virtual_clock()
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        self.spans_started += 1

    def _pop(self, span: Span) -> None:
        span.end_wall = self.clock()
        if self.virtual_clock is not None:
            span.end_virtual = self.virtual_clock()
        # Unwind to the matching frame; tolerates a child left open by
        # an exception the parent's __exit__ is already handling.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack:
            self._complete(span)

    def _complete(self, root: Span) -> None:
        self._recent.append(root)
        self.traces_completed += 1
        if (
            self.slow_threshold is not None
            and root.duration >= self.slow_threshold
        ):
            self._slow.append(root)

    # -- inspection --------------------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def recent(self, limit: int | None = None) -> list:
        """Most recent completed traces, newest last."""
        traces = list(self._recent)
        return traces if limit is None else traces[-limit:]

    def slow(self) -> list:
        """Slow-log contents, newest last."""
        return list(self._slow)

    def find(self, trace_id: int) -> Span | None:
        """Resolve a retained trace by id (SLO exemplars point here)."""
        for span in reversed(self._recent):
            if span.trace_id == trace_id:
                return span
        for span in reversed(self._slow):
            if span.trace_id == trace_id:
                return span
        return None

    def reset(self) -> None:
        self._stack.clear()
        self._recent.clear()
        self._slow.clear()
