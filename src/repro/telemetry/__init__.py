"""Unified telemetry: metrics registry + request tracer + exposition.

One :class:`Telemetry` object bundles what a component needs to be
observable — a :class:`~repro.telemetry.metrics.MetricsRegistry` for
counters/gauges/histograms and a :class:`~repro.telemetry.tracing.Tracer`
for span trees — behind a facade small enough to thread through every
layer of the request path.

:class:`NullTelemetry` is the default everywhere: every instrument it
hands out is a shared no-op, so the uninstrumented hot path costs a
constant attribute lookup and benchmark numbers are unaffected.  Code
therefore never guards instrumentation with ``if telemetry:`` — it
just records, and the null objects swallow it.

Usage::

    telemetry = Telemetry()
    controller = PesosController(clients, telemetry=telemetry)
    server = WebServer(controller)          # inherits the telemetry
    ...
    print(render_prometheus(telemetry.registry))
"""

from __future__ import annotations

from repro.telemetry.exposition import (
    registry_to_dict,
    render_json,
    render_prometheus,
    render_traces_json,
    traces_to_dict,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_REGISTRY,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer


class Telemetry:
    """A live registry + tracer pair handed through the request path."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slow_threshold: float | None = None,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(slow_threshold=slow_threshold)

    # -- instruments -----------------------------------------------------

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple = ()) -> Counter:
        return self.registry.counter(name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self.registry.gauge(name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple = (),
                  buckets: tuple | None = None) -> Histogram:
        return self.registry.histogram(name, help_text, labelnames, buckets)

    def register_callback(self, callback) -> None:
        self.registry.register_callback(callback)

    # -- tracing ----------------------------------------------------------

    def span(self, name: str, **attributes) -> Span:
        return self.tracer.span(name, **attributes)


class _NullInstrument:
    """One shared object impersonating every disabled instrument."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, *_values) -> "_NullInstrument":
        return self

    def inc(self, _amount: float = 1) -> None:
        pass

    def dec(self, _amount: float = 1) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass

    def percentile(self, _pct: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """Disabled telemetry: all instruments and spans are no-ops."""

    enabled = False
    registry = None
    tracer = None

    def counter(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_callback(self, _callback) -> None:
        pass

    def span(self, _name: str, **_attributes):
        return NULL_SPAN


#: Shared default instance; components fall back to this when no
#: telemetry is passed, keeping the hot path free of real recording.
NULL_TELEMETRY = NullTelemetry()


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_REGISTRY",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Sample",
    "Span",
    "Telemetry",
    "Tracer",
    "registry_to_dict",
    "render_json",
    "render_prometheus",
    "render_traces_json",
    "traces_to_dict",
]
