"""Unified telemetry: metrics registry + request tracer + exposition.

One :class:`Telemetry` object bundles what a component needs to be
observable — a :class:`~repro.telemetry.metrics.MetricsRegistry` for
counters/gauges/histograms and a :class:`~repro.telemetry.tracing.Tracer`
for span trees — behind a facade small enough to thread through every
layer of the request path.

:class:`NullTelemetry` is the default everywhere: every instrument it
hands out is a shared no-op, so the uninstrumented hot path costs a
constant attribute lookup and benchmark numbers are unaffected.  Code
therefore never guards instrumentation with ``if telemetry:`` — it
just records, and the null objects swallow it.

Usage::

    telemetry = Telemetry()
    controller = PesosController(clients, telemetry=telemetry)
    server = WebServer(controller)          # inherits the telemetry
    ...
    print(render_prometheus(telemetry.registry))
"""

from __future__ import annotations

from repro.telemetry.exposition import (
    registry_to_dict,
    render_families,
    render_json,
    render_prometheus,
    render_traces_json,
    traces_to_dict,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_REGISTRY,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.slo import SloEngine, SloSpec, classify, default_slos
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer


class Telemetry:
    """A live registry + tracer pair handed through the request path."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slow_threshold: float | None = None,
        slo: SloEngine | None = None,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(slow_threshold=slow_threshold)
        #: Optional SLO engine (:mod:`repro.telemetry.slo`); attach one
        #: to make ``record_request`` fold completions into error
        #: budgets and to land budget/burn gauges on ``/_metrics``.
        self.slo: SloEngine | None = None
        if slo is not None:
            self.attach_slo(slo)

    def attach_slo(self, slo: SloEngine | None = None) -> SloEngine:
        """Attach (or create) the SLO engine and register its gauges."""
        self.slo = slo or SloEngine()
        self.slo.register(self.registry)
        return self.slo

    def record_request(
        self,
        method: str,
        ok: bool,
        latency: float,
        vnow: float,
        trace_id=None,
    ) -> None:
        """Fold one finished request into the SLO engine (if attached)."""
        if self.slo is not None:
            self.slo.record(method, ok, latency, vnow, trace_id)

    # -- instruments -----------------------------------------------------

    def counter(self, name: str, help_text: str = "",
                labelnames: tuple = ()) -> Counter:
        return self.registry.counter(name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self.registry.gauge(name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple = (),
                  buckets: tuple | None = None) -> Histogram:
        return self.registry.histogram(name, help_text, labelnames, buckets)

    def register_callback(self, callback) -> None:
        self.registry.register_callback(callback)

    # -- tracing ----------------------------------------------------------

    def span(self, name: str, **attributes) -> Span:
        return self.tracer.span(name, **attributes)


class _NullInstrument:
    """One shared object impersonating every disabled instrument."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, *_values) -> "_NullInstrument":
        return self

    def inc(self, _amount: float = 1) -> None:
        pass

    def dec(self, _amount: float = 1) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass

    def percentile(self, _pct: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """Disabled telemetry: all instruments and spans are no-ops."""

    enabled = False
    registry = None
    tracer = None
    slo = None

    def attach_slo(self, _slo=None) -> None:
        return None

    def record_request(self, *_args, **_kwargs) -> None:
        pass

    def counter(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, *_args, **_kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_callback(self, _callback) -> None:
        pass

    def span(self, _name: str, **_attributes):
        return NULL_SPAN


#: Shared default instance; components fall back to this when no
#: telemetry is passed, keeping the hot path free of real recording.
NULL_TELEMETRY = NullTelemetry()


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_REGISTRY",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Sample",
    "SloEngine",
    "SloSpec",
    "Span",
    "Telemetry",
    "Tracer",
    "classify",
    "default_slos",
    "registry_to_dict",
    "render_families",
    "render_json",
    "render_prometheus",
    "render_traces_json",
    "traces_to_dict",
]
