"""Exception hierarchy for the Pesos reproduction.

Every subsystem raises exceptions rooted at :class:`PesosError` so callers
can catch broadly (``except PesosError``) or narrowly (e.g.
``except PolicyDenied``).  Wire-visible errors carry an HTTP-style status
code used by the REST layer when rendering responses.
"""

from __future__ import annotations


class PesosError(Exception):
    """Base class for every error raised by this library."""

    #: HTTP-style status code used when the error crosses the REST boundary.
    status = 500


class ConfigurationError(PesosError):
    """A component was constructed with invalid or inconsistent parameters."""


# --------------------------------------------------------------------------
# Crypto / attestation
# --------------------------------------------------------------------------

class CryptoError(PesosError):
    """Cryptographic operation failed (bad key size, tag mismatch, ...)."""


class IntegrityError(CryptoError):
    """Authenticated decryption or signature verification failed."""

    status = 400


class CertificateError(CryptoError):
    """Certificate is malformed, expired, or its chain does not verify."""

    status = 403


class AttestationError(PesosError):
    """Remote attestation failed: wrong measurement, bad quote, or replay."""

    status = 403


# --------------------------------------------------------------------------
# Kinetic storage
# --------------------------------------------------------------------------

class KineticError(PesosError):
    """Base class for Kinetic drive / protocol errors."""


class KineticAuthError(KineticError):
    """Request HMAC did not verify or the identity lacks permission."""

    status = 401


class KineticVersionMismatch(KineticError):
    """A versioned PUT/DELETE supplied a stale dbVersion."""

    status = 409


class KineticNotFound(KineticError):
    """The requested key does not exist on the drive."""

    status = 404


class DriveOffline(KineticError):
    """The target drive failed or was administratively taken offline."""

    status = 503


class TransientIOError(KineticError):
    """A request was lost in flight (dropped connection, I/O hiccup).

    Raised *before* the drive applied the operation, so retrying is
    always safe; :class:`repro.kinetic.retry.RetryPolicy` retries these
    by default.
    """

    status = 503


class ReplicationDegraded(DriveOffline):
    """A write could not reach its configured replica quorum.

    Subclasses :class:`DriveOffline` so callers that already handle
    total drive loss keep working; carries a ``retry_after`` hint the
    REST layer surfaces as a ``Retry-After`` header.
    """

    status = 503
    retry_after = 1.0


# --------------------------------------------------------------------------
# Policy engine
# --------------------------------------------------------------------------

class PolicyError(PesosError):
    """Base class for policy language errors."""


class PolicySyntaxError(PolicyError):
    """The policy source text failed to lex or parse."""

    status = 400

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class PolicyCompileError(PolicyError):
    """The AST could not be compiled (unknown predicate, arity mismatch)."""

    status = 400


class PolicyFormatError(PolicyError):
    """A compiled binary policy blob is corrupt or has a bad version."""

    status = 400


class PolicyDenied(PolicyError):
    """Policy evaluation denied the requested operation."""

    status = 403


# --------------------------------------------------------------------------
# Controller / API
# --------------------------------------------------------------------------

class RequestError(PesosError):
    """Malformed client request (missing parameter, bad method...)."""

    status = 400


class SessionError(PesosError):
    """Client session is missing, expired, or failed authentication."""

    status = 401


class ObjectNotFound(PesosError):
    """The requested object key does not exist in the store."""

    status = 404


class VersionConflict(PesosError):
    """An optimistic versioned update lost the race."""

    status = 409


class TransactionError(PesosError):
    """Transaction aborted or used illegally (e.g. op after commit)."""

    status = 409


class ResultExpired(PesosError):
    """An async operation result was evicted from the result buffer."""

    status = 410


# --------------------------------------------------------------------------
# Freshness / rollback protection
# --------------------------------------------------------------------------

class FreshnessError(PesosError):
    """Base class for authenticated-freshness violations."""


class StaleReplica(FreshnessError):
    """Every reachable replica served data older than the pinned root.

    The record decrypted and authenticated perfectly — it is a real
    blob this controller once wrote — but its digest does not match
    the Merkle leaf pinned by the sealed monotonic counter, so serving
    it would silently undo an acknowledged write.  Retryable: the
    fresh replica may only be transiently unreachable.
    """

    status = 503
    retry_after = 1.0


class ForkDetected(FreshnessError):
    """Drive or sealed state proves a root the counter never pinned.

    Raised at controller startup when fork detection fails (the cloud
    restored an old fleet snapshot, or replayed a stale sealed pin),
    and on every subsequent request while the controller refuses to
    serve.  Not retryable without operator intervention.
    """

    status = 503


# --------------------------------------------------------------------------
# Admission control / overload protection
# --------------------------------------------------------------------------

class OverloadShed(PesosError):
    """Admission control refused the request before it executed.

    Shedding happens strictly *before* any side effect, so a shed
    request was never applied and retrying is always safe.  Carries a
    ``retry_after`` hint (seconds) the REST layer renders as a
    ``Retry-After`` header, exactly like :class:`ReplicationDegraded`.
    """

    status = 503
    retry_after = 1.0

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        if retry_after is not None:
            self.retry_after = retry_after


class RateLimited(OverloadShed):
    """A per-session token bucket ran dry (client-attributable load)."""

    status = 429
