"""Userspace (green) threading, as Scone provides it inside enclaves.

SGX enclaves fix their hardware thread count at build time, so Scone
multiplexes many userspace threads onto few enclave threads.  A green
thread runs until its next *preemption point* — a system-call
submission — then yields back to the scheduler, which dispatches
another runnable thread instead of idling through the syscall (§4.6).

Tasks are Python generators that yield ``("syscall", operation, args)``
tuples; the scheduler submits these through an
:class:`~repro.sgx.syscalls.AsyncSyscallInterface` and resumes the
task with the result once the untrusted worker completes it.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.errors import ConfigurationError
from repro.sgx.syscalls import AsyncSyscallInterface


class DispatchSchedule:
    """Seeded, replayable dispatch-order source.

    Each scheduling decision — "which of the ``n`` runnable threads
    runs next?" — is a pure function of ``(seed, decision counter)``
    through a counter-based PRF, exactly like the fault schedules in
    :mod:`repro.faults.schedule`.  Two schedules built from the same
    seed therefore make identical choices, so any interleaving a test
    or benchmark observes can be replayed from its seed alone.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._steps = itertools.count()

    def pick(self, n: int) -> int:
        """Index of the runnable thread to dispatch, in ``[0, n)``."""
        step = next(self._steps)
        if n <= 1:
            return 0
        digest = hashlib.sha256(
            f"{self.seed}:{step}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % n

    def reset(self) -> None:
        """Rewind the decision counter (fresh replay, same timeline)."""
        self._steps = itertools.count()


@dataclass
class GreenThread:
    """One userspace thread: a generator plus bookkeeping."""

    tid: int
    generator: Generator
    waiting_slot: int | None = None
    finished: bool = False
    result: Any = None
    error: BaseException | None = None
    context_switches: int = 0


class UserspaceScheduler:
    """Round-robin cooperative scheduler over an async syscall interface."""

    def __init__(
        self,
        syscalls: AsyncSyscallInterface,
        hardware_threads: int = 4,
        schedule: DispatchSchedule | None = None,
        before_worker: Callable[[], None] | None = None,
    ):
        if hardware_threads < 1:
            raise ConfigurationError("need at least one hardware thread")
        self.syscalls = syscalls
        self.hardware_threads = hardware_threads
        #: When set, dispatch order among runnable threads is driven by
        #: this seeded schedule instead of plain FIFO; the log below
        #: then replays identically for the same seed.
        self.schedule = schedule
        #: Hook run after a dispatch round, before the untrusted worker
        #: drains the submission queue (used to coalesce submissions).
        self.before_worker = before_worker
        self._threads: dict[int, GreenThread] = {}
        self._runnable: deque[int] = deque()
        self._blocked: dict[int, int] = {}  # slot -> tid
        self._next_tid = 0
        self.total_context_switches = 0
        #: Every scheduling event, in order: ``("dispatch", tid)`` when
        #: a runnable thread gets a hardware thread, ``("resume", tid)``
        #: when a completed syscall unblocks one.  The replayable record
        #: the determinism tests compare across runs.
        self.dispatch_log: list[tuple[str, int]] = []
        #: Concurrency-sanitizer hooks; the shared no-op by default.
        #: Dispatch events give the shadow state its "current thread"
        #: attribution (only one green thread runs at a time).
        self.sanitizer = NULL_SANITIZER

    def spawn(self, generator: Generator) -> GreenThread:
        """Register a new green thread; it runs on the next step."""
        thread = GreenThread(tid=self._next_tid, generator=generator)
        self._next_tid += 1
        self._threads[thread.tid] = thread
        self._runnable.append(thread.tid)
        return thread

    @property
    def alive(self) -> int:
        return sum(1 for t in self._threads.values() if not t.finished)

    def step(self) -> bool:
        """Run one scheduling round; returns False when all threads done.

        A round dispatches up to ``hardware_threads`` runnable threads
        to their next preemption point, then lets the untrusted worker
        drain the submission queue and unblocks completed waiters.
        """
        dispatched = 0
        while self._runnable and dispatched < self.hardware_threads:
            tid = self._pick_runnable()
            self.dispatch_log.append(("dispatch", tid))
            self._run_until_preemption(self._threads[tid], send_value=None)
            dispatched += 1

        if self.before_worker is not None:
            self.before_worker()
        # Outside the enclave: syscall threads execute submitted calls.
        self.syscalls.run_worker()

        # Back inside: resume threads whose syscalls completed.
        while True:
            request = self.syscalls.poll()
            if request is None:
                break
            tid = self._blocked.pop(request.slot)
            thread = self._threads[tid]
            thread.waiting_slot = None
            self.dispatch_log.append(("resume", tid))
            if request.error is not None:
                self._throw_into(thread, request.error)
            else:
                self._run_until_preemption(thread, send_value=request.result)
        return self.alive > 0

    def _pick_runnable(self) -> int:
        """Next runnable tid: FIFO, or schedule-driven when seeded."""
        if self.schedule is None or len(self._runnable) == 1:
            return self._runnable.popleft()
        index = self.schedule.pick(len(self._runnable))
        self._runnable.rotate(-index)
        tid = self._runnable.popleft()
        self._runnable.rotate(index)
        return tid

    def run_to_completion(self, max_rounds: int = 100_000) -> None:
        """Step until every green thread finishes."""
        for _ in range(max_rounds):
            if not self.step():
                return
        raise ConfigurationError("scheduler did not converge (livelock?)")

    # -- internals --------------------------------------------------------

    def _run_until_preemption(self, thread: GreenThread, send_value: Any) -> None:
        thread.context_switches += 1
        self.total_context_switches += 1
        self.sanitizer.on_dispatch(thread.tid)
        try:
            yielded = thread.generator.send(send_value)
        except StopIteration as stop:
            thread.finished = True
            thread.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            thread.finished = True
            thread.error = exc
            return
        self._handle_yield(thread, yielded)

    def _throw_into(self, thread: GreenThread, error: BaseException) -> None:
        thread.context_switches += 1
        self.total_context_switches += 1
        self.sanitizer.on_dispatch(thread.tid)
        try:
            yielded = thread.generator.throw(error)
        except StopIteration as stop:
            thread.finished = True
            thread.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001
            thread.finished = True
            thread.error = exc
            return
        self._handle_yield(thread, yielded)

    def _handle_yield(self, thread: GreenThread, yielded: Any) -> None:
        if (
            isinstance(yielded, tuple)
            and len(yielded) >= 2
            and yielded[0] == "syscall"
        ):
            operation = yielded[1]
            args = yielded[2] if len(yielded) > 2 else ()
            slot = self.syscalls.submit(operation, *args)
            thread.waiting_slot = slot
            self._blocked[slot] = thread.tid
        elif yielded == "yield":
            # Voluntary reschedule without a syscall.
            self._runnable.append(thread.tid)
        else:
            thread.finished = True
            thread.error = ConfigurationError(
                f"green thread yielded unknown value {yielded!r}"
            )
