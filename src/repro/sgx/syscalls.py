"""Asynchronous system-call interface (FlexSC / Scone style).

Trap instructions are illegal inside an enclave; a synchronous call
therefore costs an enclave exit + re-enter.  Scone instead passes
syscalls through shared memory: the in-enclave wrapper writes arguments
into a *slot*, pushes the slot index onto a submission queue, and an
untrusted runtime thread outside the enclave executes the call and
pushes the index back on a return queue (§4.6).

This module implements that machinery functionally — real slots, real
queues, an untrusted worker that executes Python callables — so tests
can demonstrate ordering, slot reuse, and shield behaviour.  Benchmarks
charge per-call virtual-time costs from the cost model instead of
running the worker.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError, PesosError
from repro.telemetry import NULL_TELEMETRY


class SyscallQueueFull(PesosError):
    """All syscall slots are in flight; the caller must back off."""


@dataclass
class SyscallRequest:
    """One in-flight system call occupying a slot."""

    slot: int
    operation: str
    args: tuple = ()
    shielded_args: tuple = ()
    result: Any = None
    error: BaseException | None = None
    done: bool = False


@dataclass
class Shield:
    """Transparent argument protection (Scone file shields).

    ``protect`` is applied to arguments on submission and ``unprotect``
    to results on completion — modelling transparent encryption of data
    written through syscalls plus basic Iago-attack validation of
    results (e.g. a read must not return more than was asked).
    """

    protect: Callable[[Any], Any] = lambda value: value
    unprotect: Callable[[Any], Any] = lambda value: value
    validate: Callable[[SyscallRequest], None] = lambda request: None


class AsyncSyscallInterface:
    """Slots + submission/return queues between enclave and runtime."""

    def __init__(self, num_slots: int = 64, shield: Shield | None = None,
                 telemetry=None):
        if num_slots < 1:
            raise ConfigurationError("need at least one syscall slot")
        self._slots: list[SyscallRequest | None] = [None] * num_slots
        self._free: deque[int] = deque(range(num_slots))
        self._submission: deque[int] = deque()
        self._returns: deque[int] = deque()
        self._shield = shield or Shield()
        self._handlers: dict[str, Callable[..., Any]] = {}
        self.submitted = 0
        self.completed = 0
        #: Batched-submission accounting (see :meth:`coalesce_submissions`):
        #: how many grouped submissions the untrusted worker received,
        #: and how many individual calls rode along in an existing group.
        self.batched_submissions = 0
        self.coalesced_calls = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_syscalls = self.telemetry.counter(
            "pesos_sgx_syscalls_total",
            "Async syscall interface activity, by phase and operation.",
            ("phase", "operation"),
        )

    # -- untrusted-runtime side ------------------------------------------

    def register_handler(self, operation: str, handler: Callable[..., Any]) -> None:
        """Install the untrusted implementation of an operation."""
        self._handlers[operation] = handler

    def run_worker(self, max_calls: int | None = None) -> int:
        """Drain the submission queue like a syscall thread; returns count."""
        executed = 0
        while self._submission and (max_calls is None or executed < max_calls):
            slot_index = self._submission.popleft()
            request = self._slots[slot_index]
            assert request is not None, "submitted slot must be populated"
            handler = self._handlers.get(request.operation)
            try:
                if handler is None:
                    raise PesosError(f"ENOSYS: {request.operation}")
                request.result = handler(*request.shielded_args)
            except BaseException as exc:  # noqa: BLE001 - errno semantics
                request.error = exc
            request.done = True
            self._returns.append(slot_index)
            executed += 1
        return executed

    def coalesce_submissions(
        self, key_fn: Callable[[SyscallRequest], Any]
    ) -> int:
        """Stably group queued submissions by ``key_fn`` before the worker.

        Calls heading to the same destination (e.g. the same Kinetic
        drive) become one *batched submission*: the queue is reordered
        so equal-key entries are adjacent — first-appearance order of
        keys and the relative order within a key are both preserved, so
        the result is a pure function of the queue contents and the
        grouping stays replayable.  Returns the number of groups; the
        ``batched_submissions`` / ``coalesced_calls`` counters record
        how much submission traffic the batching saved.
        """
        if len(self._submission) < 2:
            groups = len(self._submission)
            self.batched_submissions += groups
            return groups
        buckets: dict[Any, list[int]] = {}
        for slot_index in self._submission:
            request = self._slots[slot_index]
            assert request is not None, "submitted slot must be populated"
            buckets.setdefault(key_fn(request), []).append(slot_index)
        self._submission.clear()
        for slots in buckets.values():
            self._submission.extend(slots)
            self.batched_submissions += 1
            self.coalesced_calls += len(slots) - 1
        return len(buckets)

    # -- enclave side -------------------------------------------------------

    def submit(self, operation: str, *args: Any) -> int:
        """Populate a slot and enqueue it; returns the slot index."""
        if not self._free:
            raise SyscallQueueFull("no free syscall slots")
        slot_index = self._free.popleft()
        shielded = tuple(self._shield.protect(arg) for arg in args)
        self._slots[slot_index] = SyscallRequest(
            slot=slot_index, operation=operation, args=args, shielded_args=shielded
        )
        self._submission.append(slot_index)
        self.submitted += 1
        self._m_syscalls.labels("submitted", operation).inc()
        return slot_index

    def poll(self) -> SyscallRequest | None:
        """Pop one completed request from the return queue, if any."""
        if not self._returns:
            return None
        slot_index = self._returns.popleft()
        request = self._slots[slot_index]
        assert request is not None and request.done
        self._shield.validate(request)
        if request.error is None:
            request.result = self._shield.unprotect(request.result)
        self._slots[slot_index] = None
        self._free.append(slot_index)
        self.completed += 1
        self._m_syscalls.labels("completed", request.operation).inc()
        return request

    def call(self, operation: str, *args: Any) -> Any:
        """Submit + run worker + poll: the synchronous convenience path."""
        self.submit(operation, *args)
        self.run_worker()
        request = self.poll()
        assert request is not None
        if request.error is not None:
            raise request.error
        return request.result

    @property
    def in_flight(self) -> int:
        return len(self._slots) - len(self._free)
