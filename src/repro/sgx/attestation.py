"""Remote attestation: platforms, quotes, and the attestation service.

The flow mirrors Scone's secure-deployment service (§3.1 bootstrap):

1. The operator registers an expected enclave *measurement* together
   with the encrypted runtime secrets (TLS keypair, Kinetic disk
   credentials) at the :class:`AttestationService`.
2. A platform (CPU) runs the enclave and produces a :class:`Quote` —
   the measurement plus report data, signed by the platform's quoting
   key (the EPID/DCAP stand-in).
3. The service verifies the platform signature against known-genuine
   platforms and compares the measurement; only then does it release
   the secrets, encrypted to the key in the quote's report data.

A tampered binary changes the measurement and is refused; an unknown
platform (no genuine SGX) fails signature verification.
"""

from __future__ import annotations

import hashlib
import json
import secrets
from dataclasses import dataclass

from repro.crypto.gcm import AesGcm
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.errors import AttestationError, CryptoError
from repro.sgx.enclave import Enclave, EnclaveBinary
from repro.telemetry import NULL_TELEMETRY


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement from a platform."""

    measurement: str
    report_data: bytes  # enclave-chosen binding, e.g. a public key hash
    platform_id: str
    signature: bytes

    def signed_payload(self) -> bytes:
        return json.dumps(
            {
                "measurement": self.measurement,
                "report_data": self.report_data.hex(),
                "platform_id": self.platform_id,
            },
            sort_keys=True,
        ).encode()


class SgxPlatform:
    """One SGX-capable machine: root sealing key + quoting key."""

    def __init__(self, platform_id: str, key_bits: int = 1024):
        self.platform_id = platform_id
        self.root_key = secrets.token_bytes(32)
        self._quoting_key: RsaPrivateKey = generate_keypair(bits=key_bits)

    @property
    def quoting_public_key(self) -> RsaPublicKey:
        return self._quoting_key.public_key

    def launch(self, binary: EnclaveBinary, heap_bytes: int = 64 << 20) -> Enclave:
        """Load a binary into a fresh enclave on this platform."""
        return Enclave(
            binary=binary, platform_root_key=self.root_key, heap_bytes=heap_bytes
        )

    def quote(self, enclave: Enclave, report_data: bytes) -> Quote:
        """Produce a quote for an enclave running on this platform."""
        if enclave.platform_root_key != self.root_key:
            raise AttestationError("enclave does not run on this platform")
        unsigned = Quote(
            measurement=enclave.measurement,
            report_data=report_data,
            platform_id=self.platform_id,
            signature=b"",
        )
        signature = self._quoting_key.sign(unsigned.signed_payload())
        return Quote(
            measurement=unsigned.measurement,
            report_data=unsigned.report_data,
            platform_id=unsigned.platform_id,
            signature=signature,
        )


@dataclass
class _Registration:
    measurement: str
    secrets: dict
    attest_count: int = 0


class AttestationService:
    """Verifies quotes and provisions runtime secrets (Scone CAS stand-in)."""

    def __init__(self, telemetry=None) -> None:
        self._platforms: dict[str, RsaPublicKey] = {}
        self._registrations: dict[str, _Registration] = {}
        self.audit_log: list[dict] = []
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_attestations = self.telemetry.counter(
            "pesos_attestation_events_total",
            "Attestation attempts against the service, by outcome.",
            ("outcome",),
        )

    # -- operator-facing -------------------------------------------------

    def trust_platform(self, platform: SgxPlatform) -> None:
        """Record a platform's quoting key as genuine."""
        self._platforms[platform.platform_id] = platform.quoting_public_key

    def register_enclave(self, measurement: str, runtime_secrets: dict) -> None:
        """Bind runtime secrets to an expected measurement."""
        self._registrations[measurement] = _Registration(
            measurement=measurement, secrets=dict(runtime_secrets)
        )

    # -- enclave-facing ---------------------------------------------------

    def attest(self, quote: Quote, response_key: bytes) -> bytes:
        """Verify ``quote``; return secrets sealed under ``response_key``.

        ``response_key`` is a 16-byte AES key whose SHA-256 the enclave
        placed in the quote's report data, binding the response to the
        attested enclave.  Raises :class:`AttestationError` otherwise.
        """
        platform_key = self._platforms.get(quote.platform_id)
        if platform_key is None:
            self._log(quote, "unknown-platform")
            raise AttestationError(f"unknown platform {quote.platform_id!r}")
        if not platform_key.verify(quote.signed_payload(), quote.signature):
            self._log(quote, "bad-signature")
            raise AttestationError("quote signature invalid")
        registration = self._registrations.get(quote.measurement)
        if registration is None:
            self._log(quote, "unknown-measurement")
            raise AttestationError(
                f"measurement {quote.measurement[:16]}... not registered"
            )
        if hashlib.sha256(response_key).digest() != quote.report_data:
            self._log(quote, "report-data-mismatch")
            raise AttestationError("response key not bound in report data")
        registration.attest_count += 1
        self._log(quote, "ok")
        nonce = secrets.token_bytes(12)
        payload = json.dumps(registration.secrets).encode()
        return nonce + AesGcm(response_key).seal(nonce, payload)

    @staticmethod
    def open_provisioned(blob: bytes, response_key: bytes) -> dict:
        """Enclave-side decryption of the attestation response."""
        if len(blob) < 12:
            raise AttestationError("provisioning blob truncated")
        nonce, sealed = blob[:12], blob[12:]
        try:
            return json.loads(AesGcm(response_key).open(nonce, sealed))
        except CryptoError as exc:
            raise AttestationError("cannot decrypt provisioning blob") from exc

    def _log(self, quote: Quote, outcome: str) -> None:
        self._m_attestations.labels(outcome).inc()
        self.audit_log.append(
            {
                "platform": quote.platform_id,
                "measurement": quote.measurement[:16],
                "outcome": outcome,
            }
        )


def attest_and_provision(
    service: AttestationService, platform: SgxPlatform, enclave: Enclave
) -> dict:
    """Full client-side attestation round-trip; provisions the enclave.

    Convenience wrapper performing steps 2-3 of the bootstrap flow.
    """
    response_key = secrets.token_bytes(16)
    quote = platform.quote(enclave, hashlib.sha256(response_key).digest())
    blob = service.attest(quote, response_key)
    provided = AttestationService.open_provisioned(blob, response_key)
    enclave.provision(provided)
    return provided
