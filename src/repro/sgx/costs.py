"""Cost model for shielded execution, charged in virtual time.

All values are seconds (virtual).  The SGX numbers follow the published
measurements the paper builds on: enclave transitions cost microseconds
(Scone/FlexSC motivation), asynchronous syscalls amortize most of that,
cross-boundary copies pay an encryption/copy penalty, and EPC paging is
2x-2000x an ordinary access (§2.1).

The *native* model zeroes every enclave-specific cost, which is exactly
how the paper builds its native comparison binary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs for one controller configuration."""

    name: str

    #: Base CPU time to parse + route one client request (HTTP, REST).
    request_parse: float = 2.0e-6
    #: CPU time per byte moved through the request path (memcpy, TLS).
    per_byte_copy: float = 0.30e-9
    #: CPU time to evaluate one compiled policy (cache hit path).
    policy_check: float = 0.8e-6
    #: CPU time to compile a policy from source.
    policy_compile: float = 40.0e-6
    #: CPU time to load + validate a compiled policy fetched from disk
    #: (binary decode, hash check, cache insertion).
    policy_load: float = 45.0e-6
    #: AES-GCM cost per byte for payload encryption (hardware AES-NI).
    encrypt_per_byte: float = 0.45e-9
    #: Fixed cost per AES-GCM operation (key schedule, tag).
    encrypt_fixed: float = 0.35e-6

    # -- enclave-specific ------------------------------------------------
    #: Synchronous syscall (enclave exit + re-enter).  Zero for native.
    syscall_sync: float = 0.0
    #: Asynchronous syscall submission (shared-memory slot + queue).
    syscall_async: float = 0.0
    #: Extra per-byte cost crossing the enclave boundary (copy + shield).
    boundary_per_byte: float = 0.0
    #: Cost of one EPC page fault (evict + encrypt + load + verify).
    epc_page_fault: float = 0.0
    #: Usable EPC bytes (None = unlimited, i.e. native).
    epc_limit: int | None = None

    #: Whether the async syscall interface is enabled (Scone default).
    async_syscalls: bool = True

    def syscall_cost(self) -> float:
        """Cost of issuing one system call under this configuration."""
        if self.syscall_sync == 0.0 and self.syscall_async == 0.0:
            return 0.0
        return self.syscall_async if self.async_syscalls else self.syscall_sync

    def copy_cost(self, nbytes: int) -> float:
        """Cost of moving ``nbytes`` through the request path."""
        return nbytes * (self.per_byte_copy + self.boundary_per_byte)

    def encryption_cost(self, nbytes: int) -> float:
        """Cost of AES-GCM over ``nbytes`` of payload."""
        return self.encrypt_fixed + nbytes * self.encrypt_per_byte

    def with_sync_syscalls(self) -> "CostModel":
        """Ablation: disable the async syscall interface."""
        return replace(self, name=self.name + "+sync", async_syscalls=False)


#: Native (non-SGX) controller build: no enclave overheads.
NATIVE_COSTS = CostModel(name="native")

#: SGX controller (Scone) build.  Transition and paging costs follow the
#: Scone paper's measurements on Skylake v1 SGX; the per-byte shield cost
#: reflects transparent encryption of data crossing the boundary.
SGX_COSTS = CostModel(
    name="sgx",
    syscall_sync=8.0e-6,
    syscall_async=1.1e-6,
    boundary_per_byte=0.25e-9,
    epc_page_fault=12.0e-6,
    epc_limit=96 * 1024 * 1024,
)
