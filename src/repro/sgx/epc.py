"""Enclave Page Cache model.

Current SGX hardware exposes ~96 MB of usable EPC (§2.1, §4.2).  When an
enclave's resident working set exceeds that, the kernel driver pages
enclave memory to regular DRAM — encrypting on evict and verifying a
Merkle hash on reload — at a cost of 2x-2000x a normal access.

:class:`EpcModel` tracks resident 4 KB pages with LRU replacement and
reports the number of faults each memory access causes, which the
benchmark harness converts into virtual time via
:attr:`repro.sgx.costs.CostModel.epc_page_fault`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.telemetry import NULL_TELEMETRY

PAGE_SIZE = 4096


class EpcModel:
    """LRU-resident-set model of the enclave page cache.

    Addresses are abstract region names plus offsets: callers touch
    byte ranges of named regions (e.g. ``("object-cache", 0, 65536)``),
    and the model reports how many of those pages faulted.
    """

    def __init__(self, capacity_bytes: int | None, telemetry=None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError("EPC capacity must be positive")
        self.capacity_pages = (
            None if capacity_bytes is None else capacity_bytes // PAGE_SIZE
        )
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.total_faults = 0
        self.total_accesses = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_paging = self.telemetry.counter(
            "pesos_epc_page_events_total",
            "EPC page accesses and faults (evict+encrypt+reload).",
            ("event",),
        )

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * PAGE_SIZE

    def touch(self, region: str, offset: int, length: int) -> int:
        """Access ``length`` bytes of ``region`` at ``offset``.

        Returns the number of page faults this access incurred (0 when
        everything was resident or the EPC is unlimited).
        """
        if length <= 0:
            return 0
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        faults = 0
        for page_index in range(first, last + 1):
            self.total_accesses += 1
            key = (region, page_index)
            if key in self._resident:
                self._resident.move_to_end(key)
                continue
            if self.capacity_pages is not None:
                faults += 1
                while len(self._resident) >= self.capacity_pages:
                    self._resident.popitem(last=False)
            self._resident[key] = None
        self.total_faults += faults
        self._m_paging.labels("access").inc(last - first + 1)
        if faults:
            self._m_paging.labels("fault").inc(faults)
        return faults

    def evict_region(self, region: str) -> int:
        """Drop every resident page of ``region``; returns pages dropped."""
        victims = [key for key in self._resident if key[0] == region]
        for key in victims:
            del self._resident[key]
        return len(victims)

    def fault_rate(self) -> float:
        """Fraction of page accesses that faulted so far."""
        if not self.total_accesses:
            return 0.0
        return self.total_faults / self.total_accesses
