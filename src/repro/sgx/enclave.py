"""Enclave identity, measurement, and sealing.

An enclave's *measurement* (MRENCLAVE) is a hash over its initial code
and data.  We model the binary as an :class:`EnclaveBinary` blob; the
measurement is SHA-256 over its content, so any alteration of the
executable changes the identity — exactly the property the attestation
service relies on to detect tampered controllers.

Sealing binds secrets to the measurement: data sealed by one enclave
version cannot be unsealed by another (MRENCLAVE policy).
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.crypto.gcm import AesGcm
from repro.errors import AttestationError, CryptoError


@dataclass(frozen=True)
class EnclaveBinary:
    """The statically-linked executable loaded into the enclave.

    The paper's controller binary is 16 MB with 15 MB loaded into the
    enclave; we record the sizes so EPC accounting can include them.
    """

    name: str
    content: bytes
    enclave_bytes: int = 15 * 1024 * 1024
    outside_bytes: int = 1 * 1024 * 1024

    def measurement(self) -> str:
        """MRENCLAVE stand-in: hash of the loaded code and data."""
        header = f"{self.name}:{self.enclave_bytes}".encode()
        return hashlib.sha256(header + self.content).hexdigest()

    def tampered(self, patch: bytes = b"\x90") -> "EnclaveBinary":
        """A copy with altered content (for attack tests)."""
        return EnclaveBinary(
            name=self.name,
            content=patch + self.content,
            enclave_bytes=self.enclave_bytes,
            outside_bytes=self.outside_bytes,
        )


@dataclass
class MonotonicCounter:
    """A tamper-proof, strictly-increasing platform counter.

    Stand-in for the SGX platform-service monotonic counters (or the
    replay-protected NVRAM slot a lightweight-collective-memory
    deployment would use): the value survives enclave restarts and the
    host cannot wind it back.  The freshness layer increments it on
    every root pin and seals the current value next to the root hash,
    so a replayed sealed blob — correctly sealed, but stale — is
    detected by a counter mismatch at startup.

    The object models the *hardware* resource: tests pass the same
    instance across simulated controller restarts, exactly as the same
    physical NVRAM cell would persist.
    """

    value: int = 0
    #: Total increments ever issued (monotonicity audit for tests).
    bumps: int = 0

    def increment(self) -> int:
        """Advance and return the new value (never reorders, never wraps)."""
        self.value += 1
        self.bumps += 1
        return self.value

    def read(self) -> int:
        return self.value


@dataclass
class Enclave:
    """A running enclave instance on one platform.

    Holds the sealing key (derived from platform root key + measurement,
    as real SGX derives it via EGETKEY) and any runtime secrets the
    attestation service provisioned.
    """

    binary: EnclaveBinary
    platform_root_key: bytes
    heap_bytes: int = 64 * 1024 * 1024
    secrets: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.platform_root_key) != 32:
            raise CryptoError("platform root key must be 32 bytes")
        self.measurement = self.binary.measurement()
        self._sealing_key = hashlib.sha256(
            self.platform_root_key + bytes.fromhex(self.measurement)
        ).digest()[:16]

    # -- sealing ----------------------------------------------------------

    def seal(self, data: bytes) -> bytes:
        """Encrypt ``data`` so only this enclave identity can recover it."""
        nonce = secrets.token_bytes(12)
        return nonce + AesGcm(self._sealing_key).seal(nonce, data)

    def unseal(self, blob: bytes) -> bytes:
        """Recover sealed data; fails for a different measurement."""
        if len(blob) < 12:
            raise AttestationError("sealed blob truncated")
        nonce, payload = blob[:12], blob[12:]
        try:
            return AesGcm(self._sealing_key).open(nonce, payload)
        except CryptoError as exc:
            raise AttestationError(
                "unseal failed: data sealed by a different enclave"
            ) from exc

    # -- provisioning -------------------------------------------------------

    def provision(self, provided: dict) -> None:
        """Accept runtime secrets from the attestation service."""
        self.secrets.update(provided)

    def memory_footprint(self, caches_bytes: int = 0) -> int:
        """Total enclave memory: binary + heap in use."""
        return self.binary.enclave_bytes + caches_bytes
