"""Scone file-system shields (§4.6).

"In addition to the passing of system calls, Scone incorporates
shields that transparently encrypt system call arguments such as data
written to the local file system.  Furthermore, these shields perform
basic verification of arguments to prevent information leakage and
Iago attacks."

:class:`ShieldedFileSystem` is that shield around an untrusted host
file system (here a :class:`HostFileSystem` the adversary controls):

- every written block leaves the enclave AES-sealed under a per-file
  nonce schedule, with the path and block index bound as AAD, so the
  host sees neither names' contents nor can it splice blocks between
  files or offsets;
- an in-enclave manifest records each file's block count and per-block
  MACs implicitly via AEAD, defeating truncation and rollback;
- results returned by the host are validated Iago-style: a read may
  not return more bytes than requested, and sizes must match the
  manifest.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.aead import StreamAead
from repro.errors import IntegrityError, PesosError

BLOCK_SIZE = 4096


class IagoViolation(PesosError):
    """The untrusted host returned results inconsistent with the manifest."""


@dataclass
class HostFileSystem:
    """The untrusted side: a block store the adversary may rewrite."""

    blocks: dict = field(default_factory=dict)  # (path, index) -> bytes

    def write_block(self, path: str, index: int, blob: bytes) -> None:
        self.blocks[(path, index)] = blob

    def read_block(self, path: str, index: int) -> bytes | None:
        return self.blocks.get((path, index))

    def delete_file(self, path: str) -> None:
        for key in [k for k in self.blocks if k[0] == path]:
            del self.blocks[key]

    # -- attack helpers ----------------------------------------------------

    def tamper(self, path: str, index: int = 0) -> None:
        blob = bytearray(self.blocks[(path, index)])
        blob[0] ^= 0xFF
        self.blocks[(path, index)] = bytes(blob)

    def splice(self, src: tuple, dst: tuple) -> None:
        """Copy a (valid) block from one location over another."""
        self.blocks[dst] = self.blocks[src]

    def snapshot(self) -> dict:
        return dict(self.blocks)

    def restore(self, snap: dict) -> None:
        self.blocks = dict(snap)


@dataclass
class _FileRecord:
    size: int
    generation: int  # bumped per write; part of every block's nonce


class ShieldedFileSystem:
    """Enclave-side shielded file API over an untrusted host FS."""

    def __init__(self, host: HostFileSystem | None = None,
                 key: bytes | None = None):
        self.host = host or HostFileSystem()
        self._aead = StreamAead(key or secrets.token_bytes(32))
        self._manifest: dict[str, _FileRecord] = {}

    # -- helpers -------------------------------------------------------------

    def _nonce(self, generation: int, index: int) -> bytes:
        return generation.to_bytes(6, "big") + index.to_bytes(6, "big")

    def _aad(self, path: str, index: int) -> bytes:
        return f"{path}#{index}".encode()

    # -- file API ---------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Write the whole file (block-aligned sealing)."""
        record = self._manifest.get(path)
        generation = (record.generation + 1) if record else 1
        block_count = max(1, (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE)
        for index in range(block_count):
            chunk = data[index * BLOCK_SIZE : (index + 1) * BLOCK_SIZE]
            blob = self._aead.seal(
                self._nonce(generation, index), chunk, self._aad(path, index)
            )
            self.host.write_block(path, index, blob)
        # Drop stale tail blocks from a previous longer generation.
        if record:
            old_blocks = max(1, (record.size + BLOCK_SIZE - 1) // BLOCK_SIZE)
            for index in range(block_count, old_blocks):
                self.host.blocks.pop((path, index), None)
        self._manifest[path] = _FileRecord(
            size=len(data), generation=generation
        )

    def read_file(self, path: str) -> bytes:
        """Read and verify the whole file."""
        record = self._manifest.get(path)
        if record is None:
            raise FileNotFoundError(path)
        block_count = max(1, (record.size + BLOCK_SIZE - 1) // BLOCK_SIZE)
        chunks = []
        for index in range(block_count):
            blob = self.host.read_block(path, index)
            if blob is None:
                raise IagoViolation(
                    f"host withheld block {index} of {path!r}"
                )
            if len(blob) > BLOCK_SIZE + self._aead.TAG_SIZE:
                raise IagoViolation(
                    f"host returned oversized block for {path!r}"
                )
            try:
                chunk = self._aead.open(
                    self._nonce(record.generation, index),
                    blob,
                    self._aad(path, index),
                )
            except IntegrityError as exc:
                raise IntegrityError(
                    f"block {index} of {path!r} failed verification "
                    "(tampered, spliced, or rolled back)"
                ) from exc
            chunks.append(chunk)
        data = b"".join(chunks)
        if len(data) < record.size:
            raise IagoViolation(f"host truncated {path!r}")
        return data[: record.size]

    def delete_file(self, path: str) -> None:
        if path not in self._manifest:
            raise FileNotFoundError(path)
        del self._manifest[path]
        self.host.delete_file(path)

    def file_size(self, path: str) -> int:
        record = self._manifest.get(path)
        if record is None:
            raise FileNotFoundError(path)
        return record.size

    def list_files(self) -> list:
        return sorted(self._manifest)
