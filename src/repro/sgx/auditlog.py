"""Tamper-evident, hash-chained audit log inside the enclave boundary.

Pesos's trust argument is that the storage layer *enforces* policy —
which is only auditable if every decision leaves a trail an attacker
(including the cloud operator) cannot silently rewrite.  The log lives
in enclave memory next to the policy interpreter, and each appended
record is chained to its predecessor::

    entry_hash[i] = SHA-256(canonical(record[i], prev=entry_hash[i-1]))

so flipping a single byte of any retained record breaks every hash
from that point to the chain head.  The head digest is the compact
commitment an operator scrapes (or seals — see :meth:`seal_head`) to
detect rollback of the whole log.

The log is a *ring*: only the newest ``capacity`` records stay
resident (enclave memory is precious), but the chain itself never
resets — evicting a record promotes its entry hash to the ``anchor``
that verification starts from, so the head digest still commits to
every record ever appended.

Determinism matters as much as tamper evidence: records carry virtual
timestamps and no wall-clock or randomness, so the same seed and
request trace produce a byte-identical chain — replay divergence shows
up as a head-digest mismatch, exactly like tampering.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import Iterable

#: The chain start: a fixed, public constant (no secret in the chain —
#: tamper *evidence* comes from re-derivability, not secrecy).
GENESIS = hashlib.sha256(b"pesos-audit-genesis").hexdigest()

#: Decision vocabulary (``allow``/``deny`` from the policy interpreter,
#: ``shed`` from admission control refusing to evaluate at all,
#: ``pin`` from the freshness layer advancing its sealed root, and
#: ``fork`` when startup fork detection refuses to serve).
DECISION_ALLOW = "allow"
DECISION_DENY = "deny"
DECISION_SHED = "shed"
DECISION_PIN = "pin"
DECISION_FORK = "fork"


@dataclass
class AuditRecord:
    """One policy decision, chained to its predecessor.

    Deliberately *not* frozen: tamper-evidence must come from the hash
    chain itself, not from Python's attribute protection — tests (and
    attackers) mutate fields and :meth:`AuditLog.verify` must notice.
    """

    seq: int
    vnow: float
    session: str
    operation: str
    key: str
    decision: str
    policy_hash: str
    clause_path: str
    detail: str
    prev_hash: str
    entry_hash: str

    def canonical(self) -> bytes:
        """Canonical byte encoding of everything the hash covers."""
        body = asdict(self)
        body.pop("entry_hash")
        return json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()

    def expected_hash(self) -> str:
        return hashlib.sha256(self.canonical()).hexdigest()

    def to_dict(self) -> dict:
        return asdict(self)


class AuditLog:
    """Bounded ring of chained records with verifiable head digest."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("audit log needs capacity >= 1")
        self.capacity = capacity
        self.records: deque[AuditRecord] = deque()
        #: Entry hash of the newest *evicted* record; verification of
        #: the retained window starts from here.
        self.anchor = GENESIS
        self.head = GENESIS
        self.length = 0

    def __len__(self) -> int:
        return self.length

    # -- appending ---------------------------------------------------------

    def append(
        self,
        vnow: float,
        session: str,
        operation: str,
        key: str,
        decision: str,
        policy_hash: str = "",
        clause_path: str = "",
        detail: str = "",
    ) -> AuditRecord:
        record = AuditRecord(
            seq=self.length,
            vnow=vnow,
            session=session,
            operation=operation,
            key=key,
            decision=decision,
            policy_hash=policy_hash,
            clause_path=clause_path,
            detail=detail,
            prev_hash=self.head,
            entry_hash="",
        )
        record.entry_hash = record.expected_hash()
        self.records.append(record)
        self.head = record.entry_hash
        self.length += 1
        if len(self.records) > self.capacity:
            evicted = self.records.popleft()
            self.anchor = evicted.entry_hash
        return record

    # -- verification ------------------------------------------------------

    def verify(self) -> dict:
        """Re-derive the retained chain; report the first divergence.

        Returns ``{"ok": bool, "checked": n, "head": digest,
        "first_bad_seq": seq | None}``.  A single flipped byte in any
        retained record (or a broken link / wrong head) fails.
        """
        prev = self.anchor
        for record in self.records:
            if record.prev_hash != prev or record.expected_hash() != (
                record.entry_hash
            ):
                return {
                    "ok": False,
                    "checked": len(self.records),
                    "head": self.head,
                    "first_bad_seq": record.seq,
                }
            prev = record.entry_hash
        if prev != self.head:
            return {
                "ok": False,
                "checked": len(self.records),
                "head": self.head,
                "first_bad_seq": self.records[-1].seq if self.records else 0,
            }
        return {
            "ok": True,
            "checked": len(self.records),
            "head": self.head,
            "first_bad_seq": None,
        }

    @staticmethod
    def replay(records: Iterable[AuditRecord], anchor: str = GENESIS) -> str:
        """Head digest a fresh chain over ``records`` would produce.

        The cross-run determinism check: replaying the same decisions
        from the same anchor must reproduce the same head, byte for
        byte.
        """
        head = anchor
        for record in records:
            clone = AuditRecord(
                **{**record.to_dict(), "prev_hash": head, "entry_hash": ""}
            )
            head = clone.expected_hash()
        return head

    # -- exposition and sealing -------------------------------------------

    def tail(self, limit: int = 64) -> list[AuditRecord]:
        """Newest ``limit`` retained records, oldest first."""
        records = list(self.records)
        return records[-limit:] if limit else records

    def snapshot(self, limit: int = 64) -> dict:
        return {
            "length": self.length,
            "retained": len(self.records),
            "capacity": self.capacity,
            "anchor": self.anchor,
            "head": self.head,
            "records": [record.to_dict() for record in self.tail(limit)],
        }

    def seal_head(self, enclave) -> bytes:
        """Seal ``(length, head)`` to this enclave's identity.

        Persisting the sealed head across restarts lets the controller
        detect rollback of the audit log itself: an unsealed head that
        does not chain to the current log means history was rewritten.
        """
        statement = json.dumps(
            {"length": self.length, "head": self.head},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        return enclave.seal(statement)

    @staticmethod
    def unseal_head(enclave, blob: bytes) -> dict:
        """Recover a sealed head statement (raises for foreign seals)."""
        return json.loads(enclave.unseal(blob))
