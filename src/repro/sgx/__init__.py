"""Shielded-execution substrate (Intel SGX + Scone stand-in).

The paper runs the Pesos controller inside an SGX enclave via Scone.
Enclave *hardware* is impractical to reproduce in Python, so this
package models shielded execution at two levels:

**Functional** — the security workflow runs for real:

- :mod:`repro.sgx.enclave` — enclave identity (measurement over the
  loaded binary), sealing of secrets to the measurement.
- :mod:`repro.sgx.attestation` — remote attestation: quotes signed by a
  platform quoting key, and a Scone-CAS-style attestation service that
  releases runtime secrets (TLS keys, disk credentials) only to
  enclaves whose quote verifies against a registered measurement.
- :mod:`repro.sgx.syscalls` — the FlexSC-style asynchronous system-call
  interface (slots + submission/return queues).
- :mod:`repro.sgx.scheduler` — Scone's userspace threading: M green
  threads multiplexed onto K enclave hardware threads, switching at
  syscall preemption points.

**Performance** — :mod:`repro.sgx.costs` and :mod:`repro.sgx.epc` carge
the documented overheads (enclave transitions, cross-boundary copies,
EPC paging beyond 96 MB) in the discrete-event benchmarks, calibrated
to the paper's native-vs-SGX deltas.
"""

from repro.sgx.attestation import AttestationService, Quote, SgxPlatform
from repro.sgx.costs import NATIVE_COSTS, SGX_COSTS, CostModel
from repro.sgx.enclave import Enclave, EnclaveBinary
from repro.sgx.epc import EpcModel
from repro.sgx.scheduler import UserspaceScheduler
from repro.sgx.shields import HostFileSystem, ShieldedFileSystem
from repro.sgx.syscalls import AsyncSyscallInterface, SyscallRequest

__all__ = [
    "AsyncSyscallInterface",
    "AttestationService",
    "CostModel",
    "Enclave",
    "EnclaveBinary",
    "EpcModel",
    "HostFileSystem",
    "NATIVE_COSTS",
    "Quote",
    "SGX_COSTS",
    "SgxPlatform",
    "ShieldedFileSystem",
    "SyscallRequest",
    "UserspaceScheduler",
]
