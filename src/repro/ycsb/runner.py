"""Replay YCSB traces against a controller (the adapted client, §6.1)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.controller import PesosController
from repro.core.request import Request
from repro.ycsb.workload import INSERT, READ, RMW, SCAN, Trace, UPDATE


def _payload(size: int, rng: random.Random) -> bytes:
    """Deterministic pseudo-random payload of ``size`` bytes."""
    return rng.getrandbits(8 * size).to_bytes(size, "big") if size else b""


def load_phase(
    controller: PesosController,
    trace: Trace,
    fingerprint: str,
    policy_id: str = "",
    seed: int = 7,
    version_aware: bool = False,
) -> int:
    """Insert every record of the trace's load phase; returns count."""
    rng = random.Random(seed)
    for key in trace.load_keys:
        request = Request(
            method="put",
            key=key,
            value=_payload(trace.spec.value_size, rng),
            policy_id=policy_id,
            version=0 if version_aware else None,
        )
        response = controller.handle(request, fingerprint)
        if not response.ok:
            raise RuntimeError(f"load failed on {key}: {response.error}")
    return len(trace.load_keys)


@dataclass
class RunStats:
    """Outcome counters for one replay."""

    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    #: Records returned across all range scans (scan fan-out measure).
    records_scanned: int = 0
    denied: int = 0
    errors: int = 0
    statuses: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return (
            self.reads + self.updates + self.inserts
            + self.scans + self.rmws
        )


class TraceRunner:
    """Replays a trace's operation phase through the controller."""

    def __init__(
        self,
        controller: PesosController,
        fingerprint: str,
        policy_id: str = "",
        version_aware: bool = False,
        seed: int = 13,
    ):
        self.controller = controller
        self.fingerprint = fingerprint
        self.policy_id = policy_id
        self.version_aware = version_aware
        self._rng = random.Random(seed)
        self.stats = RunStats()

    def run(self, trace: Trace, limit: int | None = None) -> RunStats:
        for index, operation in enumerate(trace.operations):
            if limit is not None and index >= limit:
                break
            self.execute(operation)
        return self.stats

    def execute(self, operation) -> None:
        """Run a single trace operation, updating counters."""
        if operation.op == READ:
            request = Request(method="get", key=operation.key)
            self.stats.reads += 1
        elif operation.op == SCAN:
            request = Request(
                method="scan",
                key=operation.key,
                scan_count=operation.scan_length,
            )
            self.stats.scans += 1
        elif operation.op == RMW:
            request = Request(
                method="rmw",
                key=operation.key,
                value=_payload(operation.value_size, self._rng),
                policy_id=self.policy_id,
            )
            self.stats.rmws += 1
        elif operation.op in (UPDATE, INSERT):
            version = None
            if self.version_aware:
                meta = self.controller._get_meta(operation.key)
                version = (
                    meta.current_version + 1
                    if meta is not None and meta.exists
                    else 0
                )
            request = Request(
                method="put",
                key=operation.key,
                value=_payload(operation.value_size, self._rng),
                policy_id=self.policy_id,
                version=version,
            )
            if operation.op == UPDATE:
                self.stats.updates += 1
            else:
                self.stats.inserts += 1
        else:
            raise ValueError(f"unknown op {operation.op!r}")
        response = self.controller.handle(request, self.fingerprint)
        self.stats.statuses[response.status] = (
            self.stats.statuses.get(response.status, 0) + 1
        )
        if operation.op == SCAN and response.ok:
            self.stats.records_scanned += response.extra.get("scanned", 0)
        if response.status == 403:
            self.stats.denied += 1
        elif not response.ok:
            self.stats.errors += 1
