"""YCSB key-choice distributions.

Implementations follow the reference YCSB generators: Gray et al.'s
"Quickly generating billion-record synthetic databases" algorithm for
the Zipfian family (constant ``theta = 0.99``), an FNV-hash scramble
to spread the popular head across the keyspace, and the "latest"
transform that favours recently inserted records.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError

ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv_hash64(value: int) -> int:
    """FNV-1a over the 8 bytes of ``value`` (YCSB's scramble hash)."""
    result = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        result ^= octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class UniformGenerator:
    """Uniform choice over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: random.Random):
        if item_count <= 0:
            raise ConfigurationError("item_count must be positive")
        self.item_count = item_count
        self._rng = rng

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Zipf-distributed choice: item 0 most popular."""

    def __init__(
        self,
        item_count: int,
        rng: random.Random,
        theta: float = ZIPFIAN_CONSTANT,
    ):
        if item_count <= 0:
            raise ConfigurationError("item_count must be positive")
        self.item_count = item_count
        self.theta = theta
        self._rng = rng
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def grow_to(self, item_count: int) -> None:
        """Extend the item space incrementally (O(new items) zeta)."""
        if item_count < self.item_count:
            raise ConfigurationError("zipfian item space cannot shrink")
        for i in range(self.item_count + 1, item_count + 1):
            self._zetan += 1.0 / (i ** self.theta)
        self.item_count = item_count
        self._eta = (1 - (2.0 / item_count) ** (1 - self.theta)) / (
            1 - self._zeta2 / self._zetan
        )

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * (self._eta * u - self._eta + 1) ** self._alpha
        )


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the keyspace by hashing."""

    def __init__(self, item_count: int, rng: random.Random):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        return fnv_hash64(self._zipf.next()) % self.item_count


class ScanLengthGenerator:
    """Per-scan record count for workload E, in ``[1, max_length]``.

    YCSB's default is a uniform scan length; ``zipfian`` skews towards
    short scans (item 0 of the zipf draw maps to length 1), matching
    the reference ``ScanLengthChooser`` options.
    """

    def __init__(
        self,
        max_length: int,
        rng: random.Random,
        distribution: str = "uniform",
    ):
        if max_length < 1:
            raise ConfigurationError("max_length must be >= 1")
        if distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(
                f"unknown scan-length distribution {distribution!r}"
            )
        self.max_length = max_length
        self.distribution = distribution
        self._rng = rng
        self._zipf = (
            ZipfianGenerator(max_length, rng)
            if distribution == "zipfian"
            else None
        )

    def next(self) -> int:
        if self._zipf is not None:
            return min(self.max_length, self._zipf.next() + 1)
        return self._rng.randrange(self.max_length) + 1


class LatestGenerator:
    """Skewed towards the most recently inserted item (workload D)."""

    def __init__(self, item_count: int, rng: random.Random):
        self._zipf = ZipfianGenerator(item_count, rng)
        self.item_count = item_count

    def next(self) -> int:
        offset = self._zipf.next()
        return max(0, self.item_count - 1 - offset)

    def grow(self) -> None:
        """Record an insert: the window of items expands by one."""
        self.item_count += 1
        self._zipf.grow_to(self.item_count)
