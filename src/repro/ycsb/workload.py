"""YCSB workload definitions and trace generation.

The paper (§6.1) configures YCSB for 100,000 operations over 100,000
unique objects with 1 KB payloads, and reports that workloads A-D gave
similar results (only workload A graphs are shown).  Traces are
generated up front and replayed, exactly as the paper does to take the
generator off the measurement path.

Workloads E and F (Cooper et al., SoCC'10) extend the stock set:

- **E** is scan-heavy: 95% short range scans (``GETKEYRANGE`` through
  the store) whose start key follows the workload distribution and
  whose length is drawn per-operation from a scan-length
  distribution, plus 5% inserts.
- **F** is read-modify-write: 50% reads, 50% atomic RMW cycles that
  read the current record and write back a derived payload under the
  object's per-key lock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.ycsb.distributions import (
    LatestGenerator,
    ScanLengthGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)

READ = "read"
UPDATE = "update"
INSERT = "insert"
SCAN = "scan"
RMW = "rmw"


@dataclass(frozen=True)
class Operation:
    """One trace entry."""

    op: str
    key: str
    value_size: int = 0
    #: Records covered by one range scan (``SCAN`` entries only).
    scan_length: int = 0


@dataclass
class WorkloadSpec:
    """Proportions and parameters for one workload."""

    name: str
    read_proportion: float
    update_proportion: float
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    rmw_proportion: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    record_count: int = 100_000
    operation_count: int = 100_000
    value_size: int = 1024
    #: Range-scan length bounds (workload E); lengths are drawn from
    #: ``scan_length_distribution`` over ``[1, max_scan_length]``.
    max_scan_length: int = 100
    scan_length_distribution: str = "uniform"  # uniform | zipfian

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.rmw_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"workload {self.name}: proportions sum to {total}, not 1"
            )
        if self.max_scan_length < 1:
            raise ConfigurationError(
                f"workload {self.name}: max_scan_length must be >= 1"
            )

    def scaled(self, **overrides) -> "WorkloadSpec":
        """Copy with some parameters replaced (payload sweeps etc.)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The four stock workloads (§6.1).
WORKLOAD_A = WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5)
WORKLOAD_B = WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05)
WORKLOAD_C = WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0)
WORKLOAD_D = WorkloadSpec(
    "D",
    read_proportion=0.95,
    update_proportion=0.0,
    insert_proportion=0.05,
    distribution="latest",
)
#: Workload E: short range scans + inserts (SoCC'10 table 1).
WORKLOAD_E = WorkloadSpec(
    "E",
    read_proportion=0.0,
    update_proportion=0.0,
    insert_proportion=0.05,
    scan_proportion=0.95,
    max_scan_length=100,
)
#: Workload F: reads + read-modify-write cycles.
WORKLOAD_F = WorkloadSpec(
    "F",
    read_proportion=0.5,
    update_proportion=0.0,
    rmw_proportion=0.5,
)


def key_name(index: int) -> str:
    """YCSB-style key naming."""
    return f"user{index:012d}"


@dataclass
class Trace:
    """A generated workload: load phase keys + transaction phase ops."""

    spec: WorkloadSpec
    load_keys: list = field(default_factory=list)
    operations: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)


def _make_chooser(spec: WorkloadSpec, count: int, rng: random.Random):
    if spec.distribution == "zipfian":
        return ScrambledZipfianGenerator(count, rng)
    if spec.distribution == "uniform":
        return UniformGenerator(count, rng)
    if spec.distribution == "latest":
        return LatestGenerator(count, rng)
    raise ConfigurationError(f"unknown distribution {spec.distribution!r}")


def generate_trace(spec: WorkloadSpec, seed: int = 42) -> Trace:
    """Generate the load phase and operation trace for ``spec``.

    Same seed, same spec -> byte-identical trace (see
    :func:`trace_bytes`); the draw order per operation is fixed at
    (dice, key, scan length) so adding workloads E/F left the A-D
    traces untouched.
    """
    rng = random.Random(seed)
    trace = Trace(spec=spec)
    trace.load_keys = [key_name(i) for i in range(spec.record_count)]
    chooser = _make_chooser(spec, spec.record_count, rng)
    scan_lengths = ScanLengthGenerator(
        spec.max_scan_length, rng, distribution=spec.scan_length_distribution
    )
    insert_count = spec.record_count
    read_threshold = spec.read_proportion
    update_threshold = read_threshold + spec.update_proportion
    insert_threshold = update_threshold + spec.insert_proportion
    scan_threshold = insert_threshold + spec.scan_proportion

    def insert() -> Operation:
        nonlocal insert_count
        operation = Operation(
            op=INSERT,
            key=key_name(insert_count),
            value_size=spec.value_size,
        )
        insert_count += 1
        if isinstance(chooser, LatestGenerator):
            chooser.grow()
        return operation

    for _ in range(spec.operation_count):
        dice = rng.random()
        if dice < read_threshold:
            trace.operations.append(
                Operation(op=READ, key=key_name(chooser.next()))
            )
        elif dice < update_threshold:
            trace.operations.append(
                Operation(
                    op=UPDATE,
                    key=key_name(chooser.next()),
                    value_size=spec.value_size,
                )
            )
        elif dice < insert_threshold and (
            spec.scan_proportion or spec.rmw_proportion
        ):
            trace.operations.append(insert())
        elif dice < scan_threshold and spec.scan_proportion:
            trace.operations.append(
                Operation(
                    op=SCAN,
                    key=key_name(chooser.next()),
                    scan_length=scan_lengths.next(),
                )
            )
        elif spec.rmw_proportion:
            trace.operations.append(
                Operation(
                    op=RMW,
                    key=key_name(chooser.next()),
                    value_size=spec.value_size,
                )
            )
        else:
            trace.operations.append(insert())
    return trace


def trace_bytes(trace: Trace) -> bytes:
    """Canonical byte encoding of one generated trace.

    One line per operation (``op|key|value_size|scan_length``) after a
    header naming the spec and load-key count: two same-seed
    generations must match byte for byte, which the determinism tests
    (and the replay-reproducibility contract) assert directly.
    """
    spec = trace.spec
    lines = [
        f"ycsb|{spec.name}|{spec.distribution}|{spec.record_count}"
        f"|{spec.operation_count}|{spec.value_size}"
        f"|{spec.max_scan_length}|{spec.scan_length_distribution}"
        f"|{len(trace.load_keys)}"
    ]
    lines.extend(
        f"{op.op}|{op.key}|{op.value_size}|{op.scan_length}"
        for op in trace.operations
    )
    return "\n".join(lines).encode()
