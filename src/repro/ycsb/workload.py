"""YCSB workload definitions and trace generation.

The paper (§6.1) configures YCSB for 100,000 operations over 100,000
unique objects with 1 KB payloads, and reports that workloads A-D gave
similar results (only workload A graphs are shown).  Traces are
generated up front and replayed, exactly as the paper does to take the
generator off the measurement path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.ycsb.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)

READ = "read"
UPDATE = "update"
INSERT = "insert"


@dataclass(frozen=True)
class Operation:
    """One trace entry."""

    op: str
    key: str
    value_size: int = 0


@dataclass
class WorkloadSpec:
    """Proportions and parameters for one workload."""

    name: str
    read_proportion: float
    update_proportion: float
    insert_proportion: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    record_count: int = 100_000
    operation_count: int = 100_000
    value_size: int = 1024

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"workload {self.name}: proportions sum to {total}, not 1"
            )

    def scaled(self, **overrides) -> "WorkloadSpec":
        """Copy with some parameters replaced (payload sweeps etc.)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The four stock workloads (§6.1).
WORKLOAD_A = WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5)
WORKLOAD_B = WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05)
WORKLOAD_C = WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0)
WORKLOAD_D = WorkloadSpec(
    "D",
    read_proportion=0.95,
    update_proportion=0.0,
    insert_proportion=0.05,
    distribution="latest",
)


def key_name(index: int) -> str:
    """YCSB-style key naming."""
    return f"user{index:012d}"


@dataclass
class Trace:
    """A generated workload: load phase keys + transaction phase ops."""

    spec: WorkloadSpec
    load_keys: list = field(default_factory=list)
    operations: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)


def _make_chooser(spec: WorkloadSpec, count: int, rng: random.Random):
    if spec.distribution == "zipfian":
        return ScrambledZipfianGenerator(count, rng)
    if spec.distribution == "uniform":
        return UniformGenerator(count, rng)
    if spec.distribution == "latest":
        return LatestGenerator(count, rng)
    raise ConfigurationError(f"unknown distribution {spec.distribution!r}")


def generate_trace(spec: WorkloadSpec, seed: int = 42) -> Trace:
    """Generate the load phase and operation trace for ``spec``."""
    rng = random.Random(seed)
    trace = Trace(spec=spec)
    trace.load_keys = [key_name(i) for i in range(spec.record_count)]
    chooser = _make_chooser(spec, spec.record_count, rng)
    insert_count = spec.record_count
    for _ in range(spec.operation_count):
        dice = rng.random()
        if dice < spec.read_proportion:
            trace.operations.append(
                Operation(op=READ, key=key_name(chooser.next()))
            )
        elif dice < spec.read_proportion + spec.update_proportion:
            trace.operations.append(
                Operation(
                    op=UPDATE,
                    key=key_name(chooser.next()),
                    value_size=spec.value_size,
                )
            )
        else:
            trace.operations.append(
                Operation(
                    op=INSERT,
                    key=key_name(insert_count),
                    value_size=spec.value_size,
                )
            )
            insert_count += 1
            if isinstance(chooser, LatestGenerator):
                chooser.grow()
    return trace
