"""YCSB workload generation (Cooper et al., SoCC'10).

The paper drives Pesos with YCSB traces generated ahead of time and
replayed through an adapted client (§6.1).  This package reproduces
that pipeline: key-choice distributions
(:mod:`repro.ycsb.distributions`), the stock workload definitions A-D
plus trace generation (:mod:`repro.ycsb.workload`), and a replayer
that runs a trace against a controller (:mod:`repro.ycsb.runner`).
"""

from repro.ycsb.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.ycsb.runner import TraceRunner, load_phase
from repro.ycsb.workload import (
    Operation,
    WorkloadSpec,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    generate_trace,
)

__all__ = [
    "LatestGenerator",
    "Operation",
    "ScrambledZipfianGenerator",
    "TraceRunner",
    "UniformGenerator",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WorkloadSpec",
    "ZipfianGenerator",
    "generate_trace",
    "load_phase",
]
