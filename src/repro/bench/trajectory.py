"""Persistent performance trajectory: ``BENCH_<name>.json`` files.

Each headline benchmark records its key numbers through
:func:`record`, which maintains one small JSON file per bench —
``BENCH_overload.json``, ``BENCH_concurrency.json``, ``BENCH_fig3.json``
— checked into the repository root.  The file keeps the current
``latest`` entry plus a bounded ``history`` of previous entries, so the
repo itself carries the performance trajectory: a reviewer diffs the
BENCH file to see exactly what a change did to goodput or speedup, and
CI compares a fresh run against the committed ``latest`` to fail on
regressions (:func:`check_regression`).

Entries are plain metric dictionaries with **no timestamps and no
environment fingerprints**: every headline number here is virtual-time
and seed-deterministic, so a regenerated file on an unchanged tree is
byte-identical to the committed one — which is itself a reproducibility
check.  Callers that want provenance pass an explicit ``run_id``.
"""

from __future__ import annotations

import json
import os

#: Default cap on retained history entries per bench.
HISTORY_LIMIT = 24


def trajectory_dir() -> str:
    """Directory holding the ``BENCH_*.json`` files (the repo root)."""
    path = os.environ.get(
        "REPRO_TRAJECTORY_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", ".."),
    )
    return os.path.abspath(path)


def path_of(name: str, directory: str | None = None) -> str:
    return os.path.join(directory or trajectory_dir(), f"BENCH_{name}.json")


def load(name: str, directory: str | None = None) -> dict | None:
    """The committed trajectory for ``name``, or None if absent."""
    path = path_of(name, directory)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def record(
    name: str,
    headline: dict,
    directory: str | None = None,
    history_limit: int = HISTORY_LIMIT,
    run_id: str | None = None,
) -> str:
    """Write ``headline`` as the bench's latest entry; returns the path.

    The previous ``latest`` is pushed onto ``history`` (bounded by
    ``history_limit``) unless it equals the new entry — re-running an
    unchanged tree must leave the file byte-identical.
    """
    entry = dict(sorted(headline.items()))
    if run_id is not None:
        entry["run_id"] = run_id
    existing = load(name, directory)
    history: list[dict] = []
    if existing is not None:
        history = list(existing.get("history", []))
        previous = existing.get("latest")
        if previous is not None and previous != entry:
            history.append(previous)
        history = history[-history_limit:]
    payload = {
        "bench": name,
        "latest": entry,
        "history": history,
    }
    path = path_of(name, directory)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_regression(
    name: str,
    metric: str,
    value: float,
    tolerance: float = 0.10,
    directory: str | None = None,
) -> dict:
    """Compare ``value`` against the committed latest entry's ``metric``.

    Returns ``{"ok", "metric", "value", "baseline", "ratio"}``.  A
    missing file or metric passes (nothing to regress against);
    otherwise ``ok`` is False when ``value`` fell more than
    ``tolerance`` below the committed baseline.  Higher is assumed
    better — these are throughput/goodput/speedup headlines.
    """
    committed = load(name, directory)
    baseline = None
    if committed is not None:
        baseline = committed.get("latest", {}).get(metric)
    if not isinstance(baseline, (int, float)) or baseline <= 0:
        return {
            "ok": True,
            "metric": metric,
            "value": value,
            "baseline": baseline,
            "ratio": None,
        }
    ratio = value / baseline
    return {
        "ok": ratio >= 1.0 - tolerance,
        "metric": metric,
        "value": value,
        "baseline": baseline,
        "ratio": round(ratio, 4),
    }


__all__ = [
    "HISTORY_LIMIT",
    "check_regression",
    "load",
    "path_of",
    "record",
    "trajectory_dir",
]
