"""Discrete-event system model wrapping the functional controller.

One :class:`SystemModel` owns the virtual resources of a deployment —
controller CPU cores, the client-facing network link, per-drive
service stations, the optional shared enclosure uplink — and exposes
:meth:`SystemModel.request`, a process generator that executes one
client request functionally and charges its costs in virtual time:

1. client->controller network (latency + serialized transfer),
2. controller CPU (parse, copies, crypto, policy work, syscall and
   enclave-boundary overheads derived from the request's recorded
   effects),
3. one service visit per backend operation the request performed
   (network + optional enclosure + drive),
4. response marshalling CPU and the return network hop.

Functional execution happens atomically at the start of step 2 (the
standard execute-then-charge DES technique); queueing behaviour and
therefore throughput/latency curves come from the resource model.
"""

from __future__ import annotations

import random

from repro.bench.configs import SystemConfig
from repro.core.effects import (
    DECRYPT,
    DISK_DELETE,
    DISK_READ,
    DISK_WRITE,
    ENCRYPT,
    POLICY_CHECK,
    POLICY_COMPILE,
    POLICY_LOAD,
)
from repro.core.ssdcache import SSD_READ, SSD_WRITE
from repro.kinetic.timing import OP_DELETE, OP_READ, OP_WRITE
from repro.sim import Environment, Histogram, Resource, ThroughputMeter
from repro.telemetry import NULL_TELEMETRY, MetricFamily, Sample

#: Layers of the request lifecycle whose charged service time the model
#: accounts separately; ``SystemModel.breakdown()`` reports these keys.
LAYERS = (
    "client_net",
    "cpu",
    "ssd",
    "drive_net",
    "enclosure",
    "drive_service",
)


class DriveStation:
    """Virtual-time service model for one backend drive."""

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        seed: int,
        layer_seconds: dict | None = None,
    ):
        self.env = env
        self.timing = config.drive_timing
        self.resource = Resource(env, capacity=self.timing.concurrency)
        self._rng = random.Random(seed)
        self._layer_seconds = layer_seconds

    def service(self, op: str, nbytes: int):
        yield self.resource.acquire()
        try:
            service_time = self.timing.service_time(op, nbytes, self._rng)
            if self._layer_seconds is not None:
                self._layer_seconds["drive_service"] += service_time
            yield self.env.timeout(service_time)
        finally:
            self.resource.release()


class SystemModel:
    """The deployment's shared virtual resources + request lifecycle."""

    def __init__(
        self,
        env: Environment,
        controller,
        config: SystemConfig,
        seed: int = 1234,
        telemetry=None,
    ):
        self.env = env
        self.controller = controller
        self.config = config
        self.cpu = Resource(env, capacity=config.controller_cores)
        self.client_link = Resource(env, capacity=1)
        self.drive_link = Resource(env, capacity=1)
        self.enclosure = (
            Resource(env, capacity=1) if config.enclosure_per_op else None
        )
        self.layer_seconds: dict[str, float] = dict.fromkeys(LAYERS, 0.0)
        self.drives = [
            DriveStation(
                env, config, seed=seed + index,
                layer_seconds=self.layer_seconds,
            )
            for index in range(config.num_drives)
        ]
        self.ssd = Resource(env, capacity=config.ssd_concurrency)
        self.latency = Histogram(min_value=1e-5, max_value=50.0, growth=1.04)
        self.meter = ThroughputMeter()
        self.cpu_seconds_charged = 0.0
        self.telemetry = telemetry or NULL_TELEMETRY
        if self.telemetry.enabled:
            self.telemetry.tracer.set_virtual_clock(lambda: env.now)
            self.telemetry.register_callback(self._layer_metrics)

    def _charge(self, layer: str, seconds: float) -> float:
        """Account ``seconds`` of service time to ``layer``."""
        self.layer_seconds[layer] += seconds
        return seconds

    # -- per-layer accounting ----------------------------------------------

    def breakdown(self) -> dict:
        """Charged service seconds per layer since the last reset.

        These are *service* charges, not wall residence: queueing delay
        at a contended resource is visible in latency percentiles but
        not attributed here, so the dict answers "where would the next
        second of capacity help" rather than "where did requests wait".
        """
        return dict(self.layer_seconds)

    def reset_breakdown(self) -> None:
        for layer in self.layer_seconds:
            self.layer_seconds[layer] = 0.0

    def _layer_metrics(self):
        yield MetricFamily(
            name="pesos_bench_layer_seconds",
            kind="gauge",
            help="Virtual service seconds charged per model layer.",
            samples=[
                Sample(
                    name="pesos_bench_layer_seconds",
                    labels={"layer": layer},
                    value=seconds,
                )
                for layer, seconds in sorted(self.layer_seconds.items())
            ],
        )

    # -- cost derivation ---------------------------------------------------

    def _derive_costs(self, events, request_bytes: int, response_bytes: int):
        """Split recorded effects into CPU time and backend visits."""
        cost = self.config.cost
        cpu = cost.request_parse
        cpu += cost.copy_cost(request_bytes + response_bytes)
        disk_ops = []
        ssd_ops = []
        writes_seen = 0
        for event in events:
            kind = event[0]
            if kind == SSD_READ:
                ssd_ops.append((SSD_READ, event[1]))
            elif kind == SSD_WRITE:
                ssd_ops.append((SSD_WRITE, event[1]))
            elif kind == DISK_READ:
                disk_ops.append((OP_READ, event[1], event[2]))
            elif kind == DISK_WRITE:
                writes_seen += 1
                if writes_seen > 2:
                    # Value+meta are the first two; further writes are
                    # replica coordination (§6.3).
                    cpu += self.config.replica_write_cpu
                disk_ops.append((OP_WRITE, event[1], event[2]))
            elif kind == DISK_DELETE:
                disk_ops.append((OP_DELETE, event[1], event[2]))
            elif kind in (ENCRYPT, DECRYPT):
                cpu += cost.encryption_cost(event[1])
            elif kind == POLICY_CHECK:
                cpu += cost.policy_check * max(1, event[1])
            elif kind == POLICY_COMPILE:
                cpu += cost.policy_compile
            elif kind == POLICY_LOAD:
                cpu += cost.policy_load
        cpu += len(disk_ops) * self.config.disk_op_cpu
        # Syscalls: client socket recv+send, one send+recv pair per
        # backend operation (async interface under Scone), and one
        # read/write syscall per SSD-tier access.
        syscalls = 2 + 2 * len(disk_ops) + len(ssd_ops)
        cpu += syscalls * cost.syscall_cost()
        # Enclave-boundary copies for payload and backend traffic.
        ssd_bytes = sum(nbytes for _op, nbytes in ssd_ops)
        disk_bytes = sum(nbytes for _op, _idx, nbytes in disk_ops)
        touched = request_bytes + response_bytes + disk_bytes + ssd_bytes
        cpu += touched * cost.boundary_per_byte
        cpu += self._epc_cost(touched)
        return cpu, disk_ops, ssd_ops

    def _epc_cost(self, touched_bytes: int) -> float:
        """Approximate paging cost once the enclave exceeds the EPC."""
        cost = self.config.cost
        if cost.epc_limit is None or not touched_bytes:
            return 0.0
        footprint = (
            self.config.fixed_enclave_bytes
            + self.controller.caches.memory_in_use()
            + self.controller.sessions.memory_in_use()
        )
        if footprint <= cost.epc_limit:
            return 0.0
        overflow_fraction = 1.0 - cost.epc_limit / footprint
        faults = (touched_bytes / 4096.0) * overflow_fraction
        return faults * cost.epc_page_fault

    # -- request lifecycle -----------------------------------------------------

    def request(self, execute, request_bytes: int):
        """Process generator for one client request.

        ``execute`` is a zero-argument callable that performs the
        functional operation and returns its Response; recorded
        effects are drained from the controller afterwards.
        """
        env = self.env
        config = self.config
        started = env.now

        # Client -> controller: latency plus serialized transfer.
        yield env.timeout(self._charge("client_net", config.client_net_latency))
        yield self.client_link.acquire()
        yield env.timeout(
            self._charge("client_net", request_bytes / config.client_bandwidth)
        )
        self.client_link.release()

        # Functional execution (atomic) + effect-derived costs.
        self.controller.effects.drain()
        response = execute()
        events = self.controller.effects.drain()
        response_bytes = len(response.value) if response.value else 64
        cpu_time, disk_ops, ssd_ops = self._derive_costs(
            events, request_bytes, response_bytes
        )

        # Controller CPU: split around the backend visits (2/3 before,
        # 1/3 for response marshalling after).
        yield self.cpu.acquire()
        yield env.timeout(self._charge("cpu", cpu_time * 2 / 3))
        self.cpu.release()
        self.cpu_seconds_charged += cpu_time

        for op, _nbytes in ssd_ops:
            yield self.ssd.acquire()
            yield env.timeout(
                self._charge(
                    "ssd",
                    config.ssd_read_seconds
                    if op == SSD_READ
                    else config.ssd_write_seconds,
                )
            )
            self.ssd.release()

        for op, drive_index, nbytes in disk_ops:
            yield env.timeout(
                self._charge("drive_net", config.drive_net_latency)
            )
            yield self.drive_link.acquire()
            yield env.timeout(
                self._charge(
                    "drive_net", max(64, nbytes) / config.drive_bandwidth
                )
            )
            self.drive_link.release()
            if self.enclosure is not None:
                yield self.enclosure.acquire()
                yield env.timeout(
                    self._charge("enclosure", config.enclosure_per_op)
                )
                self.enclosure.release()
            yield from self.drives[drive_index % len(self.drives)].service(
                op, nbytes
            )

        yield self.cpu.acquire()
        yield env.timeout(self._charge("cpu", cpu_time / 3))
        self.cpu.release()

        # Controller -> client.
        yield self.client_link.acquire()
        yield env.timeout(
            self._charge(
                "client_net", response_bytes / config.client_bandwidth
            )
        )
        self.client_link.release()
        yield env.timeout(self._charge("client_net", config.client_net_latency))

        self.latency.add(env.now - started)
        self.meter.record(request_bytes + response_bytes)
        return response
