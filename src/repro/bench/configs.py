"""Evaluation configurations and calibration constants (§6.1).

Four configurations, as in the paper: {native, Pesos(SGX)} x
{Kinetic simulator, Kinetic HDD}.  The calibration constants target
the paper's measured operating points on its testbed (Xeon E3-1270 v5,
8 hardware threads, 10 GbE to the workload generator, three 4 TB
Kinetic drives in an Ember enclosure with a shared 1 GbE uplink):

- native + simulator peaks ~95 kIOP/s at 1 KB (Fig. 3)
- Pesos + simulator ~85 kIOP/s — >=85% of native (Fig. 3)
- one dedicated Kinetic HDD ~820 IOP/s (Fig. 5)
- three HDDs behind the shared enclosure uplink ~1.1 kIOP/s (Fig. 3)
- single-client latency vs the simulator ~0.8 ms (Fig. 4, an
  acknowledged artifact of the simulator's per-request overhead)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kinetic.timing import DriveTiming, HddTiming, SimulatorTiming
from repro.sgx.costs import CostModel

SIM_BACKEND = "sim"
DISK_BACKEND = "disk"

#: Controller CPU budget per request, calibrated so 8 hardware threads
#: saturate near the paper's peak rates.  These extend the generic SGX
#: cost models with the request-path constants of the Pesos prototype.
NATIVE_REQUEST_COSTS = CostModel(
    name="native",
    request_parse=70e-6,     # TLS record + HTTP parse + handler dispatch
    per_byte_copy=3.0e-9,    # payload movement through the request path
    policy_check=0.30e-6,    # per evaluated predicate
    policy_compile=150e-6,   # lex + parse + emit binary form
    encrypt_fixed=0.4e-6,   # AES-NI key schedule + tag
    encrypt_per_byte=0.4e-9,
)

SGX_REQUEST_COSTS = replace(
    NATIVE_REQUEST_COSTS,
    name="sgx",
    syscall_sync=8.0e-6,
    syscall_async=1.1e-6,
    boundary_per_byte=0.9e-9,
    epc_page_fault=12.0e-6,
    epc_limit=96 * 1024 * 1024,
)


@dataclass
class SystemConfig:
    """Everything the harness needs to build and time one system."""

    name: str
    cost: CostModel
    backend: str = SIM_BACKEND
    num_drives: int = 3
    replication_factor: int = 1
    #: Replicas that must persist a write before it is acknowledged;
    #: None = every replica (the store's default §3.2 contract).
    write_quorum: int | None = None
    controller_cores: int = 8

    # -- network -------------------------------------------------------------
    #: One-way client <-> controller latency (switched 10 GbE).
    client_net_latency: float = 40e-6
    client_bandwidth: float = 1.17e9  # 10 GbE payload bytes/s
    #: One-way controller <-> backend latency.
    drive_net_latency: float = 55e-6
    drive_bandwidth: float = 1.17e9

    #: CPU spent per backend operation (marshalling one Kinetic
    #: request/response pair through the client library).
    disk_op_cpu: float = 9.0e-6
    #: Extra CPU per backend *write beyond the first replica* —
    #: replication coordination (§6.3).  The SGX build pays heavily
    #: here (buffer copies in and out of the enclave per replica), so
    #: make_config sets a larger value for SGX.
    replica_write_cpu: float = 9e-6

    #: Serialization point modeling the Ember enclosure's single
    #: shared uplink (only the Fig. 3/4 disk configuration has it).
    enclosure_per_op: float = 0.0

    # -- untrusted SSD cache tier (future-work extension) ----------------
    #: NVMe-class read/write service times and queue depth.
    ssd_read_seconds: float = 65e-6
    ssd_write_seconds: float = 25e-6
    ssd_concurrency: int = 8

    #: Drive timing model factory.
    drive_timing: DriveTiming = field(default_factory=SimulatorTiming)

    #: In-enclave footprint besides caches (binary + runtime buffers).
    fixed_enclave_bytes: int = 17 * 1024 * 1024

    @property
    def is_sgx(self) -> bool:
        return self.cost.epc_limit is not None or self.cost.syscall_async > 0

    def with_replication(self, factor: int) -> "SystemConfig":
        return replace(
            self, replication_factor=factor,
            name=f"{self.name}-r{factor}",
        )


def paper_ratio_caches(record_count: int, value_size: int):
    """Cache budgets scaled to the dataset like the paper's defaults.

    The paper pairs a ~100 MB working set (100 k x 1 KB) with a ~48 MB
    object cache, a 600 KB key cache, and a 5 MB policy cache (§4.2).
    Benchmarks here run smaller datasets for wall-clock reasons, so
    the object/key budgets scale with the dataset to preserve hit
    rates; the policy budget stays absolute (Fig. 8 controls the
    policy cache's *entry count* explicitly).
    """
    from repro.core.cache import CacheConfig

    dataset = record_count * value_size
    return CacheConfig(
        object_bytes=max(1 << 20, int(dataset * 0.48)),
        key_bytes=max(16 << 10, record_count * 6),
        policy_bytes=5 << 20,
    )


def make_config(
    mode: str,
    backend: str,
    num_drives: int = 3,
    shared_enclosure: bool = True,
    **overrides,
) -> SystemConfig:
    """Build one of the four evaluation configurations.

    ``mode``: ``"native"`` or ``"sgx"``.  ``backend``: ``"sim"`` or
    ``"disk"``.  ``shared_enclosure`` applies to the disk backend only
    and models all drives sharing one enclosure uplink (the Fig. 3
    wiring); Fig. 5 gives every controller its own port.
    """
    if mode == "native":
        cost = NATIVE_REQUEST_COSTS
    elif mode == "sgx":
        cost = SGX_REQUEST_COSTS
    else:
        raise ValueError(f"unknown mode {mode!r}")

    replica_cpu = 9e-6 if mode == "native" else 34e-6
    if backend == SIM_BACKEND:
        timing: DriveTiming = SimulatorTiming(
            base_seconds=235e-6, per_byte=0.5e-9, concurrency=32
        )
        config = SystemConfig(
            name=f"{mode}-sim",
            cost=cost,
            backend=backend,
            num_drives=num_drives,
            drive_timing=timing,
            replica_write_cpu=replica_cpu,
        )
    elif backend == DISK_BACKEND:
        timing = HddTiming()
        config = SystemConfig(
            name=f"{mode}-disk",
            cost=cost,
            backend=backend,
            num_drives=num_drives,
            drive_timing=timing,
            drive_bandwidth=1.17e8,  # 1 GbE to the enclosure
            enclosure_per_op=0.66e-3 if shared_enclosure else 0.0,
            replica_write_cpu=replica_cpu,
        )
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return replace(config, **overrides) if overrides else config
