"""Overload sweep: goodput as offered load passes capacity.

The admission layer (:mod:`repro.core.admission`) exists for exactly
one scenario: offered load exceeds what the enclave can serve.  This
sweep reproduces it as an open-loop arrival process in virtual time —
clients do not slow down when the server does — at offered rates from
0.5x to 4x measured capacity, and records goodput (successful
responses per virtual second), latency, and queue depth with and
without admission control.

Why the unprotected series collapses: every queued request carries a
real cost inside a TEE — its session, lock record, and async slot sit
in EPC-backed memory, and past the working set each additional queued
entry adds paging pressure (the same cliff §6 measures for object
caches).  The simulation charges that as a capacity drag proportional
to queue depth (``overload_drag``); the bounded admission queue caps
the drag, trading a 503 now for the whole fleet's throughput later.

Everything is deterministic: capacity is calibrated from the engine's
virtual-time cost model, arrivals are a pure function of the offered
rate, shedding jitter is the admission controller's seeded PRF, and
every point carries a digest of its full decision + completion record
(two same-seed sweeps match digest for digest).  Admitted operations
run against a *real* controller — acked writes are re-read at the end
of every point, witnessing that shedding never loses acknowledged
data.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, field

from repro.bench.concurrency import (
    ConcurrencyConfig,
    build_concurrency_system,
    run_concurrency_point,
)
from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.request import Request


def _base_system() -> ConcurrencyConfig:
    return ConcurrencyConfig(
        name="overload", record_count=32, operations=0, seed=11
    )


@dataclass
class OverloadConfig:
    """One overload sweep."""

    name: str = "overload"
    #: System under test (drives, replication, preloaded records).
    base: ConcurrencyConfig = field(default_factory=_base_system)
    #: Operations offered per point.
    operations: int = 384
    #: Offered load as multiples of measured capacity.
    multipliers: tuple = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
    read_fraction: float = 0.5
    #: Distinct client fingerprints issuing the load.
    clients: int = 8
    seed: int = 11
    #: Ops per virtual second; None calibrates from the engine's
    #: virtual-time cost model (deterministic, not wall-clock).
    capacity: float | None = None
    #: Scheduling-round length, in service times.
    round_services: float = 8.0
    #: Admission knobs, in rounds (converted to virtual seconds once
    #: the service time is known).  The latency target sits *above*
    #: the staleness bound on purpose: queue wait is capped by
    #: ``max_queue_delay`` shedding, so the limiter only backs off on
    #: genuine service-time inflation, not on a merely full queue.
    queue_depth: int = 48
    max_queue_delay_rounds: float = 8.0
    latency_target_rounds: float = 16.0
    rate_per_second: float | None = None
    #: Capacity drag per queued request (EPC paging pressure model).
    overload_drag: float = 0.004
    max_rounds: int = 200_000


@dataclass
class OverloadPoint:
    """One (multiplier, protection) measurement."""

    multiplier: float
    admission: bool
    offered_rate: float
    operations: int
    served: int
    ok: int
    shed_by_status: dict
    shed_with_retry_after: int
    duration: float
    goodput: float  # successful responses per virtual second
    mean_latency: float
    p99_latency: float
    peak_queue_depth: int
    final_limit: int
    acked_writes: int
    acked_writes_lost: int
    trace_sha: str
    #: Audit-chain head digest + length when the point ran with the
    #: tamper-evident decision log enabled ("" / 0 otherwise).
    audit_head: str = ""
    audit_records: int = 0

    @property
    def throughput(self) -> float:
        return self.goodput

    @property
    def kiops(self) -> float:
        return self.goodput / 1000.0

    def row(self) -> dict:
        return {
            "admission": self.admission,
            "offered_x": self.multiplier,
            "goodput": round(self.goodput, 1),
            "served": self.served,
            "shed": sum(self.shed_by_status.values()),
            "shed_by_status": dict(sorted(self.shed_by_status.items())),
            "mean_latency_ms": round(self.mean_latency * 1e3, 3),
            "p99_latency_ms": round(self.p99_latency * 1e3, 3),
            "peak_queue_depth": self.peak_queue_depth,
            "final_limit": self.final_limit,
            "acked_writes_lost": self.acked_writes_lost,
            "trace_sha": self.trace_sha,
        }


def calibrate_capacity(config: OverloadConfig) -> float:
    """Measure serving capacity (ops per virtual second) at width 8.

    Uses the real engine over the same system configuration, so the
    sweep's "1x" is the cost model's own saturation point rather than
    a magic number.
    """
    base = ConcurrencyConfig(
        name=config.base.name,
        num_drives=config.base.num_drives,
        replication_factor=config.base.replication_factor,
        record_count=config.base.record_count,
        operations=128,
        read_fraction=config.read_fraction,
        value_size=config.base.value_size,
        seed=config.seed,
    )
    return run_concurrency_point(base, workers=8).throughput


def make_overload_workload(
    config: OverloadConfig,
) -> list[tuple[Request, str]]:
    """Deterministic (request, fingerprint) stream over preloaded keys."""
    rng = random.Random(config.seed)
    payload = bytes(
        rng.randrange(256) for _ in range(config.base.value_size)
    )
    workload = []
    for index in range(config.operations):
        key = f"c-{rng.randrange(config.base.record_count):05d}"
        fingerprint = f"fp-load-{index % config.clients}"
        if rng.random() < config.read_fraction:
            request = Request(method="get", key=key)
        else:
            request = Request(method="put", key=key, value=payload)
        workload.append((request, fingerprint))
    return workload


def run_overload_point(
    config: OverloadConfig,
    multiplier: float,
    with_admission: bool,
    capacity: float,
    telemetry=None,
    audit_log_size: int | None = None,
    sink: dict | None = None,
) -> OverloadPoint:
    """Open-loop virtual-time simulation of one offered-load point.

    ``telemetry`` threads a live sink through the run: every completion
    and shed folds into its SLO engine on virtual time (with trace-id
    exemplars for breaching requests), and the tracer's virtual clock
    follows the simulation.  ``audit_log_size`` enables the
    tamper-evident decision chain; ``sink``, when given, receives the
    live ``controller`` / ``admission`` / ``telemetry`` objects so
    callers (tests, the SLO CI job) can inspect them afterwards.
    """
    controller = build_concurrency_system(
        config.base, telemetry=telemetry, audit_log_size=audit_log_size
    )
    telemetry = controller.telemetry
    service = 1.0 / capacity
    round_s = config.round_services * service
    admission: AdmissionController | None = None
    if with_admission:
        admission = AdmissionController(
            AdmissionConfig(
                queue_depth=config.queue_depth,
                max_queue_delay=config.max_queue_delay_rounds * round_s,
                rate_per_second=config.rate_per_second,
                latency_target=config.latency_target_rounds * round_s,
                max_limit=int(2 * config.round_services),
                seed=config.seed,
            ),
            sessions=controller.sessions,
            telemetry=telemetry,
        )
        admission.auditor = controller.auditor
    workload = make_overload_workload(config)
    offered = multiplier * capacity
    arrivals = [index / offered for index in range(len(workload))]

    vnow = 0.0
    next_arrival = 0
    plain: deque[int] = deque()  # unprotected FIFO (admission off)
    outcomes = served = ok = shed_retry = 0
    shed_by_status: dict[int, int] = {}
    latencies: list[float] = []
    completions: list[tuple] = []
    acked: dict[str, bytes] = {}
    carry = 0.0
    peak_plain = 0
    if telemetry.enabled:
        # Spans (and therefore SLO exemplars) carry the simulation's
        # virtual clock, so /_traces and /_slo line up in one timeline.
        telemetry.tracer.set_virtual_clock(lambda: vnow)

    def shed(token: int, decision) -> None:
        nonlocal outcomes, shed_retry
        request, _fingerprint = workload[token]
        response = decision.to_response()
        shed_by_status[response.status] = (
            shed_by_status.get(response.status, 0) + 1
        )
        if response.retry_after is not None:
            shed_retry += 1
        completions.append((token, "shed", response.status))
        outcomes += 1
        telemetry.record_request(
            request.method, False, max(0.0, vnow - arrivals[token]), vnow
        )

    def serve(token: int) -> None:
        nonlocal outcomes, served, ok
        request, fingerprint = workload[token]
        response = controller.handle(request, fingerprint, vnow)
        served += 1
        outcomes += 1
        if response.ok:
            ok += 1
            if request.method == "put":
                acked[request.key] = request.value
        latency = vnow - arrivals[token]
        latencies.append(latency)
        completions.append((token, request.method, response.status))
        trace_id = None
        if telemetry.enabled:
            recent = telemetry.tracer.recent(1)
            if recent:
                trace_id = recent[-1].trace_id
        telemetry.record_request(
            request.method, response.ok, latency, vnow, trace_id=trace_id
        )

    for _ in range(config.max_rounds):
        if outcomes >= len(workload):
            break
        vnow += round_s
        while next_arrival < len(workload) and arrivals[next_arrival] <= vnow:
            token = next_arrival
            next_arrival += 1
            request, fingerprint = workload[token]
            if admission is None:
                plain.append(token)
                continue
            decision = admission.offer(
                token, request, fingerprint, now=vnow, vnow=arrivals[token]
            )
            if not decision.admitted:
                shed(token, decision)
        queue_depth = len(plain) if admission is None else len(admission.queue)
        peak_plain = max(peak_plain, len(plain))
        # Queued state costs enclave capacity (EPC pressure); a bounded
        # queue bounds the drag, an unbounded one does not.
        effective = capacity / (1.0 + config.overload_drag * queue_depth)
        carry = min(carry + effective * round_s, 2.0 * config.round_services)
        budget = int(carry)
        before = len(latencies)
        if admission is None:
            while budget > 0 and plain:
                serve(plain.popleft())
                budget -= 1
                carry -= 1.0
        else:
            width = min(budget, admission.limiter.limit)
            for token in admission.dispatch(vnow, max(0, width)):
                serve(token)
                carry -= 1.0
            for token, decision in admission.take_shed():
                shed(token, decision)
            fresh = latencies[before:]
            if fresh:
                admission.observe(sum(fresh) / len(fresh))
    else:
        raise RuntimeError("overload point did not converge")

    # No acked write lost: everything acknowledged under shedding must
    # still read back as the acknowledged bytes.
    lost = 0
    for key in sorted(acked):
        response = controller.handle(Request(method="get", key=key), "fp-v", vnow)
        if not response.ok or response.value != acked[key]:
            lost += 1

    duration = max(vnow, arrivals[-1])
    record = [
        "|".join(str(part) for part in entry) for entry in completions
    ]
    if admission is not None:
        record.append("--admission--")
        record.extend(admission.trace_lines())
    ordered = sorted(latencies)
    if sink is not None:
        sink["controller"] = controller
        sink["admission"] = admission
        sink["telemetry"] = telemetry
    return OverloadPoint(
        multiplier=multiplier,
        admission=with_admission,
        offered_rate=offered,
        operations=len(workload),
        served=served,
        ok=ok,
        shed_by_status=shed_by_status,
        shed_with_retry_after=shed_retry,
        duration=duration,
        goodput=ok / duration,
        mean_latency=(
            sum(ordered) / len(ordered) if ordered else 0.0
        ),
        p99_latency=(
            ordered[int(0.99 * (len(ordered) - 1))] if ordered else 0.0
        ),
        peak_queue_depth=(
            peak_plain if admission is None else admission.queue.peak_depth
        ),
        final_limit=0 if admission is None else admission.limiter.limit,
        acked_writes=len(acked),
        acked_writes_lost=lost,
        trace_sha=hashlib.sha256(
            "\n".join(record).encode()
        ).hexdigest()[:16],
        audit_head=(
            "" if controller.auditor is None else controller.auditor.head
        ),
        audit_records=(
            0 if controller.auditor is None else len(controller.auditor.log)
        ),
    )


def run_overload_sweep(
    config: OverloadConfig | None = None,
) -> dict[str, list[OverloadPoint]]:
    """Both series over every multiplier; admission first."""
    config = config or OverloadConfig()
    capacity = config.capacity or calibrate_capacity(config)
    sweep: dict[str, list[OverloadPoint]] = {
        "admission": [],
        "no-admission": [],
    }
    for multiplier in config.multipliers:
        sweep["admission"].append(
            run_overload_point(config, multiplier, True, capacity)
        )
        sweep["no-admission"].append(
            run_overload_point(config, multiplier, False, capacity)
        )
    return sweep


def degradation(points: list[OverloadPoint]) -> float:
    """Goodput at the highest multiplier as a fraction of series peak."""
    peak = max(point.goodput for point in points)
    last = max(points, key=lambda point: point.multiplier)
    return last.goodput / peak if peak else 0.0
