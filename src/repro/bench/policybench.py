"""Policy fast-path microbench (``python -m repro.bench policy``).

Three layers are measured against the interpreter baseline on the
``examples/policies`` corpus:

1. the differential sweep (:mod:`repro.policy.difftest`) — proves the
   compiled closures produce byte-identical decisions, and reports the
   interpreter-predicates / compiled-closure-calls work ratio;
2. the decision cache on a hot ACL workload with a fixed pool of
   request shapes — hit counts are a pure function of the seed;
3. wall-clock throughput, interpreter vs closures vs the full engine.

Only the deterministic metrics (counts, ratios, trace-SHA equality)
are recorded into the ``fig3`` trajectory under the ``policy_``
prefix, following the freshness-overhead precedent: the committed
BENCH entry must regenerate byte-identically on any machine.  The
wall-clock speedups are printed and returned — CI asserts the >=2x
target on them each run — but never written to the trajectory.
"""

from __future__ import annotations

import time
from random import Random

from repro.bench.experiments import _record_fig3
from repro.policy.compiled import PolicyEngine, compiled_form
from repro.policy.difftest import (
    corpus_contexts,
    load_corpus,
    run_differential,
)
from repro.policy.interpreter import PolicyInterpreter

#: Fixed hot-workload size — deliberately *not* REPRO_BENCH_SCALE
#: scaled, so the recorded cache counters are seed-pure.
HOT_EVALUATIONS = 20_000
HOT_SHAPES = 8


def _hot_stream(policy, seed: int) -> list:
    """A skewed request stream over a small pool of contexts.

    Mirrors the paper's observation that production traffic repeats a
    handful of (session, object) shapes: the pool is ``HOT_SHAPES``
    seeded contexts, and the stream revisits them Zipf-ishly.
    """
    pool = [
        ctx
        for operation, ctx in corpus_contexts(
            policy, seed=seed, per_operation=HOT_SHAPES
        )
        if operation == "read"
    ][:HOT_SHAPES]
    rng = Random(seed + 1)
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=HOT_EVALUATIONS)


def _time_loop(evaluate, stream) -> float:
    started = time.perf_counter()
    for ctx in stream:
        evaluate(ctx)
    return time.perf_counter() - started


def run_policy_bench(seed: int = 1, per_operation: int = 40) -> dict:
    """The full policy bench; raises on any decision divergence."""
    corpus = load_corpus()
    diff = run_differential(seed=seed, per_operation=per_operation)

    folded = sum(compiled_form(p).folded_conjuncts for _, p in corpus)
    stripped = sum(compiled_form(p).stripped_clauses for _, p in corpus)
    duplicates = sum(
        compiled_form(p).memoized_duplicates for _, p in corpus
    )

    # Hot ACL workload: cacheable (no object reads, no certificates).
    acl = next(policy for name, policy in corpus if name == "acl")
    stream = _hot_stream(acl, seed)
    engine = PolicyEngine()
    for ctx in stream:
        engine.evaluate(acl, "read", ctx)
    stats = engine.decisions.stats

    interpreter = PolicyInterpreter()
    fast = compiled_form(acl)
    wall_interpreter = _time_loop(
        lambda ctx: interpreter.evaluate(acl, "read", ctx), stream
    )
    wall_closures = _time_loop(
        lambda ctx: fast.evaluate("read", ctx), stream
    )
    timed_engine = PolicyEngine()
    wall_engine = _time_loop(
        lambda ctx: timed_engine.evaluate(acl, "read", ctx), stream
    )

    recorded = {
        "policy_diff_cases": diff.cases,
        "policy_diff_grants": diff.grants,
        "policy_diff_denials": diff.denials,
        "policy_diff_traces_match": int(
            diff.trace_sha_interpreter == diff.trace_sha_compiled
        ),
        "policy_work_ratio": round(diff.work_ratio, 3),
        "policy_folded_conjuncts": folded,
        "policy_stripped_clauses": stripped,
        "policy_memoized_duplicates": duplicates,
        "policy_cache_hits": stats.hits,
        "policy_cache_misses": stats.misses,
        "policy_cache_hit_ratio": round(
            stats.hits / max(1, stats.hits + stats.misses), 4
        ),
    }
    _record_fig3(recorded, preserve=("peak_kiops_", "freshness_"))

    result = dict(recorded)
    result["wall_interpreter_s"] = round(wall_interpreter, 4)
    result["wall_closures_s"] = round(wall_closures, 4)
    result["wall_engine_s"] = round(wall_engine, 4)
    result["wall_speedup_closures"] = round(
        wall_interpreter / wall_closures, 2
    )
    result["wall_speedup_engine"] = round(
        wall_interpreter / wall_engine, 2
    )
    return result
