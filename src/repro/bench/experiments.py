"""One entry point per table/figure of the paper's evaluation (§6).

Every function returns a :class:`~repro.bench.report.FigureResult`
whose series reproduce the corresponding figure's lines.  Wall-clock
cost is controlled by ``REPRO_BENCH_SCALE`` (default 1.0): record and
operation counts scale linearly with it, virtual-time rates do not
depend on it beyond sampling noise.

Scale note: the paper runs 100 k records / 100 k operations; the
default here is 10 k/10 k with cache budgets scaled to preserve hit
rates (see ``paper_ratio_caches``), which reproduces every reported
ratio while keeping the full suite in minutes.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.bench.configs import make_config, paper_ratio_caches
from repro.bench.harness import (
    ExperimentResult,
    LoadedSystem,
    build_system,
    run_point,
)
from repro.bench.report import FigureResult
from repro.bench.trajectory import record as record_trajectory
from repro.core.request import Request
from repro.usecases.versioned import versioned_policy
from repro.ycsb.workload import READ, WORKLOAD_A, WorkloadSpec

#: Client counts for throughput/latency sweeps (the paper uses 1-300).
CLIENT_SWEEP = [1, 20, 50, 100, 200, 300]


def bench_scale() -> float:
    """Current wall-clock scale factor (read per call, not at import)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _scaled(value: int, floor: int = 500) -> int:
    return max(floor, int(value * bench_scale()))


def _workload(records=10_000, ops=10_000, value_size=1024) -> WorkloadSpec:
    return WORKLOAD_A.scaled(
        record_count=_scaled(records),
        operation_count=_scaled(ops),
        value_size=value_size,
    )


def _measure_ops(base: int = 3000) -> int:
    return _scaled(base, floor=800)


OPEN_POLICY = "read :- sessionKeyIs(K)\nupdate :- sessionKeyIs(K)"


def _record_fig3(update: dict, preserve: tuple) -> None:
    """Merge ``update`` into the fig3 trajectory entry.

    ``trajectory.record`` replaces ``latest`` wholesale, but fig3 is
    fed by independent experiments (the throughput sweep, the
    freshness-overhead run, and the policy fast-path bench); each
    preserves the others' keys — selected by the ``preserve`` prefix
    tuple — so no run erases the metrics it did not measure.
    """
    from repro.bench.trajectory import load

    existing = (load("fig3") or {}).get("latest", {})
    merged = {
        key: value
        for key, value in existing.items()
        if key.startswith(preserve)
    }
    merged.update(update)
    record_trajectory("fig3", merged)


# ---------------------------------------------------------------------------
# Fig. 3 + Fig. 4: throughput and latency vs number of clients
# ---------------------------------------------------------------------------

def fig3_fig4(clients=None) -> tuple[FigureResult, FigureResult]:
    """Throughput (Fig. 3) and latency (Fig. 4) for the four configs."""
    clients = clients or CLIENT_SWEEP
    fig3 = FigureResult(
        figure="Fig3",
        title="Throughput vs clients (YCSB-A, 1 KB)",
        x_label="clients",
        paper_notes=[
            "native-sim peaks ~95 kIOP/s, pesos-sim ~85 kIOP/s (>=85%)",
            "disk backend saturates ~1,080 IOP/s (seek-bound drives)",
        ],
    )
    fig4 = FigureResult(
        figure="Fig4",
        title="Mean latency vs clients (YCSB-A, 1 KB)",
        x_label="clients",
        paper_notes=[
            "~0.5-0.9 ms vs the simulator until saturation, then linear",
            "disk latency grows from a single client onwards",
        ],
        default_metric="latency_ms",
    )
    for mode in ("native", "sgx"):
        for backend in ("sim", "disk"):
            config = make_config(mode, backend)
            loaded = build_system(
                config, workload=_workload(), policy_source=OPEN_POLICY
            )
            ops = _measure_ops(3000 if backend == "sim" else 1800)
            for n in clients:
                result = run_point(loaded, n, measure_ops=ops)
                fig3.add(config.name, n, result)
                fig4.add(config.name, n, result)
    _record_fig3(
        {
            f"peak_kiops_{name}": round(fig3.peak(name) / 1000.0, 2)
            for name in fig3.series
        },
        preserve=("freshness_", "policy_"),
    )
    return fig3, fig4


# ---------------------------------------------------------------------------
# Freshness: crypto-work overhead of proof-verified metadata reads
# ---------------------------------------------------------------------------

def freshness_overhead(
    keys: int = 32, rounds: int = 4, value_size: int = 4096
) -> dict:
    """Crypto-work overhead of rollback-protected reads.

    Two identical stores run the same workload — one with a freshness
    authority pinned to a monotonic counter, one without — and the
    overhead is the ratio of *crypto bytes processed* during the
    measured (read-only, cache-warm) phase: AEAD payloads opened, plus
    on the protected side Merkle/leaf hashing and pin sealing.
    Counting bytes instead of wall time makes the recorded figure a
    pure function of the workload, so the committed BENCH entry
    regenerates byte-identically on any machine.  With the proof cache
    warm the budget is <= 10% (docs/freshness.md); the dominant cost
    left is one SHA-256 over each metadata record, so the overhead
    shrinks as objects grow.
    """
    from repro.core.effects import DECRYPT, ENCRYPT, EffectsRecorder
    from repro.core.freshness import FreshnessAuthority, FreshnessEnvironment
    from repro.core.store import ObjectStore, StoredMeta
    from repro.kinetic.cluster import DriveCluster
    from repro.kinetic.drive import KineticDrive

    def build(with_freshness: bool):
        cluster = DriveCluster(num_drives=3)
        clients = cluster.connect_all(
            KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
        )
        effects = EffectsRecorder()
        store = ObjectStore(
            clients,
            b"bench-freshness-key".ljust(32, b"\0"),
            replication_factor=2,
            effects=effects,
        )
        authority = None
        if with_freshness:
            authority = FreshnessAuthority(FreshnessEnvironment.ephemeral())
            authority.bootstrap(store)
            store.freshness = authority
        return store, effects, authority

    def measure(store, effects, authority):
        metas = {}
        for index in range(keys):
            key = f"bench/{index:04d}"
            value = bytes((index + j) % 251 for j in range(value_size))
            metas[key] = store.store_version(StoredMeta(key=key), value, "")
        # Warm-up round: populates the proof cache; the baseline side
        # plays it too so both stores enter measurement identically.
        for key, meta in metas.items():
            store.read_meta(key)
            store.read_value(key, meta.current_version)
        effects.drain()
        if authority is not None:
            marks = (
                authority.tree.hash_bytes,
                authority.seal_bytes,
                authority.leaf_hash_bytes,
            )
        for _ in range(rounds):
            for key, meta in metas.items():
                store.read_meta(key)
                store.read_value(key, meta.current_version)
        aead_bytes = sum(
            event[1]
            for event in effects.drain()
            if event[0] in (ENCRYPT, DECRYPT)
        )
        extra_bytes = 0
        if authority is not None:
            extra_bytes = (
                (authority.tree.hash_bytes - marks[0])
                + (authority.seal_bytes - marks[1])
                + (authority.leaf_hash_bytes - marks[2])
            )
        return aead_bytes, extra_bytes

    base_aead, _zero = measure(*build(with_freshness=False))
    store, effects, authority = build(with_freshness=True)
    fresh_aead, extra = measure(store, effects, authority)
    overhead_pct = round(
        100.0 * (fresh_aead + extra - base_aead) / base_aead, 2
    )
    result = {
        "freshness_overhead_pct": overhead_pct,
        "freshness_proof_cache_hit_ratio": round(
            authority.cache.hit_ratio, 4
        ),
        "freshness_pins": authority.pins,
        "freshness_epoch": authority.epoch,
    }
    _record_fig3(result, preserve=("peak_kiops_", "policy_"))
    return result


# ---------------------------------------------------------------------------
# Fig. 5: scalability with the number of disks (one controller each)
# ---------------------------------------------------------------------------

def _aggregate(config_name: str, results: list) -> ExperimentResult:
    """Combine independent instances into one summed data point."""
    total = sum(result.throughput for result in results)
    mean_latency = sum(
        result.mean_latency * result.operations for result in results
    ) / sum(result.operations for result in results)
    return ExperimentResult(
        config=config_name,
        clients=sum(result.clients for result in results),
        throughput=total,
        mean_latency=mean_latency,
        p50_latency=results[0].p50_latency,
        p99_latency=max(result.p99_latency for result in results),
        operations=sum(result.operations for result in results),
    )


def fig5_scalability(max_disks: int = 3) -> FigureResult:
    """One Pesos instance per disk, 1-3 disks (paper hardware limit)."""
    figure = FigureResult(
        figure="Fig5",
        title="Scalability with number of disks (1 KB)",
        x_label="disks",
        paper_notes=[
            "sim: 95->280 kIOP/s native, 89->242 kIOP/s pesos (near-linear)",
            "disk: 818->2,427 IOP/s native, 823->2,439 IOP/s pesos",
        ],
    )
    for mode in ("native", "sgx"):
        for backend in ("sim", "disk"):
            clients_per_instance = 200 if backend == "sim" else 100
            ops = _measure_ops(2500 if backend == "sim" else 1500)
            instance_results: list = []
            for count in range(1, max_disks + 1):
                config = make_config(
                    mode, backend, num_drives=1, shared_enclosure=False
                )
                loaded = build_system(
                    config,
                    workload=_workload(records=6000, ops=6000),
                    policy_source=OPEN_POLICY,
                    seed=40 + count,
                )
                instance_results.append(
                    run_point(
                        loaded,
                        clients_per_instance,
                        measure_ops=ops,
                        seed=90 + count,
                    )
                )
                figure.add(
                    f"{mode}-{backend}",
                    count,
                    _aggregate(f"{mode}-{backend}", instance_results[:count]),
                )
    return figure


# ---------------------------------------------------------------------------
# Fig. 6: payload-size sweep  +  §6.2 encryption overhead
# ---------------------------------------------------------------------------

PAYLOAD_SIZES = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]


def fig6_payload(sizes=None, clients: int = 100) -> FigureResult:
    figure = FigureResult(
        figure="Fig6",
        title="Throughput vs payload size (100 clients)",
        x_label="bytes",
        paper_notes=[
            "105 kIOP/s at 128 B; gradual decline past 256 B",
            "pesos within ~4% of native below 4 KB",
        ],
    )
    for mode in ("native", "sgx"):
        config = make_config(mode, "sim")
        for size in sizes or PAYLOAD_SIZES:
            records = max(400, min(_scaled(10_000), (8 << 20) // size))
            workload = WORKLOAD_A.scaled(
                record_count=records,
                operation_count=records,
                value_size=size,
            )
            loaded = build_system(
                config, workload=workload, policy_source=OPEN_POLICY
            )
            result = run_point(
                loaded, clients, measure_ops=_measure_ops(2000)
            )
            figure.add(config.name, size, result)
    return figure


def encryption_overhead(clients=(1, 100, 300)) -> FigureResult:
    """§6.2 text: payload encryption costs ~1.5% at 1 KB.

    The comparison zeroes the *charged* AES-GCM cost; the functional
    path still encrypts (turning it off would corrupt the store).
    """
    figure = FigureResult(
        figure="Enc",
        title="Payload-encryption overhead (Pesos vs simulator, 1 KB)",
        x_label="clients",
        paper_notes=["~1.5% overhead across 1-300 clients at 1 KB"],
    )
    base = make_config("sgx", "sim")
    no_encryption = replace(
        base,
        name="sgx-sim-noenc",
        cost=replace(base.cost, encrypt_fixed=0.0, encrypt_per_byte=0.0),
    )
    for config in (base, no_encryption):
        loaded = build_system(
            config, workload=_workload(), policy_source=OPEN_POLICY
        )
        for n in clients:
            figure.add(
                config.name, n, run_point(loaded, n, measure_ops=_measure_ops())
            )
    return figure


# ---------------------------------------------------------------------------
# Fig. 7: replication
# ---------------------------------------------------------------------------

def fig7_replication(max_disks: int = 4, clients: int = 200) -> FigureResult:
    figure = FigureResult(
        figure="Fig7",
        title="Replication to all disks (simulator backend)",
        x_label="disks",
        paper_notes=[
            "native loses ~12% per added replica",
            "pesos drops ~30% from 1->2 disks, ~13% per further disk",
        ],
    )
    for mode in ("native", "sgx"):
        for count in range(1, max_disks + 1):
            config = make_config(mode, "sim", num_drives=count)
            config = replace(config, replication_factor=count)
            loaded = build_system(
                config,
                workload=_workload(records=8000, ops=8000),
                policy_source=OPEN_POLICY,
            )
            figure.add(
                f"{mode}-sim",
                count,
                run_point(loaded, clients, measure_ops=_measure_ops()),
            )
    return figure


# ---------------------------------------------------------------------------
# Fig. 8: policy-to-object mapping vs the policy cache
# ---------------------------------------------------------------------------

def _distinct_policy(index: int) -> str:
    # Distinct constant -> distinct compiled hash, same evaluation cost.
    return (
        f"read :- sessionKeyIs(K) /\\ ge({index}, {index})\n"
        f"update :- sessionKeyIs(K)"
    )


def fig8_policy_cache(policy_counts=None, clients: int = 200) -> FigureResult:
    """Unique-policy sweep; cache bounded at half the object count.

    The paper uses 100 k objects with a 50 k-entry policy cache; at
    scale 1.0 this runs 10 k objects with a 5 k-entry cache — same
    ratio, same cliff past the cache size.
    """
    records = _scaled(10_000)
    cache_entries = records // 2
    policy_counts = policy_counts or [
        1,
        records // 10,
        cache_entries // 2,
        cache_entries,
        int(cache_entries * 1.2),
        int(cache_entries * 1.6),
        records,
    ]
    figure = FigureResult(
        figure="Fig8",
        title=f"Policies per {records} objects (cache={cache_entries})",
        x_label="policies",
        paper_notes=[
            "<=5.5% overhead while policies fit the cache",
            "throughput declines once unique policies exceed cache size",
        ],
    )
    workload = WORKLOAD_A.scaled(
        record_count=records, operation_count=records
    )
    for mode in ("native", "sgx"):
        for count in policy_counts:
            config = make_config(mode, "sim")
            caches = paper_ratio_caches(records, workload.value_size)
            caches.policy_entries = cache_entries
            caches.policy_bytes = 512 << 20  # entry-bounded, not byte-bounded
            loaded = build_system(
                config, workload=workload, cache_config=caches
            )
            controller = loaded.controller
            policy_ids = [
                controller.put_policy("fp-bench", _distinct_policy(i)).policy_id
                for i in range(count)
            ]
            # Re-attach policies round-robin across the loaded objects.
            for index, key in enumerate(loaded.trace.load_keys):
                meta = controller._get_meta(key)
                meta.policy_id = policy_ids[index % count]
                controller.store.write_meta(meta)
            result = run_point(loaded, clients, measure_ops=_measure_ops())
            figure.add(f"{mode}-sim", count, result)
    return figure


# ---------------------------------------------------------------------------
# Fig. 9: versioned-storage use case
# ---------------------------------------------------------------------------

def fig9_versioned(clients=None) -> FigureResult:
    figure = FigureResult(
        figure="Fig9",
        title="Versioned storage vs no policy checking (simulator)",
        x_label="clients",
        paper_notes=[
            "pesos: 82 kIOP/s with version policy vs 84 kIOP/s without (-2.3%)",
        ],
    )
    clients = clients or [50, 100, 200, 300]
    for mode in ("native", "sgx"):
        config = make_config(mode, "sim")
        versioned = build_system(
            config,
            workload=_workload(),
            policy_source=versioned_policy(),
            version_aware=True,
        )
        baseline = build_system(
            config, workload=_workload(), enforce_policies=False
        )
        for n in clients:
            figure.add(
                f"{mode}-versioned",
                n,
                run_point(versioned, n, measure_ops=_measure_ops()),
            )
            figure.add(
                f"{mode}-baseline",
                n,
                run_point(baseline, n, measure_ops=_measure_ops()),
            )
    return figure


# ---------------------------------------------------------------------------
# Fig. 10: mandatory access logging granularity
# ---------------------------------------------------------------------------

def _mal_executor(granularity: int):
    """Op executor adding one log append every ``granularity`` writes."""
    state = {"count": 0, "entries": []}

    def executor(loaded: LoadedSystem, operation):
        controller = loaded.controller
        if operation.op == READ:
            return controller.handle(
                Request(method="get", key=operation.key), "fp-bench"
            )
        state["count"] += 1
        if granularity and state["count"] % granularity == 0:
            # Append the batched intents to the shared log object with
            # direct store writes (the controller keeps the log tail
            # in-enclave; one backend write for value + one for meta).
            log_meta = controller._get_meta("mal-log")
            from repro.core.store import StoredMeta

            if log_meta is None:
                log_meta = StoredMeta(key="mal-log")
            entry = f"'write'('{operation.key}', {state['count']})\n"
            state["entries"].append(entry)
            state["entries"] = state["entries"][-32:]
            content = "".join(state["entries"]).encode()
            controller.store.store_version(log_meta, content, "")
            controller.caches.put_meta("mal-log", log_meta)
        return controller.handle(
            Request(
                method="put",
                key=operation.key,
                value=loaded.payload(operation.value_size),
                policy_id=loaded.policy_id,
            ),
            "fp-bench",
        )

    return executor


def fig10_mal(granularities=None, clients: int = 200) -> FigureResult:
    """Write-only MAL workload; one log entry per G writes."""
    figure = FigureResult(
        figure="Fig10",
        title="MAL log granularity (write-only, simulator)",
        x_label="writes/log entry",
        paper_notes=[
            "G=1 -> ~50 kIOP/s; G=10 -> ~95% of baseline",
            "plateau ~66 kIOP/s pesos / ~77 kIOP/s native; baseline shown at G=0",
        ],
    )
    granularities = granularities or [0, 1, 2, 5, 10, 25, 50, 100]
    write_only = WorkloadSpec(
        "MAL",
        read_proportion=0.0,
        update_proportion=1.0,
        record_count=_scaled(10_000),
        operation_count=_scaled(10_000),
    )
    for mode in ("native", "sgx"):
        config = make_config(mode, "sim")
        loaded = build_system(
            config, workload=write_only, policy_source=OPEN_POLICY
        )
        for granularity in granularities:
            loaded.op_executor = _mal_executor(granularity)
            result = run_point(loaded, clients, measure_ops=_measure_ops())
            figure.add(f"{mode}-sim", granularity, result)
    return figure


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

def ablation_syscalls(clients: int = 300) -> FigureResult:
    """Async vs synchronous (trap-per-call) syscall interface (§4.6)."""
    figure = FigureResult(
        figure="AblSyscall",
        title="Async vs sync syscall interface (Pesos, simulator)",
        x_label="variant",
        paper_notes=["Scone's async interface motivates the design"],
    )
    base = make_config("sgx", "sim")
    sync = replace(base, name="sgx-sim-sync", cost=base.cost.with_sync_syscalls())
    for config in (base, sync):
        loaded = build_system(
            config, workload=_workload(), policy_source=OPEN_POLICY
        )
        figure.add(
            config.name,
            "async" if config is base else "sync",
            run_point(loaded, clients, measure_ops=_measure_ops()),
        )
    return figure


def ablation_caches(clients: int = 300) -> FigureResult:
    """Controller caches on vs effectively off (§4.2)."""
    from repro.core.cache import CacheConfig

    figure = FigureResult(
        figure="AblCache",
        title="Cache regions: paper budgets vs minimal",
        x_label="variant",
        paper_notes=["caching eliminates serial disk accesses (§4.2)"],
    )
    config = make_config("sgx", "sim")
    for name, caches in (
        ("paper-budgets", None),
        (
            "minimal",
            CacheConfig(
                policy_bytes=64 << 10, object_bytes=64 << 10,
                key_bytes=16 << 10,
            ),
        ),
    ):
        loaded = build_system(
            config,
            workload=_workload(),
            policy_source=OPEN_POLICY,
            cache_config=caches,
        )
        figure.add(
            f"sgx-sim-{name}",
            name,
            run_point(loaded, clients, measure_ops=_measure_ops()),
        )
    return figure


def ablation_ssd(clients: int = 300) -> FigureResult:
    """The untrusted-SSD cache tier against slow Kinetic HDDs (§8).

    The SSD absorbs read misses that would otherwise pay a drive
    round-trip, lifting the disk-backend plateau — the paper's stated
    motivation for the extension.
    """
    figure = FigureResult(
        figure="AblSsd",
        title="Untrusted SSD cache tier (Pesos, Kinetic HDD backend)",
        x_label="variant",
        paper_notes=[
            "future work §8: SSD tier vs EPC limits and slow disks"
        ],
    )
    config = make_config("sgx", "disk")
    for label, entries in (("no-ssd", None), ("with-ssd", 1 << 20)):
        loaded = build_system(
            config,
            workload=_workload(),
            policy_source=OPEN_POLICY,
            ssd_cache_entries=entries,
        )
        figure.add(
            f"sgx-disk-{label}",
            label,
            run_point(loaded, clients, measure_ops=_measure_ops(1800)),
        )
    return figure


def ablation_epc(clients: int = 300) -> FigureResult:
    """EPC pressure: enclave working set within vs beyond the EPC."""
    figure = FigureResult(
        figure="AblEpc",
        title="EPC paging: fits vs overflows",
        x_label="variant",
        paper_notes=["EPC paging costs 2x-2000x (§2.1)"],
    )
    base = make_config("sgx", "sim")
    # Shrink the modeled EPC below the enclave footprint so every
    # request pays paging costs.
    tiny_epc = replace(
        base,
        name="sgx-sim-paging",
        cost=replace(base.cost, epc_limit=8 << 20),
    )
    for config, label in ((base, "fits-epc"), (tiny_epc, "overflows-epc")):
        loaded = build_system(
            config, workload=_workload(), policy_source=OPEN_POLICY
        )
        figure.add(
            config.name,
            label,
            run_point(loaded, clients, measure_ops=_measure_ops()),
        )
    return figure


# ---------------------------------------------------------------------------
# Concurrency sweep: the green-thread request engine (§4.6)
# ---------------------------------------------------------------------------

def concurrency_sweep(config=None) -> FigureResult:
    """Engine throughput vs hardware-thread count, in virtual time.

    Unlike the figures above, this experiment runs the real request
    path under the concurrent engine (:mod:`repro.bench.concurrency`)
    instead of the discrete-event model; workers=1 is the sequential
    baseline the speedups are measured against.
    """
    from repro.bench.concurrency import ConcurrencyConfig, run_concurrency_sweep

    config = config or ConcurrencyConfig()
    figure = FigureResult(
        figure="Concurrency",
        title="Request engine: throughput vs hardware threads",
        x_label="workers",
        paper_notes=[
            "Scone-style userspace threading hides drive latency (§4.6)"
        ],
    )
    points = run_concurrency_sweep(config)
    for point in points:
        figure.add(config.name, point.workers, point)
    baseline = points[0]
    best = max(points, key=lambda point: point.throughput)
    record_trajectory(
        "concurrency",
        {
            "kiops_sequential": round(baseline.kiops, 2),
            "kiops_peak": round(best.kiops, 2),
            "peak_workers": best.workers,
            "speedup": round(best.throughput / baseline.throughput, 3),
        },
    )
    return figure


# ---------------------------------------------------------------------------
# Overload sweep: admission control under excess offered load
# ---------------------------------------------------------------------------

def overload_sweep(config=None) -> FigureResult:
    """Goodput vs offered load (0.5x-4x capacity), shedding on and off.

    The "admission" series must degrade gracefully — goodput at the
    highest multiplier stays within 20% of the series peak with a
    bounded queue — while the unprotected series collapses as its
    queue grows (see :mod:`repro.bench.overload` for the model).
    """
    from repro.bench.overload import OverloadConfig, run_overload_sweep

    config = config or OverloadConfig()
    figure = FigureResult(
        figure="Overload",
        title="Admission control: goodput vs offered load",
        x_label="offered (x capacity)",
        default_metric="iops",
        paper_notes=[
            "TEE stores must shed, not queue: EPC pressure makes "
            "overload collapse superlinear"
        ],
    )
    from repro.bench.overload import degradation

    sweep = run_overload_sweep(config)
    for name, points in sweep.items():
        for point in points:
            figure.add(name, point.multiplier, point)
    protected = sweep["admission"]
    at_1x = min(protected, key=lambda p: abs(p.multiplier - 1.0))
    record_trajectory(
        "overload",
        {
            "goodput_peak": round(max(p.goodput for p in protected), 1),
            "goodput_at_max_x": round(
                max(protected, key=lambda p: p.multiplier).goodput, 1
            ),
            "degradation": round(degradation(protected), 4),
            "unprotected_degradation": round(
                degradation(sweep["no-admission"]), 4
            ),
            "p99_latency_ms_at_1x": round(at_1x.p99_latency * 1e3, 3),
            "acked_writes_lost": sum(p.acked_writes_lost for p in protected),
        },
    )
    return figure


def workload_realism(seed: int = 17) -> dict:
    """Arrival-curve scenarios + session-churn soak (BENCH_workload).

    See :mod:`repro.workload.bench`: steady / diurnal / flash-crowd /
    hot-key-storm arrival curves against the real admission + SLO
    stack, plus a million-lifecycle session-churn soak.  Records the
    headline trajectory itself.
    """
    from repro.workload.bench import run_workload_bench

    return run_workload_bench(seed=seed)
