"""Concurrency sweep: engine throughput vs worker count (§4.6).

Unlike the discrete-event benchmarks in :mod:`repro.bench.harness`,
this sweep runs the *real* request path — controller, store, policy
machinery, drives — under the concurrent request engine
(:class:`repro.core.engine.ConcurrentEngine`), measuring virtual-time
throughput as the hardware-thread count grows.  One worker is the
sequential baseline: the same engine, the same cost model, the same
seeded workload, just no overlap.  The ratio between a point and that
baseline is therefore a pure measurement of how much drive latency the
green-thread scheduler hides.

The workload is an I/O-heavy YCSB-style put/get mix over many distinct
keys with deliberately tiny caches, so most operations reach the
drives — where overlap pays.  Everything is seeded: the key sequence,
the operation mix, and the dispatch schedule, so a sweep is exactly
reproducible (``trace_bytes`` of two same-seed runs match byte for
byte).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis import ShadowState
from repro.core.cache import CacheConfig
from repro.core.controller import ControllerConfig, PesosController
from repro.core.engine import ConcurrentEngine, EngineTiming
from repro.core.request import Request
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive


@dataclass
class ConcurrencyConfig:
    """One sweep: an I/O-heavy mixed workload over a small fleet."""

    name: str = "concurrency"
    num_drives: int = 4
    replication_factor: int = 2
    record_count: int = 48
    operations: int = 192
    read_fraction: float = 0.5
    value_size: int = 512
    worker_counts: tuple = (1, 2, 4, 8)
    seed: int = 7
    max_inflight: int = 32
    timing: EngineTiming = field(default_factory=EngineTiming)


@dataclass
class ConcurrencyPoint:
    """One measured worker count."""

    workers: int
    operations: int
    virtual_seconds: float
    throughput: float  # operations per virtual second
    rounds: int
    drive_ops: int
    batched_submissions: int
    coalesced_calls: int
    lock_spins: int

    @property
    def kiops(self) -> float:
        return self.throughput / 1000.0

    def row(self) -> dict:
        return {
            "workers": self.workers,
            "kiops": round(self.kiops, 2),
            "virtual_ms": round(self.virtual_seconds * 1e3, 3),
            "rounds": self.rounds,
            "coalesced": self.coalesced_calls,
        }


def build_concurrency_system(
    config: ConcurrencyConfig,
    telemetry=None,
    audit_log_size: int | None = None,
) -> PesosController:
    """Fresh controller + drives, preloaded with every workload key.

    Caches are kept tiny on purpose: the sweep measures how well the
    engine overlaps *drive* time, so reads must actually reach drives
    rather than the object cache.  ``telemetry`` threads a live sink
    through the whole stack (SLO recording included);
    ``audit_log_size`` enables the tamper-evident decision chain.
    """
    cluster = DriveCluster(num_drives=config.num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    for client in clients:
        client.wire_codec = False
    controller = PesosController(
        clients,
        storage_key=b"concurrency-key".ljust(32, b"\0"),
        config=ControllerConfig(
            replication_factor=config.replication_factor,
            keep_history=False,
            cache=CacheConfig(
                object_bytes=1024, key_bytes=256, policy_bytes=4096
            ),
            audit_log_size=audit_log_size,
        ),
        telemetry=telemetry,
    )
    payload = _payload(config.value_size, config.seed)
    for index in range(config.record_count):
        response = controller.put("fp-bench", _key(index), payload)
        if not response.ok:
            raise RuntimeError(f"load failed: {response.error}")
    return controller


def _key(index: int) -> str:
    return f"c-{index:05d}"


def _payload(size: int, seed: int) -> bytes:
    return random.Random(seed).getrandbits(8 * max(1, size)).to_bytes(
        max(1, size), "big"
    )


def make_workload(config: ConcurrencyConfig) -> list[Request]:
    """Deterministic put/get mix over the preloaded key space."""
    rng = random.Random(config.seed)
    payload = _payload(config.value_size, config.seed)
    requests = []
    for _ in range(config.operations):
        index = rng.randrange(config.record_count)
        if rng.random() < config.read_fraction:
            requests.append(Request(method="get", key=_key(index)))
        else:
            requests.append(
                Request(method="put", key=_key(index), value=payload)
            )
    return requests


def run_concurrency_point(
    config: ConcurrencyConfig, workers: int
) -> ConcurrencyPoint:
    """Build a fresh system and run the seeded workload at one width."""
    controller = build_concurrency_system(config)
    with ConcurrentEngine(
        controller,
        seed=config.seed,
        hardware_threads=workers,
        max_inflight=config.max_inflight,
        timing=config.timing,
    ) as engine:
        responses = engine.run_batch(make_workload(config), "fp-bench")
        for response in responses:
            if not response.ok:
                raise RuntimeError(
                    f"workload op failed: {response.status} {response.error}"
                )
        stats = engine.stats
        return ConcurrencyPoint(
            workers=workers,
            operations=len(responses),
            virtual_seconds=stats.virtual_seconds,
            throughput=len(responses) / stats.virtual_seconds,
            rounds=stats.rounds,
            drive_ops=stats.drive_ops,
            batched_submissions=stats.batched_submissions,
            coalesced_calls=stats.coalesced_calls,
            lock_spins=stats.lock_spins,
        )


def run_concurrency_sweep(
    config: ConcurrencyConfig | None = None,
) -> list[ConcurrencyPoint]:
    """Throughput vs worker count; workers=1 is the sequential baseline."""
    config = config or ConcurrencyConfig()
    return [
        run_concurrency_point(config, workers)
        for workers in config.worker_counts
    ]


def run_sanitizer_overhead(
    config: ConcurrencyConfig | None = None, workers: int = 8
) -> dict:
    """Virtual-time cost of recording sanitizer shadow state.

    Runs the same seeded workload twice — hooks at the no-op default,
    then with a recording :class:`~repro.analysis.ShadowState` — and
    reports both virtual times.  The hooks sit outside the cost model,
    so the two runs must stay within 5% of each other (in practice they
    are bit-identical: instrumentation observes the schedule, it never
    advances the clock).
    """
    config = config or ConcurrencyConfig()
    times = {}
    events = 0
    for label, sanitizer in (("baseline", None), ("sanitized", ShadowState())):
        controller = build_concurrency_system(config)
        with ConcurrentEngine(
            controller,
            seed=config.seed,
            hardware_threads=workers,
            max_inflight=config.max_inflight,
            timing=config.timing,
            sanitizer=sanitizer,
        ) as engine:
            engine.run_batch(make_workload(config), "fp-bench")
            times[label] = engine.stats.virtual_seconds
        if sanitizer is not None:
            events = len(sanitizer.events)
    overhead = times["sanitized"] / times["baseline"] - 1.0
    return {
        "workers": workers,
        "baseline_virtual_ms": round(times["baseline"] * 1e3, 3),
        "sanitized_virtual_ms": round(times["sanitized"] * 1e3, 3),
        "overhead_pct": round(overhead * 100.0, 3),
        "within_budget": abs(overhead) <= 0.05,
        "shadow_events": events,
    }


def run_trace(
    config: ConcurrencyConfig | None = None, workers: int = 8
) -> bytes:
    """The canonical order record of one seeded run (reproducibility)."""
    config = config or ConcurrencyConfig()
    controller = build_concurrency_system(config)
    with ConcurrentEngine(
        controller,
        seed=config.seed,
        hardware_threads=workers,
        max_inflight=config.max_inflight,
        timing=config.timing,
    ) as engine:
        engine.run_batch(make_workload(config), "fp-bench")
        return engine.trace_bytes()
