"""Experiment runner: build a system, load it, sweep client counts.

A *loaded system* couples one functional controller (with its drives
and installed policies) to a YCSB trace.  ``run_point`` then simulates
a closed loop of N clients replaying the trace through the
discrete-event model and reports virtual-time throughput and latency
for that point; sweeping N reproduces the paper's client axes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.bench.configs import SystemConfig
from repro.bench.model import SystemModel
from repro.core.cache import CacheConfig
from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import Request
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.sim import Environment
from repro.ycsb.workload import (
    INSERT,
    READ,
    Trace,
    UPDATE,
    WORKLOAD_A,
    WorkloadSpec,
    generate_trace,
)


@dataclass
class ExperimentResult:
    """One measured point of one configuration."""

    config: str
    clients: int
    throughput: float  # operations per virtual second
    mean_latency: float
    p50_latency: float
    p99_latency: float
    operations: int
    denied: int = 0
    errors: int = 0
    #: Charged virtual service seconds per model layer (measurement
    #: window only); see :meth:`repro.bench.model.SystemModel.breakdown`.
    breakdown: dict = field(default_factory=dict)

    @property
    def kiops(self) -> float:
        return self.throughput / 1000.0

    def row(self) -> dict:
        return {
            "config": self.config,
            "clients": self.clients,
            "kiops": round(self.kiops, 2),
            "mean_ms": round(self.mean_latency * 1e3, 3),
            "p99_ms": round(self.p99_latency * 1e3, 3),
            "ops": self.operations,
        }


@dataclass
class LoadedSystem:
    """A functional controller pre-loaded with a trace's records."""

    config: SystemConfig
    controller: PesosController
    cluster: DriveCluster
    trace: Trace
    policy_id: str = ""
    version_aware: bool = False
    #: Optional override for how one trace operation executes; see
    #: the MAL experiment.  Signature: (system, operation) -> Response.
    op_executor: object = None
    _payload_cache: dict = field(default_factory=dict)

    def payload(self, size: int) -> bytes:
        if size not in self._payload_cache:
            self._payload_cache[size] = random.Random(size).getrandbits(
                8 * max(1, size)
            ).to_bytes(max(1, size), "big")
        return self._payload_cache[size]


def build_system(
    config: SystemConfig,
    workload: WorkloadSpec | None = None,
    policy_source: str = "",
    version_aware: bool = False,
    cache_config: CacheConfig | None = None,
    keep_history: bool = False,
    enforce_policies: bool = True,
    ssd_cache_entries: int | None = None,
    seed: int = 42,
) -> LoadedSystem:
    """Create drives + controller, install policy, run the load phase."""
    workload = workload or WORKLOAD_A
    if cache_config is None:
        from repro.bench.configs import paper_ratio_caches

        cache_config = paper_ratio_caches(
            workload.record_count, workload.value_size
        )
    cluster = DriveCluster(num_drives=config.num_drives)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    for client in clients:
        client.wire_codec = False  # keep the functional hot path cheap
    controller = PesosController(
        clients,
        storage_key=b"bench-key".ljust(32, b"\0"),
        config=ControllerConfig(
            replication_factor=config.replication_factor,
            write_quorum=config.write_quorum,
            keep_history=keep_history or version_aware,
            cache=cache_config,
            enforce_policies=enforce_policies,
            # Versioned benchmarks rewrite hot keys thousands of
            # times; bound the hot metadata record like any production
            # versioned store would.
            version_metadata_window=32 if version_aware else None,
            ssd_cache_entries=ssd_cache_entries,
        ),
    )
    policy_id = ""
    if policy_source:
        response = controller.put_policy("fp-bench", policy_source)
        if not response.ok:
            raise RuntimeError(f"policy rejected: {response.error}")
        policy_id = response.policy_id

    trace = generate_trace(workload, seed=seed)
    loaded = LoadedSystem(
        config=config,
        controller=controller,
        cluster=cluster,
        trace=trace,
        policy_id=policy_id,
        version_aware=version_aware,
    )
    value = loaded.payload(workload.value_size)
    for key in trace.load_keys:
        response = controller.handle(
            Request(
                method="put",
                key=key,
                value=value,
                policy_id=policy_id,
                version=0 if version_aware else None,
            ),
            "fp-bench",
        )
        if not response.ok:
            raise RuntimeError(f"load failed: {response.error}")
    return loaded


def _default_executor(loaded: LoadedSystem, operation):
    """Translate one trace operation into a controller call."""
    controller = loaded.controller
    if operation.op == READ:
        request = Request(method="get", key=operation.key)
    elif operation.op in (UPDATE, INSERT):
        version = None
        if loaded.version_aware:
            meta = controller._get_meta(operation.key)
            version = (
                meta.current_version + 1
                if meta is not None and meta.exists
                else 0
            )
        request = Request(
            method="put",
            key=operation.key,
            value=loaded.payload(operation.value_size),
            policy_id=loaded.policy_id,
            version=version,
        )
    else:
        raise ValueError(f"unknown op {operation.op!r}")
    return controller.handle(request, "fp-bench")


def run_point(
    loaded: LoadedSystem,
    num_clients: int,
    measure_ops: int = 4000,
    warmup_ops: int = 500,
    seed: int = 99,
    telemetry=None,
) -> ExperimentResult:
    """Simulate ``num_clients`` closed-loop clients; measure one point."""
    env = Environment()
    model = SystemModel(
        env, loaded.controller, loaded.config, seed=seed, telemetry=telemetry
    )
    operations = itertools.cycle(loaded.trace.operations)
    total_target = warmup_ops + measure_ops
    state = {"completed": 0, "denied": 0, "errors": 0}
    stop = env.event()
    executor = loaded.op_executor or _default_executor

    def client_loop():
        while state["completed"] < total_target:
            operation = next(operations)
            request_bytes = 96 + operation.value_size
            response = yield from model.request(
                lambda op=operation: executor(loaded, op), request_bytes
            )
            if response.status == 403:
                state["denied"] += 1
            elif not response.ok:
                state["errors"] += 1
            state["completed"] += 1
            if state["completed"] == warmup_ops:
                model.meter.open_window(env.now)
                model.latency.reset()
                model.reset_breakdown()
            if state["completed"] == total_target and not stop.triggered:
                stop.succeed()

    for _ in range(num_clients):
        env.process(client_loop())
    env.run(until=stop)
    model.meter.close_window(env.now)

    return ExperimentResult(
        config=loaded.config.name,
        clients=num_clients,
        throughput=model.meter.rate(),
        mean_latency=model.latency.mean,
        p50_latency=model.latency.percentile(50),
        p99_latency=model.latency.percentile(99),
        operations=measure_ops,
        denied=state["denied"],
        errors=state["errors"],
        breakdown=model.breakdown(),
    )


def sweep_clients(
    loaded: LoadedSystem,
    client_counts: list,
    measure_ops: int = 4000,
    warmup_ops: int = 500,
) -> list:
    """Measure several client counts on one loaded system."""
    return [
        run_point(loaded, n, measure_ops=measure_ops, warmup_ops=warmup_ops)
        for n in client_counts
    ]
