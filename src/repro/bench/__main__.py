"""Run the full evaluation from the command line.

Usage::

    python -m repro.bench                 # every figure
    python -m repro.bench fig3 fig7       # a subset
    REPRO_BENCH_SCALE=0.2 python -m repro.bench fig9   # quick pass

Prints each figure's table and saves JSON under benchmarks/results/.
"""

from __future__ import annotations

import sys
import time

from repro.bench import experiments
from repro.bench.report import save_figure


def _run_policy() -> dict:
    from repro.bench.policybench import run_policy_bench

    return run_policy_bench()


_RUNNERS = {
    "fig3": lambda: experiments.fig3_fig4()[0],
    "fig4": lambda: experiments.fig3_fig4()[1],
    "fig3+4": lambda: experiments.fig3_fig4(),
    "fig5": experiments.fig5_scalability,
    "fig6": experiments.fig6_payload,
    "enc": experiments.encryption_overhead,
    "fig7": experiments.fig7_replication,
    "fig8": experiments.fig8_policy_cache,
    "fig9": experiments.fig9_versioned,
    "fig10": experiments.fig10_mal,
    "abl-syscalls": experiments.ablation_syscalls,
    "abl-caches": experiments.ablation_caches,
    "abl-epc": experiments.ablation_epc,
    "concurrency": experiments.concurrency_sweep,
    "overload": experiments.overload_sweep,
    "freshness": experiments.freshness_overhead,
    "workload": experiments.workload_realism,
    "policy": _run_policy,
}

_DEFAULT = [
    "fig3+4", "fig5", "fig6", "enc", "fig7", "fig8", "fig9", "fig10",
    "abl-syscalls", "abl-caches", "abl-epc", "concurrency", "overload",
    "freshness", "workload", "policy",
]


def main(argv: list[str]) -> int:
    names = argv or _DEFAULT
    unknown = [name for name in names if name not in _RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}")
        print(f"available: {sorted(_RUNNERS)}")
        return 2
    print(f"scale={experiments.bench_scale()}  experiments={names}")
    for name in names:
        started = time.time()
        result = _RUNNERS[name]()
        figures = result if isinstance(result, tuple) else (result,)
        for figure in figures:
            print()
            if isinstance(figure, dict):
                # Scalar experiments (e.g. freshness) return a plain
                # metrics dict instead of a FigureResult.
                for key in sorted(figure):
                    print(f"  {key} = {figure[key]}")
                continue
            print(figure.render())
            breakdown = figure.render_breakdown()
            if breakdown:
                print(breakdown)
            path = save_figure(figure)
            print(f"  [saved {path}]")
        print(f"  [{name}: {time.time() - started:.1f}s wall-clock]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
