"""Benchmark harness reproducing the paper's evaluation (§6).

Architecture: all functional code (controller, policies, caches,
drives' keyspaces) executes for real; a discrete-event simulation
wraps each request and charges calibrated virtual-time costs — CPU on
the controller cores, enclave overheads from the SGX cost model,
network transfer, and backend service time from the drive timing
models.  Throughput/latency numbers are therefore *virtual-time*
rates whose shape (orderings, ratios, crossovers) reproduces the
paper's figures; see EXPERIMENTS.md for paper-vs-measured.

- :mod:`repro.bench.model` — the system model (controller node,
  drives, network, request lifecycle).
- :mod:`repro.bench.configs` — the four evaluation configurations
  (native/Pesos x simulator/disk) and their calibration constants.
- :mod:`repro.bench.harness` — experiment runner: build, load, sweep.
- :mod:`repro.bench.experiments` — one entry point per table/figure.
- :mod:`repro.bench.report` — ASCII tables and JSON result dumps.
"""

from repro.bench.configs import (
    DISK_BACKEND,
    SIM_BACKEND,
    SystemConfig,
    make_config,
)
from repro.bench.harness import ExperimentResult, run_point
from repro.bench.model import SystemModel

__all__ = [
    "DISK_BACKEND",
    "ExperimentResult",
    "SIM_BACKEND",
    "SystemConfig",
    "SystemModel",
    "make_config",
    "run_point",
]
