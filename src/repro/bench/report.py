"""Rendering and persistence of experiment results.

Each experiment produces a :class:`FigureResult`: named series of
(x, ExperimentResult) points plus the paper's reference numbers for
the same figure.  ``render()`` prints the rows the paper reports;
``save()`` writes JSON next to the benchmark outputs so EXPERIMENTS.md
can be regenerated.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """Measured series for one table/figure."""

    figure: str
    title: str
    x_label: str
    series: dict = field(default_factory=dict)  # name -> [(x, result)]
    paper_notes: list = field(default_factory=list)
    #: Metric ``render()`` uses when none is passed explicitly.
    default_metric: str = "kiops"

    def add(self, series_name: str, x, result) -> None:
        self.series.setdefault(series_name, []).append((x, result))

    def throughput_of(self, series_name: str, x):
        for point_x, result in self.series.get(series_name, []):
            if point_x == x:
                return result.throughput
        raise KeyError(f"{series_name}@{x}")

    def peak(self, series_name: str) -> float:
        return max(
            result.throughput for _x, result in self.series[series_name]
        )

    # -- rendering ------------------------------------------------------------

    def render(self, metric: str | None = None) -> str:
        metric = metric or self.default_metric
        lines = [f"== {self.figure}: {self.title} =="]
        xs = sorted(
            {x for points in self.series.values() for x, _r in points},
            key=lambda value: (isinstance(value, str), value),
        )
        names = list(self.series)
        header = [self.x_label] + names
        rows = []
        for x in xs:
            row = [str(x)]
            for name in names:
                value = ""
                for point_x, result in self.series[name]:
                    if point_x == x:
                        if metric == "kiops":
                            value = f"{result.kiops:.1f}"
                        elif metric == "iops":
                            value = f"{result.throughput:.0f}"
                        elif metric == "latency_ms":
                            value = f"{result.mean_latency * 1e3:.2f}"
                        break
                row.append(value)
            rows.append(row)
        lines.append(format_table(header, rows))
        for note in self.paper_notes:
            lines.append(f"  paper: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "paper_notes": self.paper_notes,
            "series": {
                name: [
                    {
                        "x": x,
                        **result.row(),
                        **(
                            {"breakdown": result.breakdown}
                            if getattr(result, "breakdown", None)
                            else {}
                        ),
                    }
                    for x, result in points
                ]
                for name, points in self.series.items()
            },
        }

    def render_breakdown(self) -> str:
        """Per-layer virtual-time shares for the peak point of each series.

        Empty string when no point carries a breakdown (e.g. aggregated
        figures), so callers can print the result unconditionally.
        """
        lines = []
        for name, points in self.series.items():
            best = max(points, key=lambda pair: pair[1].throughput)
            x, result = best
            breakdown = getattr(result, "breakdown", None)
            if not breakdown:
                continue
            total = sum(breakdown.values())
            if not total:
                continue
            shares = ", ".join(
                f"{layer} {seconds / total:.0%}"
                for layer, seconds in sorted(
                    breakdown.items(), key=lambda item: -item[1]
                )
                if seconds / total >= 0.005
            )
            lines.append(f"  layers[{name}@{x}]: {shares}")
        return "\n".join(lines)


def format_table(header: list, rows: list) -> str:
    """Plain ASCII table with aligned columns."""
    widths = [len(str(h)) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(cells):
        return "  ".join(
            str(cell).rjust(width) for cell, width in zip(cells, widths)
        )

    sep = "  ".join("-" * width for width in widths)
    return "\n".join([fmt(header), sep] + [fmt(row) for row in rows])


def results_dir() -> str:
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "..",
                     "benchmarks", "results"),
    )
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


def save_figure(result: FigureResult) -> str:
    """Persist a figure's data as JSON; returns the file path."""
    path = os.path.join(results_dir(), f"{result.figure.lower()}.json")
    with open(path, "w") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
    return path
