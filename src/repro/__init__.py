"""Pesos: Policy Enhanced Secure Object Store — full reproduction.

Reproduces Krahn et al., *Pesos: Policy Enhanced Secure Object Store*
(EuroSys 2018): a policy-enforcing object store whose controller runs
inside an SGX enclave and persists data on Ethernet-attached Kinetic
drives.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quick start::

    from repro import PesosController, DriveCluster, KineticDrive

    cluster = DriveCluster(num_drives=3)
    clients = cluster.connect_all(
        KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
    )
    controller = PesosController(clients, storage_key=b"k" * 32)

    policy = controller.put_policy(
        "fp-alice", "read :- sessionKeyIs(k'fp-alice')\n"
                    "update :- sessionKeyIs(k'fp-alice')"
    )
    controller.put("fp-alice", "diary", b"...", policy_id=policy.policy_id)
    assert controller.get("fp-bob", "diary").status == 403

Package map:

- :mod:`repro.core` — the controller (the paper's contribution).
- :mod:`repro.policy` — the declarative policy language + engine.
- :mod:`repro.kinetic` — Kinetic drives, protocol, client library.
- :mod:`repro.sgx` — shielded execution: attestation, EPC, syscalls.
- :mod:`repro.crypto` — AES-GCM, RSA, certificates, secure channels.
- :mod:`repro.usecases` — content server, time capsules, versioned
  storage, mandatory access logging (§5).
- :mod:`repro.ycsb` — workload generation (§6.1).
- :mod:`repro.bench` — the evaluation harness (§6).
- :mod:`repro.sim` — the discrete-event simulation kernel.
"""

from repro.core.controller import ControllerConfig, PesosController
from repro.core.request import Request, Response
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import KineticDrive
from repro.policy.compiler import compile_policy

__version__ = "1.0.0"

__all__ = [
    "ControllerConfig",
    "DriveCluster",
    "KineticDrive",
    "PesosController",
    "Request",
    "Response",
    "compile_policy",
    "__version__",
]
