"""Time-based storage: time capsules and storage leases (§5.2).

Time-based policies need a trusted time source.  Following the paper,
a third-party *time authority* is named in the policy by its public
key; clients fetch a signed time certificate (including the freshness
nonce Pesos issued to their session) and present it with requests.

The paper's example policy, including the chain of trust where a CA
(``K_CA``) authorizes the time server key::

    update :- certificateSays(K_CA, 'ts'(TSKEY))
            /\\ certificateSays(TSKEY, 'time'(T))
            /\\ ge(T, DATETIMESTAMP)
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.controller import PesosController
from repro.core.request import Request, Response
from repro.crypto.certs import Certificate, CertificateAuthority, KeyPair


def time_policy(
    ca_fingerprint: str,
    release_timestamp: int,
    owner: str,
    freshness_seconds: int = 300,
    mode: str = "capsule",
) -> str:
    """Render a time-based policy.

    ``capsule``: nobody reads before ``release_timestamp``; the owner
    can always update. ``lease``: reads are open, but updates/deletes
    are forbidden until the timestamp passes (legal retention).
    """
    time_clause = (
        f"certificateSays(k'{ca_fingerprint}', 'ts'(TSKEY))"
        f" /\\ certificateSays(TSKEY, {freshness_seconds}, 'time'(T))"
        f" /\\ ge(T, {release_timestamp})"
    )
    owner_clause = f"sessionKeyIs(k'{owner}')"
    if mode == "capsule":
        return (
            f"read :- {time_clause}\n"
            f"update :- {owner_clause}\n"
            f"delete :- {owner_clause} /\\ {time_clause}"
        )
    if mode == "lease":
        creation = f"objId(this, NULL) /\\ {owner_clause}"
        return (
            f"read :- sessionKeyIs(K)\n"
            f"update :- {owner_clause} /\\ {time_clause} \\/ {creation}\n"
            f"delete :- {owner_clause} /\\ {time_clause}"
        )
    raise ValueError(f"unknown time policy mode {mode!r}")


class TimeAuthority:
    """A time server whose key is certified by a CA (the trust chain)."""

    def __init__(self, ca: CertificateAuthority, key_bits: int = 1024):
        self.ca = ca
        self._keypair: KeyPair = ca.issue_keypair("time-authority", key_bits=key_bits)
        fingerprint = self._keypair.public_key.fingerprint()
        #: The CA-signed statement that this key is a time server.
        #: Valid across the whole unix-timestamp range so policies can
        #: name absolute release dates.
        self.endorsement: Certificate = ca.issue_certificate(
            "time-authority-endorsement",
            self._keypair.public_key,
            claims=(("ts", (f"k:{fingerprint}",)),),
            lifetime=1e11,
        )

    def certify_time(self, timestamp: int, nonce: str = "") -> Certificate:
        """Issue a fresh time certificate, optionally nonce-bound."""
        unsigned = Certificate(
            subject="time-statement",
            public_key=self._keypair.public_key,
            issuer="time-authority",
            serial=timestamp,
            not_before=float(timestamp),
            not_after=float(timestamp) + 3600.0,
            claims=(("time", (int(timestamp),)),),
            nonce=nonce,
        )
        return replace(
            unsigned,
            signature=self._keypair.private_key.sign(unsigned.tbs_bytes()),
        )

    def chain_for(self, timestamp: int, nonce: str = "") -> list[Certificate]:
        """Endorsement + time statement, ready to attach to a request."""
        return [self.endorsement, self.certify_time(timestamp, nonce)]


class TimeVault:
    """Time-capsule / lease storage built on the controller."""

    def __init__(
        self,
        controller: PesosController,
        authority: TimeAuthority,
        ca_fingerprint: str,
    ):
        self.controller = controller
        self.authority = authority
        self.ca_fingerprint = ca_fingerprint

    def seal_until(
        self, owner: str, key: str, content: bytes, release_timestamp: int,
        mode: str = "capsule",
    ) -> Response:
        """Store content that opens only after ``release_timestamp``."""
        source = time_policy(
            self.ca_fingerprint, release_timestamp, owner, mode=mode
        )
        policy = self.controller.put_policy(owner, source)
        return self.controller.handle(
            Request(method="put", key=key, value=content,
                    policy_id=policy.policy_id),
            owner,
        )

    def open_at(self, client: str, key: str, wall_clock: int) -> Response:
        """Attempt a read, presenting a time certificate for ``wall_clock``."""
        session = self.controller.sessions.connect(client, now=float(wall_clock))
        chain = self.authority.chain_for(wall_clock, nonce=session.nonce)
        return self.controller.handle(
            Request(method="get", key=key, certificates=chain),
            client,
            now=float(wall_clock),
        )
