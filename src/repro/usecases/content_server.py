"""Content server with per-object access control lists (§5.1).

The paper's example policy::

    read    :- sessionKeyIs(K_alice) \\/ sessionKeyIs(K_bob)
    update  :- sessionKeyIs(K_alice)
    destroy :- sessionKeyIs(K_admin)

Clients are identified by the certificate fingerprint of their TLS
session; ACLs are simply lists of those fingerprints.
"""

from __future__ import annotations

from repro.core.controller import PesosController
from repro.core.request import Response
from repro.errors import ConfigurationError


def acl_policy(
    readers: list[str],
    writers: list[str],
    deleters: list[str] | None = None,
) -> str:
    """Render an access-control policy for the given fingerprints."""
    if not readers and not writers:
        raise ConfigurationError("ACL needs at least one reader or writer")

    def clause(fingerprints: list[str]) -> str:
        return " \\/ ".join(f"sessionKeyIs(k'{fp}')" for fp in fingerprints)

    lines = []
    if readers:
        lines.append(f"read :- {clause(readers)}")
    if writers:
        lines.append(f"update :- {clause(writers)}")
    if deleters:
        lines.append(f"delete :- {clause(deleters)}")
    return "\n".join(lines)


class ContentServer:
    """Serves objects to clients subject to per-object ACLs."""

    def __init__(self, controller: PesosController, admin_fingerprint: str):
        self.controller = controller
        self.admin = admin_fingerprint
        self._policy_ids: dict[tuple, str] = {}

    def _policy_for(
        self, readers: list[str], writers: list[str]
    ) -> str:
        """Install (or reuse) the ACL policy for this reader/writer set."""
        cache_key = (tuple(readers), tuple(writers))
        if cache_key not in self._policy_ids:
            source = acl_policy(readers, writers, deleters=[self.admin])
            response = self.controller.put_policy(self.admin, source)
            if not response.ok:
                raise ConfigurationError(f"policy rejected: {response.error}")
            self._policy_ids[cache_key] = response.policy_id
        return self._policy_ids[cache_key]

    def publish(
        self,
        owner: str,
        key: str,
        content: bytes,
        readers: list[str],
        writers: list[str] | None = None,
    ) -> Response:
        """Upload content readable by ``readers``, writable by ``writers``."""
        writers = writers if writers is not None else [owner]
        if owner not in writers:
            writers = [owner, *writers]
        policy_id = self._policy_for(readers, writers)
        return self.controller.put(owner, key, content, policy_id=policy_id)

    def fetch(self, client: str, key: str) -> Response:
        return self.controller.get(client, key)

    def remove(self, client: str, key: str) -> Response:
        return self.controller.delete(client, key)
