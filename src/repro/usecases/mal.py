"""Mandatory Access Logging (§5.4).

MAL combines access control, versioning, and provenance: before any
access to a protected object, the client must (1) append its intent to
a log object, then (2) perform the access.  Pesos grants the access
only if the log's latest version contains the matching intent entry —
so the log is a complete, policy-enforced history of who did what.

The log itself is an object with a version-storage policy (append by
supplying the successor version), and the protected object's policy is
the paper's rule::

    read   :- objId(THIS,o) /\\ objId(LOG,l) /\\ currIndex(o,v)
              /\\ sessionKeyIs(u) /\\ objSays(l,lv,'read'(o,v,u))
    update :- objId(THIS,o) /\\ objId(LOG,l) /\\ sessionKeyIs(u)
              /\\ currIndex(o,v) /\\ nextIndex(o,v+1)
              /\\ objHash(o,v,cH) /\\ objHash(o,v+1,nH)
              /\\ objSays(l,lv,'write'(o,v,cH,nH,u))
"""

from __future__ import annotations

import hashlib

from repro.core.controller import PesosController
from repro.core.request import Request, Response
from repro.errors import PesosError
from repro.usecases.versioned import versioned_policy


def mal_policy(owner: str) -> str:
    """The §5.4 MAL policy with a creation clause for ``owner``."""
    return (
        "read :- objId(this, O) /\\ objId(log, L) /\\ currIndex(O, V)"
        " /\\ sessionKeyIs(U) /\\ objSays(L, LV, 'read'(O, V, U))\n"
        "update :- objId(this, O) /\\ objId(log, L) /\\ sessionKeyIs(U)"
        " /\\ currIndex(O, V) /\\ nextIndex(O, V + 1)"
        " /\\ objHash(O, V, CH) /\\ objHash(O, V + 1, NH)"
        " /\\ objSays(L, LV, 'write'(O, V, CH, NH, U))"
        f" \\/ objId(this, NULL) /\\ sessionKeyIs(k'{owner}')\n"
        f"delete :- sessionKeyIs(k'{owner}')"
    )


def read_intent(key: str, version: int, client: str) -> str:
    """Render a read-intent log line."""
    return f"'read'('{key}', {version}, k'{client}')"


def write_intent(
    key: str, version: int, current_hash: str, new_hash: str, client: str
) -> str:
    """Render a write-intent log line."""
    return (
        f"'write'('{key}', {version}, h'{current_hash}', "
        f"h'{new_hash}', k'{client}')"
    )


class MalStore:
    """Client-side MAL workflow: log the intent, then act."""

    LOG_SUFFIX = ".log"

    def __init__(self, controller: PesosController):
        self.controller = controller
        self._mal_policies: dict[str, str] = {}
        self._log_policy_id: str | None = None

    # -- setup ----------------------------------------------------------------

    def _log_policy(self, fingerprint: str) -> str:
        if self._log_policy_id is None:
            response = self.controller.put_policy(
                fingerprint, versioned_policy()
            )
            self._log_policy_id = response.policy_id
        return self._log_policy_id

    def protect(self, owner: str, key: str, initial: bytes) -> Response:
        """Create a MAL-protected object and its empty log."""
        log_key = key + self.LOG_SUFFIX
        log = self.controller.handle(
            Request(
                method="put",
                key=log_key,
                value=b"",
                policy_id=self._log_policy(owner),
                version=0,
            ),
            owner,
        )
        if not log.ok:
            raise PesosError(f"log creation failed: {log.error}")
        policy = self.controller.put_policy(owner, mal_policy(owner))
        if not policy.ok:
            raise PesosError(f"MAL policy rejected: {policy.error}")
        self._mal_policies[key] = policy.policy_id
        return self.controller.handle(
            Request(
                method="put", key=key, value=initial,
                policy_id=policy.policy_id,
            ),
            owner,
        )

    # -- logging ---------------------------------------------------------------

    def _append_log(self, client: str, key: str, entry: str) -> None:
        log_key = key + self.LOG_SUFFIX
        current = self.controller.get(client, log_key)
        if not current.ok:
            raise PesosError(f"cannot read log: {current.error}")
        content = current.value
        if content and not content.endswith(b"\n"):
            content += b"\n"
        content += entry.encode() + b"\n"
        response = self.controller.handle(
            Request(
                method="put",
                key=log_key,
                value=content,
                version=current.version + 1,
            ),
            client,
        )
        if not response.ok:
            raise PesosError(f"log append failed: {response.error}")

    # -- logged operations --------------------------------------------------------

    def read(self, client: str, key: str) -> Response:
        """Log a read intent, then read."""
        meta = self.controller.get(client, key + self.LOG_SUFFIX)
        if not meta.ok:
            raise PesosError(f"object {key!r} is not MAL-protected")
        target = self.controller._get_meta(key)
        if target is None or not target.exists:
            raise PesosError(f"no such object {key!r}")
        self._append_log(
            client, key, read_intent(key, target.current_version, client)
        )
        return self.controller.get(client, key)

    def unlogged_read(self, client: str, key: str) -> Response:
        """A read without the intent entry (should be denied)."""
        return self.controller.get(client, key)

    def write(self, client: str, key: str, new_value: bytes) -> Response:
        """Log a write intent (with hashes), then update."""
        target = self.controller._get_meta(key)
        if target is None or not target.exists:
            raise PesosError(f"no such object {key!r}")
        version = target.current_version
        current_hash = target.versions[version].content_hash
        new_hash = hashlib.sha256(new_value).hexdigest()
        self._append_log(
            client,
            key,
            write_intent(key, version, current_hash, new_hash, client),
        )
        return self.controller.handle(
            Request(
                method="put", key=key, value=new_value, version=version + 1
            ),
            client,
        )

    def audit_trail(self, client: str, key: str) -> list[str]:
        """The log's current content as text lines."""
        log = self.controller.get(client, key + self.LOG_SUFFIX)
        if not log.ok:
            raise PesosError(log.error)
        return [line for line in log.value.decode().splitlines() if line]
