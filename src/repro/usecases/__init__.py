"""The paper's four real-world use cases (§5), built on the public API.

Each helper only composes policies and requests — all enforcement
happens in the controller, demonstrating that the policy language
covers these workflows without controller changes:

- :mod:`repro.usecases.content_server` — per-object ACLs (§5.1).
- :mod:`repro.usecases.time_based` — time capsules and storage leases
  backed by a time authority issuing signed time certificates (§5.2).
- :mod:`repro.usecases.versioned` — versioned storage where updates
  must supply the successor version number (§5.3).
- :mod:`repro.usecases.mal` — mandatory access logging: every access
  requires a matching intent entry in an append-only log (§5.4).
"""

from repro.usecases.content_server import ContentServer, acl_policy
from repro.usecases.mal import MalStore, mal_policy
from repro.usecases.time_based import TimeAuthority, TimeVault, time_policy
from repro.usecases.versioned import VersionedStore, versioned_policy

__all__ = [
    "ContentServer",
    "MalStore",
    "TimeAuthority",
    "TimeVault",
    "VersionedStore",
    "acl_policy",
    "mal_policy",
    "time_policy",
    "versioned_policy",
]
