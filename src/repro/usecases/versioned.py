"""Versioned storage (§5.3).

The paper's policy: an update must carry the successor of the current
version number (so concurrent writers cannot silently clobber each
other), with an exception allowing initial creation at version 0::

    update :- objId(this, O) /\\ currVersion(O, cV) /\\ nextVersion(cV + 1)
           \\/ objId(this, NULL) /\\ nextVersion(0)

Reads are open to all authenticated clients here; restricting history
access to privileged clients is a matter of adding ACL clauses.
"""

from __future__ import annotations

from repro.core.controller import PesosController
from repro.core.request import Request, Response
from repro.errors import PesosError


def versioned_policy(writers: list[str] | None = None) -> str:
    """The §5.3 update rule, optionally restricted to ``writers``."""
    if not writers:
        version_rule = (
            "objId(this, O) /\\ currVersion(O, cV) /\\ nextVersion(cV + 1)"
            " \\/ objId(this, NULL) /\\ nextVersion(0)"
        )
    else:
        # The condition language is DNF, so the writer ACL is expanded
        # across both the update and the creation disjunct per writer.
        clauses = []
        for fp in writers:
            clauses.append(
                f"objId(this, O) /\\ currVersion(O, cV)"
                f" /\\ nextVersion(cV + 1) /\\ sessionKeyIs(k'{fp}')"
            )
            clauses.append(
                f"objId(this, NULL) /\\ nextVersion(0)"
                f" /\\ sessionKeyIs(k'{fp}')"
            )
        version_rule = " \\/ ".join(clauses)
    return f"read :- sessionKeyIs(K)\nupdate :- {version_rule}"


class VersionedStore:
    """Client-side helper enforcing the §5.3 update discipline."""

    def __init__(self, controller: PesosController, writers=None):
        self.controller = controller
        self._policy_id: str | None = None
        self._writers = writers

    def _policy(self, fingerprint: str) -> str:
        if self._policy_id is None:
            response = self.controller.put_policy(
                fingerprint, versioned_policy(self._writers)
            )
            if not response.ok:
                raise PesosError(f"policy install failed: {response.error}")
            self._policy_id = response.policy_id
        return self._policy_id

    def put(
        self, client: str, key: str, value: bytes, expected_version: int
    ) -> Response:
        """Write ``value`` as version ``expected_version`` (0 to create)."""
        return self.controller.handle(
            Request(
                method="put",
                key=key,
                value=value,
                policy_id=self._policy(client),
                version=expected_version,
            ),
            client,
        )

    def get(self, client: str, key: str, version: int | None = None) -> Response:
        return self.controller.get(client, key, version=version)

    def history(self, client: str, key: str) -> list[bytes]:
        """Every surviving version of ``key``, oldest first."""
        latest = self.controller.get(client, key)
        if not latest.ok:
            raise PesosError(latest.error)
        values = []
        for version in range(latest.version + 1):
            response = self.controller.get(client, key, version=version)
            if response.ok:
                values.append(response.value)
        return values
