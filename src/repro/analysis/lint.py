"""Project-specific AST lint rules.

These are not style rules — each one guards an invariant the test
suite depends on but cannot easily assert:

``det-wall-clock``
    No ``time.time()`` / ``time.monotonic()`` / ``datetime.now()``
    outside ``bench/__main__.py``.  The engine is deterministic only
    because every timestamp flows from the virtual clock; one stray
    wall-clock read breaks replayability silently.
``det-unseeded-random``
    No module-level ``random.*`` calls (the process-global, unseeded
    RNG).  Randomness must come from a ``random.Random(seed)`` instance
    threaded through explicitly.
``sgx-enclave-io``
    Nothing under ``sgx/`` performs direct I/O (``socket``, ``os``
    file descriptors, builtin ``open``) except the syscall model
    (``sgx/syscalls.py``).  The enclave boundary is the point of the
    model; in-enclave I/O would bypass the transition accounting.
``core-drive-io``
    ``core/`` code never calls a drive client's ``.direct(...)``
    bypass.  All drive traffic must flow through the interceptor so
    the scheduler sees every preemption point.  The engine's two
    legitimate call sites (the interceptor itself) carry pragmas.
``core-no-swallow``
    No ``except Exception:`` / bare ``except:`` handler whose body
    lacks a ``raise``.  Swallowed faults turn corruption into silence;
    handlers must narrow the type, re-raise, or both.  Two variants
    ride along: a broad handler that interpolates the *bound
    exception* into a ``Response(...)`` leaks internal state (paths,
    offsets, secret-bearing reprs) to HTTP clients — error; and a
    broad handler in ``core/`` that only re-raises is flagged as a
    *warning* so each one carries a written justification pragma.
``crypto-nonce-reuse``
    Every AEAD/GCM ``seal``/``encrypt`` call's nonce argument must be
    visibly fresh: ``secrets.token_bytes(...)``, a monotonic-counter
    ``.to_bytes(...)`` derivation, a nonce-derivation helper call, or
    a pass-through ``nonce`` parameter of an enclosing wrapper.  A
    constant, reused attribute, or anything else repeats (key, nonce)
    pairs — which breaks GCM catastrophically (key recovery, not just
    one lost message).
``telemetry-label-cardinality``
    ``.labels(...)`` arguments must be bounded: no f-strings,
    ``%``/``.format`` formatting, or values named after unbounded
    identifiers (keys, fingerprints, transaction ids).  Unbounded
    labels grow the metrics registry without limit.
``det-default-clock``
    No defaulted time parameter (``now``, ``wall_clock``,
    ``timestamp``) in ``core/``.  A forgotten ``now`` silently pins a
    caller to time zero, so expiry and eviction decisions compare
    fresh state against the epoch — sessions were expired (or kept)
    depending on call order, not on the clock.  Outer entry points
    that deliberately treat the virtual epoch as "no clock yet" carry
    pragmas; everything below them must require the clock.
``core-unverified-meta-read``
    ``core/`` code outside the store and the freshness layer never
    reads drive state through a raw client call (``.get``,
    ``.get_key_range``, ...).  Such reads bypass Merkle proof
    verification against the pinned root, so a replayed stale replica
    would be trusted on its version number alone — the exact hole
    rollback protection closes.  Route reads through
    ``ObjectStore.read_meta`` / ``read_policy`` / ``read_value``;
    deliberate raw reads (e.g. migration sources whose result
    re-enters the verified path) carry pragmas.

``policy-stale-decision-cache``
    Every write to a policy *decision* cache (a ``.put(...)`` on a
    receiver whose name mentions ``decision``) must carry the store
    epoch and the policy identity explicitly — as keywords or as
    identifiers in the key arguments.  A decision memoized without
    them survives ``put``/``put_policy`` and keeps granting (or
    denying) against state that no longer exists; the epoch/hash key
    is what makes staleness structurally unreachable.

Suppression: ``# pesos: allow[rule-id]`` on the flagged line or the
line above (see :mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding, suppressed_rules

#: Files exempt from the determinism rules (the bench driver reports
#: real wall-clock alongside virtual time, on purpose).
_WALL_CLOCK_EXEMPT = ("bench/__main__.py",)

#: The one sgx module allowed to model host I/O.
_SGX_IO_EXEMPT = ("sgx/syscalls.py",)

#: Absolute-time reads: values that leak wall-clock timestamps into
#: behaviour or stored state.  ``perf_counter``/``monotonic`` deltas
#: feeding telemetry histograms are measurement-only and allowed.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_GLOBAL_RANDOM_CALLS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "getrandbits",
    "randbytes",
    "seed",
}

_IO_MODULES = {"socket", "subprocess"}

_OS_IO_ATTRS = {
    "read",
    "write",
    "open",
    "pipe",
    "popen",
    "system",
    "fork",
    "exec",
    "socket",
}

#: Identifier fragments that signal unbounded metric label values.
_HIGH_CARDINALITY_NAMES = {
    "key",
    "fingerprint",
    "txid",
    "object_id",
    "policy_id",
    "nonce",
    "blob",
}


#: Parameter names that carry the virtual clock; defaulting one in
#: ``core/`` hides a time-zero pin from every forgetful caller.
_TIME_PARAM_NAMES = {"now", "wall_clock", "timestamp"}


#: Drive-client read methods that return raw (proof-unverified) state.
_DRIVE_READ_ATTRS = {
    "get",
    "get_version",
    "get_next",
    "get_previous",
    "get_key_range",
}

#: The two core modules that *implement* verification and therefore
#: legitimately touch raw client reads.
_FRESHNESS_EXEMPT = ("core/store.py", "core/freshness.py")


#: AEAD entry points whose first argument is a nonce.
_NONCE_METHODS = {"seal", "encrypt"}


#: Modules whose import aliases the visitor resolves, so
#: ``import time as _time`` cannot dodge the rules.
_TRACKED_MODULES = {"time", "datetime", "random", "socket", "subprocess", "os"}


def _is_fresh_nonce_expr(node: ast.AST) -> bool:
    """Expression shapes that produce a never-repeating nonce."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        # ``secrets.token_bytes(12)`` / ``seq.to_bytes(12, "big")`` /
        # ``self._nonce(generation, index)`` derivation helpers.
        if func.attr in ("token_bytes", "to_bytes"):
            return True
        if "nonce" in func.attr.lower():
            return True
    elif isinstance(func, ast.Name) and "nonce" in func.id.lower():
        return True
    return False


def _receiver_names(node: ast.AST) -> list[str]:
    """Every identifier in a call-receiver chain, subscripts included.

    ``self.store.clients[index]`` yields ``["clients", "store",
    "self"]`` — unlike :func:`_dotted`, which gives up at the
    subscript.  Calls in the chain resolve through their function.
    """
    names: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            names.append(node.id)
            return names
        else:
            return names


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``, or None for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.in_sgx = rel_path.startswith("sgx/")
        self.in_core = rel_path.startswith("core/")
        self.findings: list[Finding] = []
        #: Local name -> canonical dotted path, for tracked modules.
        self._aliases: dict[str, tuple[str, ...]] = {}
        #: Per-function stack of names known to hold a fresh nonce.
        self._nonce_scopes: list[set[str]] = []

    def _resolve(self, dotted: tuple[str, ...]) -> tuple[str, ...]:
        alias = self._aliases.get(dotted[0])
        if alias is not None:
            return alias + dotted[1:]
        return dotted

    def report(
        self, rule: str, node: ast.AST, message: str,
        severity: str = "error",
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                file=self.rel_path,
                line=getattr(node, "lineno", 0),
                severity=severity,
            )
        )

    # -- determinism -------------------------------------------------------

    def _check_wall_clock(self, node: ast.Call) -> None:
        if self.rel_path in _WALL_CLOCK_EXEMPT:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        dotted = self._resolve(dotted)
        tail = dotted[-2:] if len(dotted) >= 2 else ()
        if tuple(tail) in _WALL_CLOCK_CALLS:
            self.report(
                "det-wall-clock",
                node,
                f"wall-clock read {'.'.join(dotted)}() breaks deterministic "
                "replay; use the engine's virtual clock",
            )
        if dotted == ("random",) or (
            len(dotted) == 2
            and dotted[0] == "random"
            and dotted[1] in _GLOBAL_RANDOM_CALLS
        ):
            self.report(
                "det-unseeded-random",
                node,
                f"{'.'.join(dotted)}() uses the process-global unseeded "
                "RNG; thread a random.Random(seed) instance instead",
            )

    # -- sgx I/O -----------------------------------------------------------

    def _check_sgx_io(self, node: ast.Call) -> None:
        if not self.in_sgx or self.rel_path in _SGX_IO_EXEMPT:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        dotted = self._resolve(dotted)
        if dotted == ("open",):
            self.report(
                "sgx-enclave-io",
                node,
                "builtin open() inside the enclave model bypasses the "
                "syscall boundary; route through sgx/syscalls.py",
            )
        elif dotted[0] in _IO_MODULES or (
            dotted[0] == "os" and dotted[-1] in _OS_IO_ATTRS
        ):
            self.report(
                "sgx-enclave-io",
                node,
                f"direct host I/O {'.'.join(dotted)}() inside the enclave "
                "model; only sgx/syscalls.py may touch the host",
            )

    def _check_sgx_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if not self.in_sgx or self.rel_path in _SGX_IO_EXEMPT:
            return
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module or ""]
        for name in names:
            if name.split(".")[0] in _IO_MODULES:
                self.report(
                    "sgx-enclave-io",
                    node,
                    f"import of {name} inside the enclave model; only "
                    "sgx/syscalls.py may touch the host",
                )

    # -- drive bypass ------------------------------------------------------

    def _check_drive_bypass(self, node: ast.Call) -> None:
        if not self.in_core:
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "direct":
            self.report(
                "core-drive-io",
                node,
                ".direct() bypasses the drive-op interceptor, hiding a "
                "preemption point from the scheduler; issue the op through "
                "the intercepted client call",
            )

    # -- unverified metadata reads -----------------------------------------

    def _check_unverified_meta_read(self, node: ast.Call) -> None:
        if not self.in_core or self.rel_path in _FRESHNESS_EXEMPT:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _DRIVE_READ_ATTRS:
            return
        receiver = _receiver_names(func.value)
        if any(name in ("client", "clients") for name in receiver):
            self.report(
                "core-unverified-meta-read",
                node,
                f"raw drive read .{func.attr}() bypasses Merkle proof "
                "verification against the pinned root; read through the "
                "store's verified read path",
            )

    # -- policy decision-cache writes --------------------------------------

    def _check_decision_cache_write(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "put":
            return
        receiver = _receiver_names(func.value)
        if not any("decision" in name.lower() for name in receiver):
            return
        mentioned: set[str] = set()
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            for inner in ast.walk(value):
                if isinstance(inner, ast.Name):
                    mentioned.add(inner.id.lower())
                elif isinstance(inner, ast.Attribute):
                    mentioned.add(inner.attr.lower())
        mentioned.update(kw.arg.lower() for kw in node.keywords if kw.arg)
        missing = [
            part
            for part in ("epoch", "policy")
            if not any(part in name for name in mentioned)
        ]
        if missing:
            self.report(
                "policy-stale-decision-cache",
                node,
                "decision-cache write without an explicit "
                f"{'/'.join(missing)} key: a memoized verdict outlives "
                "put/put_policy and grants against state that no longer "
                "exists; key the entry by (policy hash, epoch)",
            )

    # -- telemetry labels --------------------------------------------------

    def _check_labels(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "labels"
        ):
            return
        for arg in node.args:
            if isinstance(arg, ast.JoinedStr):
                self.report(
                    "telemetry-label-cardinality",
                    node,
                    "f-string label value: interpolated labels are "
                    "unbounded; use a fixed label set",
                )
            elif isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mod):
                self.report(
                    "telemetry-label-cardinality",
                    node,
                    "%-formatted label value: interpolated labels are "
                    "unbounded; use a fixed label set",
                )
            elif (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "format"
            ):
                self.report(
                    "telemetry-label-cardinality",
                    node,
                    ".format() label value: interpolated labels are "
                    "unbounded; use a fixed label set",
                )
            else:
                name = None
                if isinstance(arg, ast.Name):
                    name = arg.id
                elif isinstance(arg, ast.Attribute):
                    name = arg.attr
                if name is not None and name.lower() in _HIGH_CARDINALITY_NAMES:
                    self.report(
                        "telemetry-label-cardinality",
                        node,
                        f"label value {name!r} looks unbounded (per-key / "
                        "per-principal); metrics registries must stay "
                        "bounded",
                    )

    # -- defaulted clocks --------------------------------------------------

    def _check_default_clock(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if not self.in_core:
            return
        args = node.args
        positional = args.posonlyargs + args.args
        defaulted = positional[len(positional) - len(args.defaults):]
        flagged = [
            arg
            for arg in defaulted
            if arg.arg in _TIME_PARAM_NAMES
        ]
        flagged.extend(
            arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None and arg.arg in _TIME_PARAM_NAMES
        )
        for arg in flagged:
            self.report(
                "det-default-clock",
                arg,
                f"time parameter {arg.arg!r} has a default: a forgotten "
                "clock pins the caller to time zero and skews every "
                "expiry decision; make it a required keyword argument",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_default_clock(node)
        self._enter_function(node)
        self.generic_visit(node)
        self._nonce_scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_default_clock(node)
        self._enter_function(node)
        self.generic_visit(node)
        self._nonce_scopes.pop()

    # -- nonce freshness ---------------------------------------------------

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Collect the names that provably hold a fresh nonce here:
        ``nonce``-named parameters (wrapper pass-through — the caller
        owes the freshness) and locals assigned from a fresh-nonce
        expression anywhere in the body."""
        args = node.args
        safe = {
            arg.arg
            for arg in args.posonlyargs + args.args + args.kwonlyargs
            if "nonce" in arg.arg.lower()
        }
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and _is_fresh_nonce_expr(
                stmt.value
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        safe.add(target.id)
        self._nonce_scopes.append(safe)

    def _check_nonce_freshness(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _NONCE_METHODS or len(node.args) < 2:
            return
        nonce = node.args[0]
        if _is_fresh_nonce_expr(nonce):
            return
        if isinstance(nonce, ast.Name) and any(
            nonce.id in scope for scope in self._nonce_scopes
        ):
            return
        self.report(
            "crypto-nonce-reuse",
            node,
            f".{func.attr}() nonce is not visibly fresh: a repeated "
            "(key, nonce) pair breaks GCM outright; use "
            "secrets.token_bytes(), a monotonic counter's .to_bytes(), "
            "or a nonce-derivation helper",
        )

    # -- exception swallowing ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        # BaseException is excluded: naming it is always deliberate
        # (generator adapters that surface errors out-of-band).
        broad = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id == "Exception"
        )
        label = (
            "bare except:"
            if node.type is None
            else "except Exception:"
        )
        reraises = any(
            isinstance(inner, ast.Raise)
            for stmt in node.body
            for inner in ast.walk(stmt)
        )
        if broad and not reraises:
            self.report(
                "core-no-swallow",
                node,
                f"{label} swallows every failure silently; narrow the "
                "exception type or re-raise after recording",
            )
        if broad and node.name and self._leaks_exc_into_response(node):
            self.report(
                "core-no-swallow",
                node,
                f"{label} interpolates the raw exception into an HTTP "
                "response: a broad catch reprs *anything* that went "
                "wrong — paths, offsets, secret-bearing state — "
                "straight to the client; narrow the type or send a "
                "fixed message",
            )
        elif broad and reraises and self.in_core:
            self.report(
                "core-no-swallow",
                node,
                f"broad {label} re-raise in core/: deliberate "
                "catch-alls must carry a written justification pragma "
                "so the next narrowing sweep skips them knowingly",
                severity="warning",
            )
        self.generic_visit(node)

    def _leaks_exc_into_response(self, node: ast.ExceptHandler) -> bool:
        """Does the handler body pass the bound exception (or any
        expression containing it) into a ``Response(...)``?"""
        bound = node.name
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if not (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "Response"
                ):
                    continue
                values = list(inner.args) + [
                    kw.value for kw in inner.keywords
                ]
                for value in values:
                    if any(
                        isinstance(leaf, ast.Name) and leaf.id == bound
                        for leaf in ast.walk(value)
                    ):
                        return True
        return False

    # -- dispatch ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_sgx_io(node)
        self._check_drive_bypass(node)
        self._check_unverified_meta_read(node)
        self._check_decision_cache_write(node)
        self._check_labels(node)
        self._check_nonce_freshness(node)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _TRACKED_MODULES:
                local = alias.asname or root
                self._aliases[local] = tuple(
                    alias.name.split(".") if alias.asname else (root,)
                )
        self._check_sgx_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")
        if module[0] in _TRACKED_MODULES:
            for alias in node.names:
                local = alias.asname or alias.name
                self._aliases[local] = (*module, alias.name)
        self._check_sgx_import(node)
        self.generic_visit(node)


def lint_source(source: str, rel_path: str) -> list[Finding]:
    """Lint one module's source; ``rel_path`` is relative to the package
    root (e.g. ``core/engine.py``) and selects the per-layer rules."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="lint/syntax-error",
                message=f"cannot parse: {exc.msg}",
                file=rel_path,
                line=exc.lineno or 0,
            )
        ]
    visitor = _Visitor(rel_path)
    visitor.visit(tree)
    lines = source.splitlines()
    return [
        f
        for f in visitor.findings
        if f.rule not in suppressed_rules(lines, f.line)
    ]


def lint_tree(root: Path) -> list[Finding]:
    """Lint every ``.py`` file under ``root`` (the ``repro`` package)."""
    findings: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_source(path.read_text(), rel))
    return findings
