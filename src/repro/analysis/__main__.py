"""CLI driver: ``python -m repro.analysis [targets...]``.

Targets are ``.py`` files / directories (linted) and ``.policy`` files
(compiled and statically verified).  Directory targets additionally
get the interprocedural secrecy-flow taint pass (whole-package by
nature; ``--no-taint`` skips it, single-file targets never run it).
With no targets, analyzes the ``repro`` package this module was
imported from plus ``examples/policies/*.policy`` under the current
directory.

``--fail-on-findings`` exits 1 when any *error*-severity finding
remains after pragma suppression; warnings are reported but do not
fail the gate.  ``--format markdown`` emits the table CI publishes as
the job summary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.findings import (
    Finding,
    render_json_report,
    render_markdown,
    render_text,
)
from repro.analysis.lint import lint_source
from repro.analysis.policy_verify import verify_source
from repro.analysis.taint import analyze_package
from repro.errors import PolicyError

#: The installed ``repro`` package root (works from any cwd).
PACKAGE_ROOT = Path(__file__).resolve().parents[1]


def _package_relative(path: Path) -> str:
    """Path relative to the innermost ``repro`` ancestor, so the
    layer-scoped lint rules (``core/``, ``sgx/``) apply no matter how
    the target was spelled on the command line."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return path.name


def _iter_python_files(target: Path):
    if target.is_dir():
        for path in sorted(target.rglob("*.py")):
            if "__pycache__" not in path.parts:
                yield path
    elif target.suffix == ".py":
        yield target


def _taint_root(target: Path) -> Path:
    """The package root the taint pass should analyze for ``target``:
    the innermost ``repro`` ancestor (so ``src/repro/core`` analyzes
    the whole package — summaries need every module), else the
    directory itself."""
    parts = target.resolve().parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return Path(*parts[: index + 1])
    return target


def analyze_targets(
    targets: list[Path], taint: bool = True
) -> list[Finding]:
    findings: list[Finding] = []
    taint_roots: list[Path] = []
    for target in targets:
        if target.suffix == ".policy":
            source = target.read_text()
            try:
                reports = verify_source(source)
            except PolicyError as exc:
                reports = [
                    Finding(
                        rule="policy/compile-error",
                        message=f"does not compile: {exc}",
                    )
                ]
            for finding in reports:
                findings.append(
                    Finding(
                        rule=finding.rule,
                        message=finding.message,
                        file=str(target),
                        line=finding.line,
                        severity=finding.severity,
                        context=finding.context,
                    )
                )
        else:
            for path in _iter_python_files(target):
                findings.extend(
                    lint_source(path.read_text(), _package_relative(path))
                )
            if taint and target.is_dir():
                root = _taint_root(target)
                if root not in taint_roots:
                    taint_roots.append(root)
    for root in taint_roots:
        findings.extend(analyze_package(root))
    return findings


def default_targets() -> list[Path]:
    targets: list[Path] = [PACKAGE_ROOT]
    policies = Path("examples/policies")
    if policies.is_dir():
        targets.extend(sorted(policies.glob("*.policy")))
    return targets


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Pesos static analysis: lint + policy verifier.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help=".py files, directories, or .policy files "
        "(default: the repro package + examples/policies/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "markdown"),
        default="text",
        dest="fmt",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 if any error-severity finding remains",
    )
    parser.add_argument(
        "--no-taint",
        action="store_true",
        help="skip the interprocedural secrecy-flow taint pass",
    )
    args = parser.parse_args(argv)

    targets = args.targets or default_targets()
    findings = analyze_targets(targets, taint=not args.no_taint)

    renderer = {
        "text": render_text,
        "json": render_json_report,
        "markdown": render_markdown,
    }[args.fmt]
    print(renderer(findings))

    if args.fail_on_findings and any(
        f.severity == "error" for f in findings
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
