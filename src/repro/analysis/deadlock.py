"""Lock-order-graph deadlock detection over a shadow-state stream.

A schedule that *happened* not to deadlock proves nothing; what proves
deadlock-freedom is the absence of cycles in the lock-order graph.
The detector replays the event stream and adds a directed edge
``a -> b`` whenever a thread acquires lock ``b`` while already holding
``a``.  A cycle in that graph means two threads can acquire the same
locks in opposite orders — a potential deadlock, even if every
observed schedule got lucky.

Two refinements match the engine's locking discipline:

- Atomic group acquisitions (``acquire_group`` — VLL takes all of a
  transaction's locks at once) create no edges *among* the group's
  members: all-or-nothing acquisition cannot hold-and-wait on itself.
  Edges from locks held *before* the group to each member still apply.
- Re-acquisition of a lock already held by the same thread (reentrant
  counting) creates no self-edge.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.findings import Finding
from repro.analysis.sanitizer import replay_locksets


def build_lock_order_graph(events: list[tuple]) -> dict:
    """``lock -> {later_lock: example_tid}`` acquisition-order edges."""
    graph: dict[Any, dict[Any, int]] = {}
    for event, held in replay_locksets(events):
        kind = event[0]
        if kind == "acquire":
            _, tid, lock_id, _mode = event
            new_locks = (lock_id,)
        elif kind == "acquire_group":
            _, tid, lock_ids = event
            new_locks = tuple(lock_ids)
        else:
            continue
        group = set(new_locks)
        for held_lock in held.get(tid, ()):
            if held_lock in group:
                continue  # reentrant / group self-edge
            edges = graph.setdefault(held_lock, {})
            for new_lock in new_locks:
                edges.setdefault(new_lock, tid)
    return graph


def _cycles(graph: dict) -> list[tuple]:
    """Every elementary cycle, canonicalized (smallest node first)."""
    cycles: set[tuple] = set()
    nodes = sorted(graph, key=repr)

    def walk(node: Any, path: list, on_path: set) -> None:
        for successor in graph.get(node, ()):
            if successor in on_path:
                start = path.index(successor)
                cycle = tuple(path[start:])
                rotation = min(
                    range(len(cycle)), key=lambda i: repr(cycle[i])
                )
                cycles.add(cycle[rotation:] + cycle[:rotation])
                continue
            path.append(successor)
            on_path.add(successor)
            walk(successor, path, on_path)
            on_path.discard(successor)
            path.pop()

    for node in nodes:
        walk(node, [node], {node})
    return sorted(cycles, key=repr)


def find_deadlocks(events: list[tuple]) -> list[Finding]:
    """One finding per distinct lock-order cycle in the stream."""
    graph = build_lock_order_graph(events)
    findings = []
    for cycle in _cycles(graph):
        chain = " -> ".join(repr(lock) for lock in cycle + (cycle[0],))
        findings.append(
            Finding(
                rule="deadlock/lock-order",
                message=(
                    f"lock-order cycle {chain}: threads acquire these "
                    "locks in conflicting orders, so some schedule "
                    "deadlocks even though this one did not"
                ),
                context={"cycle": [repr(lock) for lock in cycle]},
            )
        )
    return findings
