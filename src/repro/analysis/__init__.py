"""Static and dynamic analysis for the Pesos reproduction.

Three cooperating analyzers, one CLI (``python -m repro.analysis``):

- **Concurrency sanitizer** (:mod:`repro.analysis.races`,
  :mod:`repro.analysis.deadlock`): replay a :class:`ShadowState` event
  stream recorded by the instrumented engine for Eraser-style lockset
  races and lock-order-graph deadlock cycles.
- **Policy static verifier** (:mod:`repro.analysis.policy_verify`):
  unsatisfiable and shadowed clauses, undefined predicates, structural
  defects, and binary-vs-source divergence in compiled policies.
- **Project lint** (:mod:`repro.analysis.lint`): AST rules protecting
  the determinism, enclave-boundary, and telemetry invariants.
"""

from repro.analysis.deadlock import find_deadlocks
from repro.analysis.findings import (
    Finding,
    render_json_report,
    render_markdown,
    render_text,
    sort_findings,
)
from repro.analysis.lint import lint_source, lint_tree
from repro.analysis.policy_verify import (
    verify_policy,
    verify_source,
    warnings_payload,
)
from repro.analysis.races import find_races
from repro.analysis.sanitizer import (
    MAIN_THREAD,
    NULL_SANITIZER,
    NullSanitizer,
    ShadowState,
)

__all__ = [
    "Finding",
    "MAIN_THREAD",
    "NULL_SANITIZER",
    "NullSanitizer",
    "ShadowState",
    "find_deadlocks",
    "find_races",
    "lint_source",
    "lint_tree",
    "render_json_report",
    "render_markdown",
    "render_text",
    "sort_findings",
    "verify_policy",
    "verify_source",
    "warnings_payload",
]
