"""Package scanning and name-based call resolution for the taint pass.

The taint analyzer needs to follow flows *across* function calls.
Python has no static types to resolve a method call precisely, so this
module builds the next best thing for a single self-contained package:

- parse every module under the package root once;
- index every function and method by qualified name
  (``Class.method`` / ``function``) and by bare name;
- resolve call expressions with a small set of precise rules and an
  honest "unresolved" answer everywhere else (the analyzer treats
  unresolved calls conservatively — taint propagates through them).

Resolution rules, most precise first:

1. ``self.m(...)`` → the method ``m`` on the *enclosing class* (then
   its package base classes, one level).
2. ``ClassName.m(...)`` / ``ClassName(...)`` → that class's method /
   its ``__init__``.
3. ``name(...)`` where ``name`` is a module-level function defined
   anywhere in the package → that function (unique names only).
4. ``obj.m(...)`` → every method named ``m`` in the package, *unless*
   ``m`` is a generic container-protocol name (``append``, ``get``,
   ``update``, ...) or is defined on too many classes — either makes a
   name-based guess meaningless, so the call stays unresolved.

The cap and blocklist are deliberate: a wrong edge would attach one
class's sink summary to every ``list.append`` in the package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Method names too generic for name-based resolution: matching these
#: against package classes would mostly hit container look-alikes.
GENERIC_METHOD_NAMES = frozenset(
    {
        "append",
        "add",
        "get",
        "put",
        "set",
        "pop",
        "update",
        "extend",
        "insert",
        "remove",
        "clear",
        "close",
        "read",
        "write",
        "open",
        "send",
        "recv",
        "encode",
        "decode",
        "items",
        "keys",
        "values",
        "copy",
        "join",
        "split",
        "run",
        "start",
        "stop",
        "reset",
        "next",
        "handle",
        # ``int.from_bytes`` / ``int.to_bytes`` look-alikes.
        "from_bytes",
        "to_bytes",
    }
)

#: Name-based resolution gives up beyond this many candidates.
MAX_CANDIDATES = 4


@dataclass
class FunctionInfo:
    """One function or method definition in the package."""

    qualname: str
    name: str
    rel_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""
    #: Ordered parameter names, ``self``/``cls`` included.
    params: list[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return bool(self.class_name)

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    name: str
    rel_path: str
    #: Base-class *names* (package-local resolution only).
    bases: list[str] = field(default_factory=list)
    methods: dict = field(default_factory=dict)


@dataclass
class ModuleInfo:
    rel_path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)
    functions: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


class CallGraph:
    """The package-wide index plus the resolution rules."""

    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        #: ``qualname`` → FunctionInfo (last definition wins; the
        #: package has no intentional duplicate qualnames).
        self.by_qualname: dict[str, FunctionInfo] = {}
        #: bare function name → module-level functions with that name.
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        #: bare method name → methods with that name.
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, ClassInfo] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, rel_path: str, source: str) -> None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return
        module = ModuleInfo(
            rel_path=rel_path, tree=tree, source_lines=source.splitlines()
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=node.name,
                    name=node.name,
                    rel_path=rel_path,
                    node=node,
                    params=_params_of(node),
                )
                module.functions[node.name] = info
                self._index(info)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    name=node.name,
                    rel_path=rel_path,
                    bases=[
                        base.id
                        for base in node.bases
                        if isinstance(base, ast.Name)
                    ],
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            qualname=f"{node.name}.{item.name}",
                            name=item.name,
                            rel_path=rel_path,
                            node=item,
                            class_name=node.name,
                            params=_params_of(item),
                        )
                        cls.methods[item.name] = info
                        self._index(info)
                module.classes[node.name] = cls
                self.classes[node.name] = cls
        self.modules.append(module)

    def _index(self, info: FunctionInfo) -> None:
        self.by_qualname[info.qualname] = info
        bucket = (
            self.methods_by_name if info.is_method else self.functions_by_name
        )
        bucket.setdefault(info.name, []).append(info)

    # -- resolution --------------------------------------------------------

    def method_on(self, class_name: str, method: str) -> FunctionInfo | None:
        """``class_name.method``, following package bases one level."""
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            parent = self.classes.get(base)
            if parent is not None and method in parent.methods:
                return parent.methods[method]
        return None

    def resolve_call(
        self, call: ast.Call, enclosing_class: str = ""
    ) -> list[FunctionInfo]:
        """Targets of ``call``, or ``[]`` when honestly unresolved."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            # Constructor: ``ClassName(...)`` → ``__init__``.
            ctor = self.method_on(name, "__init__")
            if ctor is not None:
                return [ctor]
            if name in self.classes:
                return []
            candidates = self.functions_by_name.get(name, [])
            if len(candidates) == 1:
                return candidates
            return []
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and enclosing_class:
                    target = self.method_on(enclosing_class, method)
                    return [target] if target is not None else []
                # ``ClassName.method(...)`` (classmethod/static idiom).
                target = self.method_on(receiver.id, method)
                if target is not None:
                    return [target]
            if method in GENERIC_METHOD_NAMES:
                return []
            candidates = self.methods_by_name.get(method, [])
            if enclosing_class:
                own = self.method_on(enclosing_class, method)
                if own is not None and own not in candidates:
                    candidates = candidates + [own]
            if 1 <= len(candidates) <= MAX_CANDIDATES:
                return candidates
        return []

    # -- iteration ---------------------------------------------------------

    def all_functions(self):
        for module in self.modules:
            for info in module.functions.values():
                yield module, info
            for cls in module.classes.values():
                for info in cls.methods.values():
                    yield module, info


def build_callgraph(
    root: Path, excluded: dict | None = None
) -> CallGraph:
    """Scan every ``.py`` under ``root`` into a :class:`CallGraph`.

    ``excluded`` maps package-relative path prefixes (``"bench/"``) to
    exclusion reasons; matching modules are skipped entirely.
    """
    graph = CallGraph()
    excluded = excluded or {}
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(prefix) for prefix in excluded):
            continue
        graph.add_module(rel, path.read_text())
    return graph


__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "GENERIC_METHOD_NAMES",
    "MAX_CANDIDATES",
    "ModuleInfo",
    "build_callgraph",
]
