"""Static verifier for compiled policies.

Policy bugs are silent: an unsatisfiable clause never grants (the
operator thinks a permission exists; it does not), a shadowed clause
never matters (the operator thinks a restriction exists; it does not),
and a tampered or stale binary diverges from the source the auditor
reviews.  The verifier walks a :class:`~repro.policy.binary.CompiledPolicy`
— the exact form the interpreter executes — and reports:

``policy/undefined-predicate``
    An instruction's opcode has no entry in the predicate registry.
``policy/bad-arity``
    An instruction's argument count is outside the registered bounds.
``policy/bad-reference``
    A structural defect: an object reference that is neither ``this``
    nor ``log``, a constant/variable index outside the pool, an
    unknown arithmetic operator or expression kind.
``policy/unsat``
    A clause whose numeric constraints admit no value (e.g.
    ``lt(T, 5) /\\ gt(T, 9)``) or that equates one term with two
    different constants.  The clause can never grant.
``policy/shadowed``
    Under first-match evaluation, a clause that cannot change any
    decision because an earlier clause of the same rule holds whenever
    it does (its conjunct set is a superset of the earlier clause's).
``policy/divergent``
    The binary does not round-trip: decompiling through
    :mod:`repro.policy.render` and recompiling yields a different
    policy hash (non-canonical or tampered encoding), or the embedded
    source text no longer compiles to this binary.

``verify_policy`` returns findings; ``verify_source`` is the
convenience used by the controller's ``put_policy`` path to attach
structured warnings to the response.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.errors import PolicyError
from repro.policy.ast import IntValue, Value
from repro.policy.binary import CompiledPolicy, Instruction
from repro.policy.compiler import compile_source
from repro.policy.predicates import _REGISTRY_BY_OPCODE
from repro.policy.render import render_policy

#: Opcodes of the relational predicates, by comparison semantics.
_LE = 2
_LT = 3
_GE = 4
_GT = 5
_EQ = 1

_RELATIONAL = {_LE, _LT, _GE, _GT}


# ---------------------------------------------------------------------------
# Structural checks
# ---------------------------------------------------------------------------

def _check_expr(expr, policy: CompiledPolicy, where: str) -> list[Finding]:
    findings: list[Finding] = []
    if not isinstance(expr, (list, tuple)) or not expr:
        return [
            Finding(
                rule="policy/bad-reference",
                message=f"{where}: malformed argument expression {expr!r}",
            )
        ]
    kind = expr[0]
    if kind == "c":
        if not (
            len(expr) == 2
            and isinstance(expr[1], int)
            and 0 <= expr[1] < len(policy.constants)
        ):
            findings.append(
                Finding(
                    rule="policy/bad-reference",
                    message=(
                        f"{where}: constant index {expr[1:]} outside the "
                        f"pool of {len(policy.constants)}"
                    ),
                )
            )
    elif kind == "v":
        if not (
            len(expr) == 2
            and isinstance(expr[1], int)
            and 0 <= expr[1] < len(policy.variables)
        ):
            findings.append(
                Finding(
                    rule="policy/bad-reference",
                    message=(
                        f"{where}: variable slot {expr[1:]} outside the "
                        f"{len(policy.variables)} declared slots"
                    ),
                )
            )
    elif kind == "r":
        if len(expr) != 2 or expr[1] not in ("this", "log"):
            findings.append(
                Finding(
                    rule="policy/bad-reference",
                    message=(
                        f"{where}: unknown object reference "
                        f"{expr[1] if len(expr) > 1 else expr!r} "
                        "(context defines only 'this' and 'log')"
                    ),
                )
            )
    elif kind == "a":
        if len(expr) != 4 or expr[1] not in ("+", "-"):
            findings.append(
                Finding(
                    rule="policy/bad-reference",
                    message=f"{where}: unknown arithmetic form {expr!r}",
                )
            )
        else:
            findings.extend(_check_expr(expr[2], policy, where))
            findings.extend(_check_expr(expr[3], policy, where))
    elif kind == "t":
        if len(expr) != 3 or not isinstance(expr[1], int) or not (
            0 <= expr[1] < len(policy.constants)
        ):
            findings.append(
                Finding(
                    rule="policy/bad-reference",
                    message=f"{where}: malformed tuple pattern {expr!r}",
                )
            )
        else:
            for arg in expr[2]:
                findings.extend(_check_expr(arg, policy, where))
    else:
        findings.append(
            Finding(
                rule="policy/bad-reference",
                message=f"{where}: unknown expression kind {kind!r}",
            )
        )
    return findings


def _check_instruction(
    inst: Instruction, policy: CompiledPolicy, where: str
) -> list[Finding]:
    findings: list[Finding] = []
    spec = _REGISTRY_BY_OPCODE.get(inst.opcode)
    if spec is None:
        return [
            Finding(
                rule="policy/undefined-predicate",
                message=(
                    f"{where}: opcode {inst.opcode} names no registered "
                    "predicate; the clause always fails at evaluation"
                ),
            )
        ]
    arity = len(inst.args)
    if not spec.min_arity <= arity <= spec.max_arity:
        findings.append(
            Finding(
                rule="policy/bad-arity",
                message=(
                    f"{where}: {spec.name} takes "
                    f"{spec.min_arity}-{spec.max_arity} arguments, "
                    f"got {arity}"
                ),
            )
        )
    for arg in inst.args:
        findings.extend(_check_expr(arg, policy, where))
    return findings


# ---------------------------------------------------------------------------
# Clause satisfiability
# ---------------------------------------------------------------------------

def _term_key(expr, policy: CompiledPolicy):
    """Hashable canonical form of an argument expression.

    Constants resolve to their values so structurally different
    encodings of the same term compare equal.
    """
    kind = expr[0]
    if kind == "c":
        return ("c", policy.constants[expr[1]].render())
    if kind == "v":
        return ("v", expr[1])
    if kind == "r":
        return ("r", expr[1])
    if kind == "a":
        return (
            "a",
            expr[1],
            _term_key(expr[2], policy),
            _term_key(expr[3], policy),
        )
    if kind == "t":
        return (
            "t",
            policy.constants[expr[1]].render(),
            tuple(_term_key(arg, policy) for arg in expr[2]),
        )
    raise PolicyError(f"unknown expression kind {kind!r}")


def _const_int(expr, policy: CompiledPolicy) -> int | None:
    if expr[0] == "c":
        value = policy.constants[expr[1]]
        if isinstance(value, IntValue):
            return value.value
    return None


def _const_value(expr, policy: CompiledPolicy) -> Value | None:
    if expr[0] == "c":
        return policy.constants[expr[1]]
    return None


class _Interval:
    """Closed integer interval [lo, hi] with +/- infinity as None."""

    __slots__ = ("lo", "hi")

    def __init__(self) -> None:
        self.lo: int | None = None
        self.hi: int | None = None

    def tighten_lo(self, bound: int) -> None:
        if self.lo is None or bound > self.lo:
            self.lo = bound

    def tighten_hi(self, bound: int) -> None:
        if self.hi is None or bound < self.hi:
            self.hi = bound

    @property
    def empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _clause_unsat(
    clause: list, policy: CompiledPolicy, where: str
) -> Finding | None:
    """Interval analysis over the clause's relational conjuncts."""
    intervals: dict = {}
    equalities: dict = {}

    def interval(term_key) -> _Interval:
        return intervals.setdefault(term_key, _Interval())

    for inst in clause:
        if len(inst.args) != 2:
            continue
        left, right = inst.args
        if inst.opcode in _RELATIONAL:
            lc = _const_int(left, policy)
            rc = _const_int(right, policy)
            if lc is not None and rc is not None:
                holds = {
                    _LE: lc <= rc,
                    _LT: lc < rc,
                    _GE: lc >= rc,
                    _GT: lc > rc,
                }[inst.opcode]
                if not holds:
                    return Finding(
                        rule="policy/unsat",
                        message=(
                            f"{where}: constant comparison "
                            f"({lc}, {rc}) is always false"
                        ),
                    )
                continue
            # Normalize to: term <op> constant.
            if rc is not None:
                term, bound, opcode = left, rc, inst.opcode
            elif lc is not None:
                flipped = {_LE: _GE, _LT: _GT, _GE: _LE, _GT: _LT}
                term, bound, opcode = right, lc, flipped[inst.opcode]
            else:
                continue
            box = interval(_term_key(term, policy))
            if opcode == _LE:
                box.tighten_hi(bound)
            elif opcode == _LT:
                box.tighten_hi(bound - 1)
            elif opcode == _GE:
                box.tighten_lo(bound)
            elif opcode == _GT:
                box.tighten_lo(bound + 1)
        elif inst.opcode == _EQ:
            # eq(term, constant): pin the term's value.
            for term, const in ((left, right), (right, left)):
                value = _const_value(const, policy)
                if value is None or const is term:
                    continue
                key = _term_key(term, policy)
                if key in equalities and equalities[key] != value:
                    return Finding(
                        rule="policy/unsat",
                        message=(
                            f"{where}: term equated with both "
                            f"{equalities[key].render()} and "
                            f"{value.render()}"
                        ),
                    )
                equalities[key] = value
                if isinstance(value, IntValue):
                    box = interval(key)
                    box.tighten_lo(value.value)
                    box.tighten_hi(value.value)
                break

    for key, box in intervals.items():
        if box.empty:
            return Finding(
                rule="policy/unsat",
                message=(
                    f"{where}: numeric constraints on {key!r} reduce to "
                    f"the empty interval {box.describe()}; the clause "
                    "can never grant"
                ),
            )
    return None


# ---------------------------------------------------------------------------
# Shadowing
# ---------------------------------------------------------------------------

def _clause_signature(clause: list, policy: CompiledPolicy) -> frozenset:
    return frozenset(
        (inst.opcode, tuple(_term_key(arg, policy) for arg in inst.args))
        for inst in clause
    )


def _shadowed(clauses: list, policy: CompiledPolicy, operation: str) -> list:
    findings = []
    signatures = [_clause_signature(clause, policy) for clause in clauses]
    for later in range(1, len(signatures)):
        for earlier in range(later):
            if signatures[earlier] <= signatures[later]:
                exact = signatures[earlier] == signatures[later]
                findings.append(
                    Finding(
                        rule="policy/shadowed",
                        severity="warning",
                        message=(
                            f"{operation} clause {later + 1} is "
                            + ("a duplicate of" if exact else "shadowed by")
                            + f" clause {earlier + 1}: whenever it holds, "
                            "the earlier clause already granted"
                        ),
                        context={"operation": operation, "clause": later},
                    )
                )
                break
    return findings


# ---------------------------------------------------------------------------
# Divergence
# ---------------------------------------------------------------------------

def _divergence(policy: CompiledPolicy) -> list[Finding]:
    findings = []
    try:
        recompiled = compile_source(render_policy(policy))
    except PolicyError as exc:
        return [
            Finding(
                rule="policy/divergent",
                message=f"decompiled source does not recompile: {exc}",
            )
        ]
    if recompiled.policy_hash() != policy.policy_hash():
        findings.append(
            Finding(
                rule="policy/divergent",
                message=(
                    "binary is not the canonical compilation of its own "
                    f"decompiled source (hash {policy.policy_hash()[:12]} "
                    f"vs recompiled {recompiled.policy_hash()[:12]}); "
                    "the blob was tampered with or produced by a "
                    "non-canonical compiler"
                ),
            )
        )
    if policy.source:
        try:
            from_source = compile_source(policy.source)
        except PolicyError as exc:
            return findings + [
                Finding(
                    rule="policy/divergent",
                    message=f"embedded source no longer compiles: {exc}",
                )
            ]
        if from_source.policy_hash() != policy.policy_hash():
            findings.append(
                Finding(
                    rule="policy/divergent",
                    message=(
                        "embedded source compiles to "
                        f"{from_source.policy_hash()[:12]}, not this "
                        f"binary's {policy.policy_hash()[:12]}"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Clause facts (consumed by the closure compiler)
# ---------------------------------------------------------------------------

def _constant_false_positions(clause: list, policy: CompiledPolicy) -> list:
    """Indices of conjuncts that are constant comparisons proven false.

    A subset of what :func:`_clause_unsat` proves, but positional: the
    closure compiler may only strip a dead disjunct when it can account
    the exact number of predicates the interpreter would have counted,
    which needs the *position* of the deterministic failure.
    """
    positions = []
    for index, inst in enumerate(clause):
        if len(inst.args) != 2:
            continue
        left, right = inst.args
        lc = _const_int(left, policy)
        rc = _const_int(right, policy)
        if inst.opcode in _RELATIONAL and lc is not None and rc is not None:
            holds = {
                _LE: lc <= rc,
                _LT: lc < rc,
                _GE: lc >= rc,
                _GT: lc > rc,
            }[inst.opcode]
            if not holds:
                positions.append(index)
        elif inst.opcode == _EQ:
            lv = _const_value(left, policy)
            rv = _const_value(right, policy)
            if lv is not None and rv is not None and lv != rv:
                positions.append(index)
    return positions


def clause_facts(policy: CompiledPolicy) -> dict:
    """Per-clause static facts, keyed by ``(operation, clause_index)``.

    The closure compiler (:mod:`repro.policy.compiled`) reuses what the
    verifier already proves instead of re-deriving it:

    ``const_false_at``
        Conjunct indices that are constant comparisons proven false —
        candidates for dead-disjunct stripping (the compiler strips
        only when every earlier conjunct is also constant, so the
        interpreter's ``predicates_evaluated`` count stays exact).
    ``duplicate_of``
        Index of an earlier clause with an identical conjunct set.
        First-match evaluation only ever reaches the duplicate after
        the original failed, and clause evaluation is deterministic in
        the context, so the duplicate's outcome (and predicate count)
        can be replayed from the original's.
    ``unsat`` / ``shadowed``
        The verifier's satisfiability verdicts, advisory here: an
        interval-unsat clause still has to run (its predicate count is
        context-dependent), so the compiler must *not* strip it.
    """
    facts: dict = {}
    for operation, clauses in sorted(policy.permissions.items()):
        signatures = []
        for index, clause in enumerate(clauses):
            where = f"{operation} clause {index + 1}"
            try:
                signature = _clause_signature(clause, policy)
                unsat = _clause_unsat(clause, policy, where) is not None
                const_false = _constant_false_positions(clause, policy)
            except (PolicyError, IndexError):
                # Structurally broken clause: no facts, never stripped.
                signatures.append(None)
                facts[(operation, index)] = {
                    "const_false_at": [],
                    "duplicate_of": None,
                    "unsat": False,
                    "shadowed": False,
                }
                continue
            duplicate_of = None
            shadowed = False
            for earlier, earlier_sig in enumerate(signatures):
                if earlier_sig is None:
                    continue
                if earlier_sig == signature:
                    duplicate_of = earlier
                    shadowed = True
                    break
                if earlier_sig <= signature:
                    shadowed = True
                    break
            signatures.append(signature)
            facts[(operation, index)] = {
                "const_false_at": const_false,
                "duplicate_of": duplicate_of,
                "unsat": unsat,
                "shadowed": shadowed,
            }
    return facts


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def verify_policy(policy: CompiledPolicy) -> list[Finding]:
    """All static checks over one compiled policy."""
    findings: list[Finding] = []
    structural = False
    for operation, clauses in sorted(policy.permissions.items()):
        for index, clause in enumerate(clauses):
            where = f"{operation} clause {index + 1}"
            for inst in clause:
                reports = _check_instruction(inst, policy, where)
                findings.extend(reports)
                structural = structural or bool(reports)
            if not structural:
                unsat = _clause_unsat(clause, policy, where)
                if unsat is not None:
                    findings.append(unsat)
        if not structural:
            findings.extend(_shadowed(clauses, policy, operation))
    # Round-trip comparison needs a renderable policy: skip when the
    # structure is already broken (render would crash on it).
    if not structural:
        findings.extend(_divergence(policy))
    return findings


def verify_source(source: str) -> list[Finding]:
    """Compile and verify policy source text (controller PUT path)."""
    return verify_policy(compile_source(source))


def warnings_payload(findings: list[Finding]) -> list[dict]:
    """Findings as the structured warning list a PUT response carries."""
    return [
        {
            "rule": f.rule,
            "severity": f.severity,
            "message": f.message,
        }
        for f in findings
    ]
