"""Declarative source / sink / sanitizer registry for the taint pass.

The analyzer (:mod:`repro.analysis.taint`) is generic machinery; every
statement about *which* values are secret and *which* surfaces are
untrusted lives here, in data, so an auditor reviews this file — not
the fixpoint engine — to understand (and extend) the proved property:

    object plaintext and key material never cross the enclave boundary
    unsealed.

Two taint kinds flow through the analysis:

``plaintext``
    Decrypted object content, unsealed enclave state, and policy
    source text.  Plaintext may legitimately travel in a response
    *body* (a policy-checked GET returns it to the client over the
    encrypted channel) but never in headers, error strings, metric
    labels, span attributes, audit records, exception messages, drive
    writes, or wire frames.

``key``
    AEAD / MAC / session / sealing key material.  Keys may reach *no*
    untrusted sink at all, response bodies included.

Sources come in three shapes: **call patterns** (``aead.open(...)``,
``enclave.unseal(...)``), **parameter taints** (the ``value`` argument
of ``ObjectStore.write_value`` — the storage boundary where client
plaintext becomes the store's responsibility), and **names** (any load
of an identifier like ``_sealing_key`` is key material, wherever it
appears).

Sanitizers clear taint: sealing, encrypting, signing, and content
hashing all produce values that are safe on any surface.

Declassifiers force a *resolved call's* result clean.  Each entry is a
deliberate, documented trust decision — e.g. ``StoredMeta.decode``
yields operational metadata (versions, ids, content hashes), not
object content, even though its input is a decrypted blob.

Exemptions silence one (sink, kind) pair under a path prefix — e.g.
policy *parse* errors quote the submitted source back to its author.
Hot-path flows must never be exempted here; that is what the
mutation self-test (:mod:`tests.analysis.test_taint_mutations`)
defends.

Suppression at a single site uses the standard pragma idiom:
``# pesos: allow[taint/<sink-id>]`` (or bare ``# pesos: allow[taint]``
to silence every taint rule) on the flagged line or the line above.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The two taint kinds (see module docstring).
KIND_PLAINTEXT = "plaintext"
KIND_KEY = "key"
KINDS = frozenset({KIND_PLAINTEXT, KIND_KEY})

BOTH = frozenset({KIND_PLAINTEXT, KIND_KEY})
KEY_ONLY = frozenset({KIND_KEY})


@dataclass(frozen=True)
class CallSource:
    """A call whose *result* is tainted: ``receiver.method(...)``.

    ``receiver_hints`` restricts the match to receiver chains that
    contain one of the given identifiers (``self._aead.open`` has the
    chain ``["open", "_aead", "self"]``); empty hints match any
    receiver, including plain-name calls.
    """

    method: str
    kind: str
    receiver_hints: frozenset = frozenset()
    reason: str = ""


@dataclass(frozen=True)
class ParamSource:
    """A function parameter that is tainted on entry.

    These mark the *storage boundary*: once client bytes are handed to
    ``ObjectStore.write_value`` as ``value``, the store owes them
    confidentiality — everything downstream must seal before drives.
    """

    qualname: str
    param: str
    kind: str
    reason: str = ""


@dataclass(frozen=True)
class NameSource:
    """An identifier whose every load carries taint (key material)."""

    name: str
    kind: str
    reason: str = ""


@dataclass(frozen=True)
class CallSink:
    """A call pattern whose arguments must not be tainted."""

    sink_id: str
    method: str
    receiver_hints: frozenset
    kinds: frozenset
    message: str


@dataclass(frozen=True)
class ParamSink:
    """A specific function parameter that is an untrusted surface.

    ``param="*"`` covers every parameter.  Callers that pass tainted
    values cross the sink at *their* call site (reported there), so a
    pragma documents the individual flow, not the whole function.
    """

    sink_id: str
    qualname: str
    param: str
    kinds: frozenset
    message: str


@dataclass(frozen=True)
class KwargSink:
    """A keyword argument of a constructor/callable that is a sink.

    ``Response(error=...)`` renders into an HTTP header;
    ``Response(value=...)`` is the body (key material only is barred —
    a policy-checked GET legitimately returns plaintext).
    """

    sink_id: str
    callee: str
    kwarg: str
    kinds: frozenset
    message: str


@dataclass(frozen=True)
class Declassifier:
    """A resolved call whose result is forced clean, with rationale."""

    qualname: str
    reason: str


@dataclass(frozen=True)
class Exemption:
    """One (sink, kind) pair waived under a path prefix."""

    sink_id: str
    path_prefix: str
    kind: str
    reason: str


@dataclass(frozen=True)
class TaintRegistry:
    call_sources: tuple = ()
    param_sources: tuple = ()
    name_sources: tuple = ()
    call_sinks: tuple = ()
    param_sinks: tuple = ()
    kwarg_sinks: tuple = ()
    #: Method / function names whose result is always clean.
    sanitizers: frozenset = frozenset()
    #: Builtins whose result is a size/flag/number, never content.
    clean_builtins: frozenset = frozenset()
    declassifiers: tuple = ()
    exemptions: tuple = ()
    #: Package-relative path prefixes excluded from the scan, with the
    #: reason recorded next to each (host-side tooling, not TCB code).
    excluded_paths: dict = field(default_factory=dict)

    def declassified(self) -> frozenset:
        return frozenset(d.qualname for d in self.declassifiers)

    def is_excluded(self, rel_path: str) -> bool:
        return any(rel_path.startswith(p) for p in self.excluded_paths)

    def exempted(self, sink_id: str, rel_path: str, kind: str) -> bool:
        return any(
            e.sink_id == sink_id
            and e.kind == kind
            and rel_path.startswith(e.path_prefix)
            for e in self.exemptions
        )


#: Receivers that identify an AEAD primitive in this codebase.
_AEAD_RECEIVERS = frozenset(
    {"aead", "gcm", "_aead", "_gcm", "_recv_gcm", "_send_gcm"}
)

#: Receivers that identify a raw Kinetic drive client.
_DRIVE_RECEIVERS = frozenset({"client", "clients", "drive", "drives"})


DEFAULT_REGISTRY = TaintRegistry(
    call_sources=(
        CallSource(
            method="open",
            kind=KIND_PLAINTEXT,
            receiver_hints=_AEAD_RECEIVERS,
            reason="AEAD open() returns decrypted content",
        ),
        CallSource(
            method="decrypt",
            kind=KIND_PLAINTEXT,
            receiver_hints=_AEAD_RECEIVERS,
            reason="AES decrypt() returns raw plaintext blocks",
        ),
        CallSource(
            method="unseal",
            kind=KIND_PLAINTEXT,
            receiver_hints=frozenset({"enclave"}),
            reason="unsealed enclave state leaves the sealing envelope",
        ),
        CallSource(
            method="_hkdf",
            kind=KIND_KEY,
            reason="HKDF output is session key material",
        ),
        CallSource(
            method="_derive_keys",
            kind=KIND_KEY,
            reason="channel key schedule output",
        ),
        CallSource(
            method="generate_keypair",
            kind=KIND_KEY,
            reason="fresh private-key material",
        ),
    ),
    param_sources=(
        ParamSource(
            qualname="ObjectStore.write_value",
            param="value",
            kind=KIND_PLAINTEXT,
            reason="client object content at the storage boundary",
        ),
        ParamSource(
            qualname="ObjectStore.store_version",
            param="value",
            kind=KIND_PLAINTEXT,
            reason="client object content at the storage boundary",
        ),
        ParamSource(
            qualname="ObjectStore._store_version",
            param="value",
            kind=KIND_PLAINTEXT,
            reason="client object content at the storage boundary",
        ),
        ParamSource(
            qualname="ObjectStore.write_policy",
            param="blob",
            kind=KIND_PLAINTEXT,
            reason="compiled policy bytes at the storage boundary",
        ),
        ParamSource(
            qualname="compile_source",
            param="source",
            kind=KIND_PLAINTEXT,
            reason="policy source text before binary encoding",
        ),
        ParamSource(
            qualname="StreamAead.seal",
            param="plaintext",
            kind=KIND_PLAINTEXT,
            reason="plaintext inside the seal primitive itself",
        ),
        ParamSource(
            qualname="SecureChannel.send",
            param="plaintext",
            kind=KIND_PLAINTEXT,
            reason="channel payload before encryption",
        ),
    ),
    name_sources=tuple(
        NameSource(name=name, kind=KIND_KEY, reason=reason)
        for name, reason in (
            ("storage_key", "store AEAD root key"),
            ("_sealing_key", "enclave sealing key"),
            ("sealing_key", "enclave sealing key"),
            ("platform_root_key", "simulated CPU fuse key"),
            ("send_key", "channel send key"),
            ("recv_key", "channel receive key"),
            ("_enc_key", "derived encryption subkey"),
            ("_mac_key", "derived MAC subkey"),
            ("private_key", "asymmetric private key"),
            ("admin_key", "drive admin HMAC credential"),
            ("hmac_key", "drive HMAC credential"),
            ("disk_hmac_key", "drive HMAC credential"),
            ("init_secret", "handshake half-secret"),
            ("resp_secret", "handshake half-secret"),
            ("shared_secret", "handshake shared secret"),
        )
    ),
    call_sinks=(
        CallSink(
            sink_id="drive-write",
            method="put",
            receiver_hints=_DRIVE_RECEIVERS,
            kinds=BOTH,
            message="unsealed data written to an untrusted Kinetic drive",
        ),
        CallSink(
            sink_id="drive-write",
            method="delete",
            receiver_hints=_DRIVE_RECEIVERS,
            kinds=BOTH,
            message="secret-derived argument in a raw drive delete",
        ),
        CallSink(
            sink_id="metric-label",
            method="labels",
            receiver_hints=frozenset(),
            kinds=BOTH,
            message="secret value used as a telemetry metric label",
        ),
        CallSink(
            sink_id="span-attribute",
            method="span",
            receiver_hints=frozenset({"telemetry", "tracer"}),
            kinds=BOTH,
            message="secret value attached as a trace span attribute",
        ),
        CallSink(
            sink_id="span-attribute",
            method="set",
            receiver_hints=frozenset({"span"}),
            kinds=BOTH,
            message="secret value attached as a trace span attribute",
        ),
        CallSink(
            sink_id="log-line",
            method="print",
            receiver_hints=frozenset(),
            kinds=BOTH,
            message="secret value printed to operator-visible output",
        ),
    ),
    param_sinks=(
        ParamSink(
            sink_id="wire-frame",
            qualname="KineticClient._next_message",
            param="body",
            kinds=BOTH,
            message="command body serialized into a cleartext wire frame",
        ),
        ParamSink(
            sink_id="wire-frame",
            qualname="KineticClient._exchange",
            param="request",
            kinds=BOTH,
            message="message handed to the untrusted drive transport",
        ),
        ParamSink(
            sink_id="audit-entry",
            qualname="PolicyAuditor.record_decision",
            param="*",
            kinds=BOTH,
            message="secret value recorded in the policy audit chain",
        ),
        ParamSink(
            sink_id="audit-entry",
            qualname="PolicyAuditor.record_shed",
            param="*",
            kinds=BOTH,
            message="secret value recorded in the policy audit chain",
        ),
        ParamSink(
            sink_id="audit-entry",
            qualname="PolicyAuditor.record_pin",
            param="*",
            kinds=BOTH,
            message="secret value recorded in the policy audit chain",
        ),
        ParamSink(
            sink_id="audit-entry",
            qualname="PolicyAuditor.record_fork",
            param="*",
            kinds=BOTH,
            message="secret value recorded in the policy audit chain",
        ),
        ParamSink(
            sink_id="http-body",
            qualname="_admin_response",
            param="body",
            kinds=KEY_ONLY,
            message="key material rendered into an admin HTTP body",
        ),
    ),
    kwarg_sinks=(
        KwargSink(
            sink_id="http-body",
            callee="Response",
            kwarg="value",
            kinds=KEY_ONLY,
            message="key material placed in an HTTP response body",
        ),
        KwargSink(
            sink_id="http-header",
            callee="Response",
            kwarg="error",
            kinds=BOTH,
            message="secret value in the X-Pesos-Error response header",
        ),
        KwargSink(
            sink_id="http-header",
            callee="Response",
            kwarg="extra",
            kinds=BOTH,
            message="secret value in an X-Pesos-* response header",
        ),
        KwargSink(
            sink_id="http-header",
            callee="Response",
            kwarg="policy_id",
            kinds=BOTH,
            message="secret value in the X-Pesos-Policy response header",
        ),
        KwargSink(
            sink_id="http-header",
            callee="Response",
            kwarg="operation_id",
            kinds=BOTH,
            message="secret value in the X-Pesos-Operation response header",
        ),
        KwargSink(
            sink_id="http-header",
            callee="Response",
            kwarg="txid",
            kinds=BOTH,
            message="secret value in the X-Pesos-Txid response header",
        ),
    ),
    sanitizers=frozenset(
        {
            "seal",
            "encrypt",
            "sign",
            "hexdigest",
            "digest",
            "policy_hash",
            "fingerprint",
            "measurement",
            "leaf_digest",
            "record_digest",
        }
    ),
    clean_builtins=frozenset(
        {"len", "bool", "isinstance", "type", "float", "int", "range"}
    ),
    declassifiers=(
        Declassifier(
            qualname="StoredMeta.decode",
            reason="decoded metadata is versions/ids/content hashes — "
            "operational state, not object content",
        ),
        Declassifier(
            qualname="SecureChannel.recv",
            reason="the decrypted client request re-enters the "
            "untrusted-input domain at ingress; it is not an "
            "enclave secret until the store accepts it",
        ),
        Declassifier(
            qualname="PolicyInterpreter.evaluate",
            reason="decisions are booleans and clause indices, "
            "deliberately recorded in the audit chain",
        ),
        Declassifier(
            qualname="CompiledPolicy.from_bytes",
            reason="the confidential artifact is the pre-compilation "
            "source text; decoded clause structure drives "
            "enforcement and auditing by design",
        ),
    ),
    exemptions=(
        Exemption(
            sink_id="exception-message",
            path_prefix="policy/",
            kind=KIND_PLAINTEXT,
            reason="parse/compile errors quote the submitted policy "
            "source back to its own author",
        ),
        Exemption(
            sink_id="exception-message",
            path_prefix="kinetic/protocol.py",
            kind=KIND_PLAINTEXT,
            reason="TLV decode errors quote the malformed envelope for "
            "diagnosis; a blob reaching the decoder has already "
            "passed AEAD authentication, so a decode failure is an "
            "integrity diagnostic on corrupt framing, not object "
            "content disclosure",
        ),
    ),
    excluded_paths={
        "analysis/": "host-side tooling: prints findings by design",
        "bench/": "host-side tooling: prints reports by design",
    },
)


#: Sink ids the analyzer implements structurally (not via registry
#: entries): every ``raise`` expression is an exception-message sink.
SINK_EXCEPTION = "exception-message"

__all__ = [
    "BOTH",
    "CallSink",
    "CallSource",
    "Declassifier",
    "DEFAULT_REGISTRY",
    "Exemption",
    "KEY_ONLY",
    "KIND_KEY",
    "KIND_PLAINTEXT",
    "KINDS",
    "KwargSink",
    "NameSource",
    "ParamSink",
    "ParamSource",
    "SINK_EXCEPTION",
    "TaintRegistry",
]
