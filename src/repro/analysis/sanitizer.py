"""Shadow-state hook API for the concurrency sanitizer.

The deterministic engine (:mod:`repro.core.engine`), the request-lock
table (:mod:`repro.core.locks`), the VLL transaction manager
(:mod:`repro.core.txn`) and the green-thread scheduler
(:mod:`repro.sgx.scheduler`) all carry a ``sanitizer`` attribute.  By
default it is the shared :data:`NULL_SANITIZER`, whose every hook is a
no-op — exactly the ``NullTelemetry`` pattern, so the uninstrumented
hot path costs one attribute lookup and the engine's virtual-time
numbers are bit-identical with sanitizers off.

A :class:`ShadowState` instance records a flat event stream instead:

- ``("dispatch", tid)`` — the scheduler handed a green thread the CPU;
  every later event is attributed to ``tid`` until the next dispatch.
- ``("acquire", tid, lock_id, mode)`` / ``("release", tid, lock_id)``
  — one lock taken or dropped.  Request locks and VLL transaction
  locks both use ``("obj", k)`` ids: the two tables cross-exclude per
  key, so they are one logical lock to the analyzers.
- ``("acquire_group", tid, lock_ids)`` / ``("release_group", ...)`` —
  an all-or-nothing multi-lock acquisition (VLL takes every lock of a
  committing transaction at once).  Group members create no ordering
  edges among themselves: atomic acquisition cannot deadlock
  internally.
- ``("access", tid, field, kind)`` with kind ``"r"``/``"w"`` — one
  shared-field access.  The engine reports every drive operation's
  disk key here, so the shared state is exactly what two requests
  could clobber.

The analyzers (:mod:`repro.analysis.races`,
:mod:`repro.analysis.deadlock`) replay the stream after the run; the
recorder itself never interprets it, keeping the in-run overhead to a
list append.
"""

from __future__ import annotations

from typing import Any

#: Thread id attributed to main-thread (bootstrap / load phase) events.
MAIN_THREAD = -1


class NullSanitizer:
    """No-op hooks; the default wired into every instrumented layer."""

    enabled = False

    def on_dispatch(self, tid: int) -> None:
        """A green thread was dispatched (or resumed)."""

    def on_lock_acquire(self, lock_id: Any, mode: str = "w") -> None:
        """The current thread took one lock."""

    def on_lock_release(self, lock_id: Any) -> None:
        """The current thread dropped one lock."""

    def on_group_acquire(self, lock_ids: list) -> None:
        """The current thread took several locks atomically."""

    def on_group_release(self, lock_ids: list) -> None:
        """The current thread dropped an atomic lock group."""

    def on_access(self, field: Any, write: bool) -> None:
        """The current thread touched one shared field."""


#: Shared no-op instance (never mutated; safe to share everywhere).
NULL_SANITIZER = NullSanitizer()


class ShadowState(NullSanitizer):
    """Event recorder attached to an engine run under analysis."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[tuple] = []
        self._current = MAIN_THREAD

    # -- hooks -------------------------------------------------------------

    def on_dispatch(self, tid: int) -> None:
        self._current = tid
        self.events.append(("dispatch", tid))

    def on_lock_acquire(self, lock_id: Any, mode: str = "w") -> None:
        self.events.append(("acquire", self._current, lock_id, mode))

    def on_lock_release(self, lock_id: Any) -> None:
        self.events.append(("release", self._current, lock_id))

    def on_group_acquire(self, lock_ids: list) -> None:
        self.events.append(("acquire_group", self._current, tuple(lock_ids)))

    def on_group_release(self, lock_ids: list) -> None:
        self.events.append(("release_group", self._current, tuple(lock_ids)))

    def on_access(self, field: Any, write: bool) -> None:
        self.events.append(
            ("access", self._current, field, "w" if write else "r")
        )

    # NOTE: deliberately no __len__ — a fresh recorder must not be
    # falsy, or ``sanitizer or NULL_SANITIZER`` idioms silently drop it.


def replay_locksets(events: list[tuple]):
    """Generator over ``(event, held)`` where ``held`` maps tid to the
    multiset of lock ids that thread holds *before* the event applies.

    Shared helper for the analyzers: both the lockset race detector and
    the lock-order graph need per-thread held-lock state at each event.
    The yielded ``held`` mapping is live (mutated in place as the replay
    advances); consumers must copy what they keep.
    """
    held: dict[int, dict[Any, int]] = {}

    def locks_of(tid: int) -> dict[Any, int]:
        return held.setdefault(tid, {})

    for event in events:
        yield event, held
        kind = event[0]
        if kind == "acquire":
            _, tid, lock_id, _mode = event
            locks = locks_of(tid)
            locks[lock_id] = locks.get(lock_id, 0) + 1
        elif kind == "release":
            _, tid, lock_id = event
            locks = locks_of(tid)
            remaining = locks.get(lock_id, 0) - 1
            if remaining > 0:
                locks[lock_id] = remaining
            else:
                locks.pop(lock_id, None)
        elif kind == "acquire_group":
            _, tid, lock_ids = event
            locks = locks_of(tid)
            for lock_id in lock_ids:
                locks[lock_id] = locks.get(lock_id, 0) + 1
        elif kind == "release_group":
            _, tid, lock_ids = event
            locks = locks_of(tid)
            for lock_id in lock_ids:
                remaining = locks.get(lock_id, 0) - 1
                if remaining > 0:
                    locks[lock_id] = remaining
                else:
                    locks.pop(lock_id, None)
