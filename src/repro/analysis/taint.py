"""Interprocedural secrecy-flow taint analysis over the package.

The property proved (or refuted, finding by finding): **decrypted
object plaintext and key material never reach an untrusted sink
unsealed**.  Sources, sinks, sanitizers, declassifiers, and exemptions
are data in :mod:`repro.analysis.taintspec`; this module is the
engine.

Design (deliberately modest, tuned for this package):

- **Taint values** carry two components: concrete *kinds*
  (``plaintext`` / ``key``) and symbolic *parameter indices* of the
  function under analysis.  Symbolic taint is how summaries compose:
  "whatever flows into parameter 2 reaches a wire frame".

- **Per-function summaries** record which kinds a function returns,
  which parameters flow to its return value, which parameters reach a
  sink (transitively), and which parameters are stored into object
  attributes.

- **A global fixpoint** iterates summary computation across the whole
  package until nothing changes: call edges are resolved name-based by
  :mod:`repro.analysis.callgraph`, attribute stores feed a
  package-global attribute taint map (field names are tracked, object
  identities are not), and unresolved calls conservatively propagate
  the union of their argument and receiver taint.

- **A reporting pass** re-walks every function with the final
  summaries and emits one finding per sink crossing, at the crossing
  call site — so a transitive flow (``write_policy`` → raw replica
  write) is reported where the tainted value enters the sink-reaching
  call, which is exactly where a ``# pesos: allow[taint/...]`` pragma
  belongs if the flow is justified.

Intraprocedural transfer is flow-sensitive for straight-line code
(assignments strongly update), and the function body is re-walked a
few times so loop-carried taint stabilizes.  Comparisons yield clean
values: implicit flows are out of scope, as is object identity —
coarse, but the mutation self-test pins down that the precision is
sufficient for the flows this codebase must never contain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    build_callgraph,
)
from repro.analysis.findings import Finding, suppressed_rules
from repro.analysis.taintspec import (
    BOTH,
    DEFAULT_REGISTRY,
    SINK_EXCEPTION,
    TaintRegistry,
)

#: Upper bound on global fixpoint passes (converges in 3-5 in practice).
MAX_GLOBAL_PASSES = 12

#: Re-walks of one function body per pass (loop-carried taint).
BODY_PASSES = 3


@dataclass(frozen=True)
class Taint:
    """Concrete kinds plus symbolic parameter indices."""

    kinds: frozenset = frozenset()
    params: frozenset = frozenset()

    def __bool__(self) -> bool:
        return bool(self.kinds or self.params)

    def union(self, other: "Taint") -> "Taint":
        if not other:
            return self
        if not self:
            return other
        return Taint(self.kinds | other.kinds, self.params | other.params)


EMPTY = Taint()


def _union(taints: list) -> Taint:
    result = EMPTY
    for taint in taints:
        result = result.union(taint)
    return result


#: One sink a parameter reaches: (sink_id, rejected kinds, message).
SinkEntry = tuple


@dataclass
class Summary:
    """What callers need to know about one function."""

    returns_kinds: set = field(default_factory=set)
    param_to_return: set = field(default_factory=set)
    #: param index -> set of :data:`SinkEntry`.
    param_sinks: dict = field(default_factory=dict)
    #: param index -> attribute names it is stored into.
    param_to_attr: dict = field(default_factory=dict)

    def snapshot(self) -> tuple:
        return (
            frozenset(self.returns_kinds),
            frozenset(self.param_to_return),
            frozenset(
                (k, frozenset(v)) for k, v in self.param_sinks.items()
            ),
            frozenset(
                (k, frozenset(v)) for k, v in self.param_to_attr.items()
            ),
        )


def receiver_names(node: ast.AST) -> list:
    """Identifiers in a receiver chain (``self._aead`` → ``["_aead",
    "self"]``); subscripts and calls are looked through."""
    names: list = []
    while True:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
            node = node.value
        elif isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            names.append(node.id)
            return names
        else:
            return names


def _root_name(node: ast.AST) -> str | None:
    names = receiver_names(node)
    return names[-1] if names else None


class _Analyzer:
    """Walks one function: summary updates and (optionally) findings."""

    def __init__(
        self,
        graph: CallGraph,
        registry: TaintRegistry,
        summaries: dict,
        attr_taint: dict,
        module: ModuleInfo,
        info: FunctionInfo,
        report: bool = False,
    ) -> None:
        self.graph = graph
        self.registry = registry
        self.summaries = summaries
        self.attr_taint = attr_taint
        self.module = module
        self.info = info
        self.report = report
        self.findings: list = []
        self.summary: Summary = summaries[info.qualname]
        self.env: dict = {}
        self._name_source_kinds = {
            s.name: s.kind for s in registry.name_sources
        }
        self._param_source_kinds: dict = {}
        for source in registry.param_sources:
            if source.qualname == info.qualname:
                self._param_source_kinds[source.param] = source.kind
        self._declassified = registry.declassified()
        self._init_env()

    def _init_env(self) -> None:
        for index, name in enumerate(self.info.params):
            kinds = set()
            if name in self._param_source_kinds:
                kinds.add(self._param_source_kinds[name])
            if name in self._name_source_kinds:
                kinds.add(self._name_source_kinds[name])
            self.env[name] = Taint(frozenset(kinds), frozenset({index}))

    # -- driving -----------------------------------------------------------

    def run(self) -> None:
        for _ in range(BODY_PASSES):
            before = dict(self.env)
            for stmt in self.info.node.body:
                self.exec_stmt(stmt)
            if self.env == before:
                break

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _join_env(left: dict, right: dict) -> dict:
        """Pointwise union of two environments (branch join)."""
        joined = dict(left)
        for name, taint in right.items():
            joined[name] = joined.get(name, EMPTY).union(taint)
        return joined

    def _name_source(self, name: str) -> Taint:
        kind = self._name_source_kinds.get(name)
        if kind is None:
            return EMPTY
        return Taint(kinds=frozenset({kind}))

    def _record_param_sink(self, taint: Taint, entries: set) -> None:
        """Symbolic taint reaching a sink → entries on *our* summary."""
        for param in taint.params:
            bucket = self.summary.param_sinks.setdefault(param, set())
            bucket.update(entries)

    def _emit(self, sink_id: str, kinds: set, node: ast.AST,
              message: str, origin: str) -> None:
        # Exemptions match the file the *sink itself* lives in (e.g. a
        # raise inside ``policy/``), not the crossing call site — the
        # waiver travels with the sink, wherever it is reached from.
        live = {
            kind
            for kind in kinds
            if not self.registry.exempted(sink_id, origin, kind)
        }
        if not live:
            return
        rule = f"taint/{sink_id}"
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                rule=rule,
                message=f"{'/'.join(sorted(live))} taint: {message}",
                file=self.module.rel_path,
                line=line,
                severity="error",
                context={"kinds": sorted(live), "sink": sink_id},
            )
        )

    def _check_sink(self, sink_id: str, sink_kinds: frozenset,
                    taint: Taint, node: ast.AST, message: str,
                    origin: str | None = None,
                    via: str | None = None) -> None:
        """Concrete taint fires a finding; symbolic extends the summary."""
        if origin is None:
            origin = self.module.rel_path
        # A justification pragma at the crossing site waives the whole
        # flow: no finding here, and no symbolic entry either — callers
        # feeding this function must not re-surface a waived sink.
        allowed = suppressed_rules(
            self.module.source_lines, getattr(node, "lineno", 0)
        )
        if f"taint/{sink_id}" in allowed or "taint" in allowed:
            return
        hit = taint.kinds & sink_kinds
        if hit and self.report:
            shown = message if via is None else f"{message} (via {via}())"
            self._emit(sink_id, set(hit), node, shown, origin)
        if taint.params:
            self._record_param_sink(
                taint, {(sink_id, sink_kinds, message, origin)}
            )

    # -- expressions -------------------------------------------------------

    def tx(self, node: ast.AST | None) -> Taint:
        if node is None or isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY).union(
                self._name_source(node.id)
            )
        if isinstance(node, ast.Attribute):
            # Attribute taint is *scoped*: ``self.x`` consults the
            # enclosing class's bucket (cross-method state), any
            # ``obj.x`` consults the flow-sensitive local composite
            # key (``obj.x`` assigned earlier in this function), and a
            # field whose name is itself a key-material name source
            # (``private_key``, ...) is tainted wherever it is read.
            # Foreign-object stores are deliberately *not* propagated
            # package-wide: an anonymous ``*.result`` bucket would
            # alias the enclave syscall shuttle's decrypted results
            # onto every unrelated ``.result`` load in the package.
            kinds: set = set()
            taint = EMPTY
            if isinstance(node.value, ast.Name):
                if (
                    node.value.id in ("self", "cls")
                    and self.info.class_name
                ):
                    kinds.update(
                        self.attr_taint.get(
                            f"{self.info.class_name}.{node.attr}", ()
                        )
                    )
                taint = self.env.get(
                    f"{node.value.id}.{node.attr}", EMPTY
                )
            source = self._name_source_kinds.get(node.attr)
            if source is not None:
                kinds.add(source)
            return taint.union(Taint(kinds=frozenset(kinds)))
        if isinstance(node, ast.Call):
            return self.tx_call(node)
        if isinstance(node, ast.Subscript):
            return self.tx(node.value)
        if isinstance(node, (ast.Starred, ast.Await, ast.NamedExpr)):
            if isinstance(node, ast.NamedExpr):
                taint = self.tx(node.value)
                self.bind(node.target, taint)
                return taint
            return self.tx(node.value)
        if isinstance(node, ast.JoinedStr):
            return _union([self.tx(value) for value in node.values])
        if isinstance(node, ast.FormattedValue):
            return self.tx(node.value)
        if isinstance(node, ast.BinOp):
            return self.tx(node.left).union(self.tx(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.tx(node.operand)
        if isinstance(node, ast.BoolOp):
            return _union([self.tx(value) for value in node.values])
        if isinstance(node, ast.Compare):
            # Comparisons yield decisions, not content: implicit flows
            # are out of scope by design.
            self.tx(node.left)
            for comparator in node.comparators:
                self.tx(comparator)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self.tx(node.test)
            return self.tx(node.body).union(self.tx(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _union([self.tx(elt) for elt in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self.tx(key) for key in node.keys if key is not None]
            parts.extend(self.tx(value) for value in node.values)
            return _union(parts)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                self.bind(gen.target, self.tx(gen.iter))
            return self.tx(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self.bind(gen.target, self.tx(gen.iter))
            return self.tx(node.key).union(self.tx(node.value))
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, (ast.Slice,)):
            return EMPTY
        return EMPTY

    # -- calls -------------------------------------------------------------

    def _call_name(self, call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    def tx_call(self, call: ast.Call) -> Taint:
        name = self._call_name(call)
        arg_taints = [self.tx(arg) for arg in call.args]
        kwarg_taints = {
            kw.arg: self.tx(kw.value) for kw in call.keywords
        }
        receiver = EMPTY
        chain: list = []
        if isinstance(call.func, ast.Attribute):
            receiver = self.tx(call.func.value)
            chain = receiver_names(call.func.value)
        elif isinstance(call.func, ast.Name):
            chain = []
        else:
            receiver = self.tx(call.func)

        all_args = _union(arg_taints + list(kwarg_taints.values()))

        # Registry sinks that match on call shape.
        self._check_call_sinks(call, name, chain, arg_taints, kwarg_taints)

        # Sanitizers and size-like builtins produce clean values.
        if name in self.registry.sanitizers:
            return EMPTY
        if isinstance(call.func, ast.Name) and (
            name in self.registry.clean_builtins
        ):
            return EMPTY

        source_kinds: set = set()
        for source in self.registry.call_sources:
            if source.method != name:
                continue
            if source.receiver_hints and not (
                source.receiver_hints.intersection(chain)
            ):
                continue
            source_kinds.add(source.kind)
        if source_kinds:
            # A matched source defines the output taint
            # authoritatively: ``aead.open(ciphertext)`` yields
            # *plaintext* — neither the ciphertext argument nor the
            # key-holding AEAD receiver bleeds into the result.
            return Taint(kinds=frozenset(source_kinds))

        result = EMPTY
        targets = self.graph.resolve_call(call, self.info.class_name)
        if not targets:
            # Unresolved: conservatively propagate everything in.
            return result.union(all_args).union(receiver)

        for target in targets:
            summary = self.summaries.get(target.qualname)
            if summary is None:
                continue
            declassified = target.qualname in self._declassified
            if not declassified:
                result = result.union(
                    Taint(kinds=frozenset(summary.returns_kinds))
                )
            pairs = self._map_args(call, target, arg_taints, kwarg_taints)
            if isinstance(call.func, ast.Attribute) and target.is_method:
                pairs.append((0, receiver, call.func))
            for index, taint, node in pairs:
                if not taint:
                    continue
                if index in summary.param_to_return and not declassified:
                    result = result.union(taint)
                entries = summary.param_sinks.get(index)
                if entries:
                    for sink_id, sink_kinds, message, origin in sorted(
                        entries, key=lambda e: (e[0], e[2])
                    ):
                        # Propagated entries keep the *base* message
                        # (the summary must reach a fixpoint); the
                        # immediate callee is named only in the
                        # reported finding.  The finding anchors to
                        # the crossing *call* so a justification
                        # pragma sits on (or above) the call line.
                        self._check_sink(
                            sink_id, sink_kinds, taint, call, message,
                            origin=origin,
                            via=target.qualname,
                        )
                attrs = summary.param_to_attr.get(index)
                if attrs:
                    for attr in attrs:
                        self._store_attr(attr, taint)
        return result

    def _map_args(
        self,
        call: ast.Call,
        target: FunctionInfo,
        arg_taints: list,
        kwarg_taints: dict,
    ) -> list:
        """``(param_index, taint, node)`` for each argument."""
        offset = 0
        if target.params and target.params[0] in ("self", "cls"):
            offset = 1
        pairs: list = []
        for position, taint in enumerate(arg_taints):
            index = position + offset
            if index < len(target.params):
                pairs.append((index, taint, call.args[position]))
        for kw in call.keywords:
            if kw.arg is None:
                continue
            index = target.param_index(kw.arg)
            if index is not None:
                pairs.append((index, kwarg_taints[kw.arg], kw.value))
        return pairs

    def _check_call_sinks(
        self,
        call: ast.Call,
        name: str,
        chain: list,
        arg_taints: list,
        kwarg_taints: dict,
    ) -> None:
        for sink in self.registry.call_sinks:
            if sink.method != name:
                continue
            if sink.receiver_hints and not (
                sink.receiver_hints.intersection(chain)
            ):
                continue
            for position, taint in enumerate(arg_taints):
                self._check_sink(
                    sink.sink_id, sink.kinds, taint,
                    call.args[position], sink.message,
                )
            for kw in call.keywords:
                key = kw.arg
                taint = (
                    kwarg_taints[key] if key is not None else self.tx(kw.value)
                )
                self._check_sink(
                    sink.sink_id, sink.kinds, taint, kw.value, sink.message
                )
        for sink in self.registry.kwarg_sinks:
            if sink.callee != name:
                continue
            for kw in call.keywords:
                if kw.arg != sink.kwarg:
                    continue
                self._check_sink(
                    sink.sink_id, sink.kinds, kwarg_taints[kw.arg],
                    kw.value, sink.message,
                )

    # -- stores ------------------------------------------------------------

    def _attr_key(self, target: ast.Attribute) -> str:
        if (
            isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and self.info.class_name
        ):
            return f"{self.info.class_name}.{target.attr}"
        return f"*.{target.attr}"

    def _store_attr(self, scoped: str, taint: Taint) -> None:
        """Record a store into attribute ``scoped`` (a pre-scoped key:
        ``Class.attr`` or ``*.attr``)."""
        if taint.kinds:
            bucket = self.attr_taint.setdefault(scoped, set())
            bucket.update(taint.kinds)
        for param in taint.params:
            attrs = self.summary.param_to_attr.setdefault(param, set())
            attrs.add(scoped)

    def bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, taint)
        elif isinstance(target, ast.Attribute):
            self._store_attr(self._attr_key(target), taint)
            if isinstance(target.value, ast.Name):
                # Flow-sensitive composite key: a later load of
                # ``obj.attr`` *in this function* sees this store.
                self.env[f"{target.value.id}.{target.attr}"] = taint
        elif isinstance(target, ast.Subscript):
            # Storing into a container taints the whole container.
            root = _root_name(target.value)
            if root is not None:
                self.env[root] = self.env.get(root, EMPTY).union(taint)

    # -- statements --------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.tx(stmt.value)
            for target in stmt.targets:
                self.bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.tx(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.tx(stmt.value).union(self.tx(stmt.target))
            self.bind(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            taint = self.tx(stmt.value)
            self.summary.returns_kinds.update(taint.kinds)
            self.summary.param_to_return.update(taint.params)
        elif isinstance(stmt, ast.Raise):
            self._exec_raise(stmt)
        elif isinstance(stmt, ast.Expr):
            self.tx(stmt.value)
        elif isinstance(stmt, ast.If):
            # Branch *join*: either branch may execute, so the
            # post-state is the pointwise union of both — a strong
            # update in ``else`` must not erase taint assigned in the
            # ``if`` body (the store's per-replica decrypt does exactly
            # this: ``value = self._open(...)`` vs ``value = blob``).
            self.tx(stmt.test)
            base = dict(self.env)
            for inner in stmt.body:
                self.exec_stmt(inner)
            after_body = self.env
            self.env = base
            for inner in stmt.orelse:
                self.exec_stmt(inner)
            self.env = self._join_env(after_body, self.env)
        elif isinstance(stmt, ast.While):
            self.tx(stmt.test)
            base = dict(self.env)
            for inner in stmt.body:
                self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
            # Zero iterations are possible: join with the pre-state.
            self.env = self._join_env(base, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            base = dict(self.env)
            self.bind(stmt.target, self.tx(stmt.iter))
            for inner in stmt.body:
                self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
            self.env = self._join_env(base, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.tx(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, taint)
            for inner in stmt.body:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body:
                self.exec_stmt(inner)
            # Handlers run (or not) from some prefix of the body; join
            # each handler's post-state instead of strongly updating.
            after_body = dict(self.env)
            merged = dict(self.env)
            for handler in stmt.handlers:
                self.env = dict(after_body)
                for inner in handler.body:
                    self.exec_stmt(inner)
                merged = self._join_env(merged, self.env)
            self.env = merged
            for inner in stmt.orelse:
                self.exec_stmt(inner)
            for inner in stmt.finalbody:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.Assert):
            self.tx(stmt.test)
            if stmt.msg is not None:
                self._check_sink(
                    SINK_EXCEPTION, BOTH, self.tx(stmt.msg), stmt.msg,
                    "secret value in an assertion message",
                )
        elif isinstance(stmt, ast.Delete):
            pass
        # Nested function/class definitions are not descended into:
        # their bodies run in a different frame the summary machinery
        # does not model.

    def _exec_raise(self, stmt: ast.Raise) -> None:
        exc = stmt.exc
        if exc is None:
            return
        if isinstance(exc, ast.Call):
            taint = _union(
                [self.tx(arg) for arg in exc.args]
                + [self.tx(kw.value) for kw in exc.keywords]
            )
            node: ast.AST = exc
        else:
            taint = self.tx(exc)
            node = exc
        self._check_sink(
            SINK_EXCEPTION, BOTH, taint, node,
            "secret value embedded in an exception message",
        )


# ---------------------------------------------------------------------------
# Package driver
# ---------------------------------------------------------------------------

def _seed_summaries(
    graph: CallGraph, registry: TaintRegistry
) -> dict:
    summaries: dict = {}
    for _module, info in graph.all_functions():
        summaries[info.qualname] = Summary()
    for sink in registry.param_sinks:
        info = graph.by_qualname.get(sink.qualname)
        if info is None:
            continue
        summary = summaries[info.qualname]
        if sink.param == "*":
            indices = [
                index
                for index, name in enumerate(info.params)
                if name not in ("self", "cls")
            ]
        else:
            index = info.param_index(sink.param)
            indices = [index] if index is not None else []
        for index in indices:
            bucket = summary.param_sinks.setdefault(index, set())
            bucket.add(
                (sink.sink_id, sink.kinds, sink.message, info.rel_path)
            )
    return summaries


def analyze_package(
    root: Path, registry: TaintRegistry = DEFAULT_REGISTRY
) -> list:
    """Taint-analyze every module under ``root`` (the ``repro``
    package); returns pragma-filtered findings."""
    graph = build_callgraph(root, excluded=registry.excluded_paths)
    summaries = _seed_summaries(graph, registry)
    attr_taint: dict = {}

    for _ in range(MAX_GLOBAL_PASSES):
        before = {
            qualname: summary.snapshot()
            for qualname, summary in summaries.items()
        }
        attrs_before = {
            attr: frozenset(kinds) for attr, kinds in attr_taint.items()
        }
        for module, info in graph.all_functions():
            _Analyzer(
                graph, registry, summaries, attr_taint, module, info
            ).run()
        after = {
            qualname: summary.snapshot()
            for qualname, summary in summaries.items()
        }
        attrs_after = {
            attr: frozenset(kinds) for attr, kinds in attr_taint.items()
        }
        if before == after and attrs_before == attrs_after:
            break

    findings: list = []
    seen: set = set()
    for module, info in graph.all_functions():
        analyzer = _Analyzer(
            graph, registry, summaries, attr_taint, module, info,
            report=True,
        )
        analyzer.run()
        for finding in analyzer.findings:
            allowed = suppressed_rules(
                module.source_lines, finding.line
            )
            if finding.rule in allowed or "taint" in allowed:
                continue
            key = (finding.rule, finding.file, finding.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)
    return findings


__all__ = [
    "EMPTY",
    "MAX_GLOBAL_PASSES",
    "Summary",
    "Taint",
    "analyze_package",
    "receiver_names",
]
