"""The common finding model shared by every analyzer.

A :class:`Finding` is one reportable defect: a rule identifier (stable,
documented in ``docs/static-analysis.md``), a human message, and an
optional source location.  Analyzers return lists of findings; the CLI
(:mod:`repro.analysis.__main__`) aggregates, renders, and decides the
exit code.

Suppression: a source line carrying ``# pesos: allow[rule-id]`` (on the
flagged line or the line directly above it) silences lint findings for
that rule at that location.  The pragma is deliberately explicit — an
auditor greps for ``pesos: allow`` and reviews every exemption.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

#: Severity levels, most severe first (sort key for reports).
SEVERITIES = ("error", "warning")

_PRAGMA = re.compile(r"#\s*pesos:\s*allow\[([a-z0-9/_-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One defect reported by an analyzer."""

    rule: str
    message: str
    file: str = ""
    line: int = 0
    severity: str = "error"
    #: Free-form structured context (clause index, lock cycle, ...).
    context: dict = field(default_factory=dict, compare=False)

    def location(self) -> str:
        if self.file and self.line:
            return f"{self.file}:{self.line}"
        return self.file or "<policy>"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }


def suppressed_rules(source_lines: list[str], line: int) -> set[str]:
    """Rules allowed at 1-based ``line`` via ``# pesos: allow[...]``."""
    allowed: set[str] = set()
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(source_lines):
            allowed.update(_PRAGMA.findall(source_lines[candidate - 1]))
    return allowed


def sort_findings(findings: list[Finding]) -> list[Finding]:
    order = {name: rank for rank, name in enumerate(SEVERITIES)}
    return sorted(
        findings,
        key=lambda f: (order.get(f.severity, len(order)), f.file, f.line, f.rule),
    )


# ---------------------------------------------------------------------------
# Rendering (CLI + CI job summary)
# ---------------------------------------------------------------------------

def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "no findings"
    lines = [
        f"{f.location()}: {f.severity}[{f.rule}] {f.message}"
        for f in sort_findings(findings)
    ]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json_report(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in sort_findings(findings)],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


def render_markdown(findings: list[Finding]) -> str:
    """GitHub-flavoured markdown for the CI job summary."""
    if not findings:
        return "### Static analysis\n\nNo findings. :white_check_mark:\n"
    lines = [
        "### Static analysis",
        "",
        f"**{len(findings)} finding(s)**",
        "",
        "| Severity | Rule | Location | Message |",
        "| --- | --- | --- | --- |",
    ]
    for f in sort_findings(findings):
        message = f.message.replace("|", "\\|")
        lines.append(
            f"| {f.severity} | `{f.rule}` | `{f.location()}` | {message} |"
        )
    lines.append("")
    return "\n".join(lines)
