"""Eraser-style lockset race detection over a shadow-state event stream.

Classic Eraser (Savage et al., SOSP '97), adapted to the cooperative
engine: for every shared field the detector tracks a state machine —
*virgin* (never touched), *exclusive* (one thread only), *shared*
(read by several threads), *shared-modified* (written by several) —
and a *candidate lockset*: the set of locks every accessor has held on
every access since the field became shared.  A field that reaches
shared-modified with an empty candidate lockset has no lock that
consistently protects it; some interleaving can interleave two writes.

This is stronger than observing a corrupted run: the engine's seeded
schedules may never actually hit the bad interleaving, but an empty
lockset proves one exists.  Which is the point of running it inside
the schedule-exploration harness — every explored interleaving is also
checked for races the *other* interleavings would expose.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.findings import Finding
from repro.analysis.sanitizer import replay_locksets

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


class _FieldState:
    __slots__ = ("state", "owner", "candidates", "writers", "readers")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner: int | None = None
        #: None until the field goes shared.
        self.candidates: set | None = None
        self.writers: set = set()
        self.readers: set = set()


def _field_label(field: Any) -> str:
    if isinstance(field, bytes):
        try:
            return field.decode()
        except UnicodeDecodeError:
            return repr(field)
    return str(field)


def find_races(events: list[tuple]) -> list[Finding]:
    """Replay a shadow-state event stream; one finding per racy field."""
    fields: dict[Any, _FieldState] = {}
    findings: list[Finding] = []
    reported: set[Any] = set()

    for event, held in replay_locksets(events):
        if event[0] != "access":
            continue
        _, tid, field, kind = event
        write = kind == "w"
        state = fields.setdefault(field, _FieldState())
        (state.writers if write else state.readers).add(tid)
        lockset = set(held.get(tid, ()))

        if state.state == VIRGIN:
            # Candidate refinement starts at the *first* access: a
            # first writer under lock A and a second under disjoint
            # lock B must intersect to the empty set.
            state.state = EXCLUSIVE
            state.owner = tid
            state.candidates = lockset
            continue
        assert state.candidates is not None
        state.candidates &= lockset
        if state.state == EXCLUSIVE:
            if tid == state.owner:
                continue
            # Second thread: the field is genuinely shared from here on.
            state.state = SHARED_MODIFIED if write else SHARED
        elif write:
            state.state = SHARED_MODIFIED

        if (
            state.state == SHARED_MODIFIED
            and not state.candidates
            and field not in reported
        ):
            reported.add(field)
            findings.append(
                Finding(
                    rule="race/lockset",
                    message=(
                        f"shared field {_field_label(field)!r} is written "
                        f"by threads {sorted(state.writers)} with an empty "
                        "candidate lockset (no lock consistently protects "
                        "it; a data race is possible under some schedule)"
                    ),
                    context={
                        "field": _field_label(field),
                        "writers": sorted(state.writers),
                        "readers": sorted(state.readers),
                    },
                )
            )
    return findings
