"""Arrival-rate curves and the open-loop arrival integrator.

A curve maps virtual time to an instantaneous offered rate (requests
per virtual second); :func:`generate_arrivals` integrates it into a
deterministic arrival-time sequence by stepping ``t += 1 / rate(t)``.
No randomness is involved in *when* requests arrive — jittered
arrivals would change shed decisions between runs and break the
byte-reproducibility contract the replay traces carry.  Randomness
(which key, read vs write) lives in the scenario's seeded RNG.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ycsb.distributions import ScrambledZipfianGenerator


@dataclass(frozen=True)
class SteadyCurve:
    """Constant offered rate — the control series."""

    rate_per_second: float
    name: str = "steady"

    def rate(self, _t: float) -> float:
        return self.rate_per_second


@dataclass(frozen=True)
class DiurnalCurve:
    """Sinusoidal day/night breathing around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2 pi t / period))`` — the
    classic diurnal shape scaled down to bench horizons.  Amplitude
    must stay below 1 so the rate never reaches zero (the integrator
    would stall).
    """

    base_rate: float
    amplitude: float = 0.5
    period: float = 60.0
    name: str = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ConfigurationError("diurnal period must be positive")

    def rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )


@dataclass(frozen=True)
class FlashCrowdCurve:
    """Step function: steady baseline, then a viral-link spike.

    Between ``start`` and ``start + duration`` the offered rate jumps
    to ``peak_rate`` (typically several multiples of capacity), then
    falls back.  The admission layer's job is to keep goodput through
    the storm near the steady-state ceiling.
    """

    base_rate: float
    peak_rate: float
    start: float
    duration: float
    name: str = "flash"

    def __post_init__(self) -> None:
        if self.peak_rate < self.base_rate:
            raise ConfigurationError("flash peak must be >= base rate")
        if self.duration <= 0:
            raise ConfigurationError("flash duration must be positive")

    def rate(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.peak_rate
        return self.base_rate

    def in_storm(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


def generate_arrivals(
    curve,
    horizon: float,
    max_events: int | None = None,
) -> list[float]:
    """Integrate ``curve`` into arrival times over ``[0, horizon)``.

    Deterministic: same curve, same horizon, same arrivals.  The step
    is the instantaneous inter-arrival gap ``1 / rate(t)``, clamped so
    a mis-specified near-zero rate cannot loop forever.
    """
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    arrivals: list[float] = []
    t = 0.0
    while t < horizon:
        if max_events is not None and len(arrivals) >= max_events:
            break
        arrivals.append(t)
        rate = curve.rate(t)
        if rate <= 0:
            raise ConfigurationError(
                f"curve {getattr(curve, 'name', '?')} rate hit {rate} at t={t}"
            )
        t += min(1.0 / rate, horizon)
    return arrivals


class HotKeyStorm:
    """Key chooser whose zipfian focus tightens during a storm.

    Outside the storm window keys follow the usual scrambled-zipfian
    popularity spread.  Inside it, a ``hot_fraction`` share of choices
    collapses onto a tiny hot set (``hot_keys`` distinct keys) — the
    "everyone opens the same object" shape that stresses per-key locks
    and the object cache rather than aggregate throughput.
    """

    def __init__(
        self,
        record_count: int,
        seed: int,
        storm_start: float,
        storm_duration: float,
        hot_keys: int = 4,
        hot_fraction: float = 0.9,
    ):
        if hot_keys < 1 or hot_keys > record_count:
            raise ConfigurationError("hot_keys must be in [1, record_count]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")
        self.record_count = record_count
        self.storm_start = storm_start
        self.storm_duration = storm_duration
        self.hot_fraction = hot_fraction
        self._rng = random.Random(seed)
        self._zipf = ScrambledZipfianGenerator(record_count, self._rng)
        # The hot set is a fixed, seed-determined handful of keys.
        self._hot = [
            self._rng.randrange(record_count) for _ in range(hot_keys)
        ]
        self.storm_choices = 0

    def in_storm(self, t: float) -> bool:
        return (
            self.storm_start <= t < self.storm_start + self.storm_duration
        )

    def next(self, t: float) -> int:
        """Key index for an arrival at virtual time ``t``."""
        if self.in_storm(t) and self._rng.random() < self.hot_fraction:
            self.storm_choices += 1
            return self._hot[self._rng.randrange(len(self._hot))]
        return self._zipf.next()
