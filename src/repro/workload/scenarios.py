"""Drive a real controller through one arrival curve, open loop.

The loop is the overload sweep's virtual-time simulation
(:mod:`repro.bench.overload`) generalised from a constant offered rate
to an arbitrary :mod:`arrival curve <repro.workload.arrival>`: clients
do not slow down when the server does, queued state drags on enclave
capacity (EPC pressure), and the admission controller sheds with its
seeded PRF.  Every run is deterministic — the arrival times are a pure
function of the curve, the op mix and keys come from one seeded RNG,
and the result carries a SHA over the full completion + admission
decision record, so two same-seed runs match byte for byte.

On top of the overload loop this adds what an SRE would actually read
off the dashboard: per-class p99 virtual-time latency (``get/p1`` vs
``put/p2``), shed rate, and the live SLO engine's burn/worst-state at
the end of the run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.bench.concurrency import ConcurrencyConfig, build_concurrency_system
from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.request import Request
from repro.telemetry import Telemetry
from repro.telemetry.slo import classify


def _base_system() -> ConcurrencyConfig:
    return ConcurrencyConfig(
        name="workload", record_count=32, operations=0, seed=17
    )


@dataclass
class ScenarioConfig:
    """Knobs shared by every scenario (the curve is passed separately)."""

    name: str = "scenario"
    base: ConcurrencyConfig = field(default_factory=_base_system)
    read_fraction: float = 0.55
    #: Fraction of operations issued as short range scans (workload-E
    #: flavoured traffic mixed into the stream).
    scan_fraction: float = 0.1
    scan_count: int = 8
    clients: int = 16
    seed: int = 17
    queue_depth: int = 48
    max_queue_delay_rounds: float = 8.0
    latency_target_rounds: float = 16.0
    round_services: float = 8.0
    overload_drag: float = 0.004
    max_rounds: int = 400_000
    #: Cap on generated arrivals (keeps pathological curves bounded).
    max_operations: int = 4096


@dataclass
class ScenarioResult:
    """Headline numbers for one (curve, seed) run."""

    name: str
    curve: str
    operations: int
    served: int
    ok: int
    shed_by_status: dict
    shed_rate: float
    duration: float
    goodput: float
    p99_by_class: dict
    mean_latency: float
    peak_queue_depth: int
    final_limit: int
    acked_writes: int
    acked_writes_lost: int
    worst_slo_state: str
    max_burn_rate: float
    trace_sha: str
    #: Virtual completion times of successful responses, for windowed
    #: goodput (e.g. goodput *during* a flash-crowd storm).
    ok_times: list = field(default_factory=list)

    def goodput_in(self, start: float, end: float) -> float:
        """Successful responses per virtual second inside a window."""
        if end <= start:
            return 0.0
        count = sum(1 for t in self.ok_times if start <= t < end)
        return count / (end - start)

    def row(self) -> dict:
        return {
            "scenario": self.name,
            "curve": self.curve,
            "goodput": round(self.goodput, 1),
            "shed_rate": round(self.shed_rate, 4),
            "p99_ms": {
                cls: round(v * 1e3, 3)
                for cls, v in sorted(self.p99_by_class.items())
            },
            "slo": self.worst_slo_state,
            "burn": round(self.max_burn_rate, 3),
            "acked_writes_lost": self.acked_writes_lost,
            "trace_sha": self.trace_sha,
        }


def _p99(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(0.99 * (len(ordered) - 1))]


def make_scenario_workload(
    config: ScenarioConfig,
    arrivals: list[float],
    key_chooser=None,
) -> list[tuple[Request, str]]:
    """Deterministic (request, fingerprint) stream, one per arrival.

    ``key_chooser`` (e.g. :class:`~repro.workload.arrival.HotKeyStorm`)
    maps an arrival time to a key index; the default is seeded uniform
    choice over the preloaded records.
    """
    rng = random.Random(config.seed)
    payload = bytes(
        rng.randrange(256) for _ in range(config.base.value_size)
    )
    workload = []
    scan_threshold = config.read_fraction + config.scan_fraction
    for index, t in enumerate(arrivals):
        if key_chooser is not None:
            key_index = key_chooser.next(t)
        else:
            key_index = rng.randrange(config.base.record_count)
        key = f"c-{key_index:05d}"
        fingerprint = f"fp-wl-{index % config.clients}"
        dice = rng.random()
        if dice < config.read_fraction:
            request = Request(method="get", key=key)
        elif dice < scan_threshold:
            request = Request(
                method="scan", key=key, scan_count=config.scan_count
            )
        else:
            request = Request(method="put", key=key, value=payload)
        workload.append((request, fingerprint))
    return workload


def run_scenario(
    config: ScenarioConfig,
    curve,
    capacity: float,
    horizon: float,
    key_chooser=None,
    telemetry: Telemetry | None = None,
) -> ScenarioResult:
    """Open-loop run of ``curve`` against a fresh controller stack."""
    from repro.workload.arrival import generate_arrivals

    arrivals = generate_arrivals(
        curve, horizon, max_events=config.max_operations
    )
    workload = make_scenario_workload(config, arrivals, key_chooser)
    if telemetry is None:
        telemetry = Telemetry()
    if telemetry.enabled and telemetry.slo is None:
        telemetry.attach_slo()
    controller = build_concurrency_system(config.base, telemetry=telemetry)
    telemetry = controller.telemetry
    service = 1.0 / capacity
    round_s = config.round_services * service
    admission = AdmissionController(
        AdmissionConfig(
            queue_depth=config.queue_depth,
            max_queue_delay=config.max_queue_delay_rounds * round_s,
            latency_target=config.latency_target_rounds * round_s,
            max_limit=int(2 * config.round_services),
            seed=config.seed,
        ),
        sessions=controller.sessions,
        telemetry=telemetry,
    )

    vnow = 0.0
    next_arrival = 0
    outcomes = served = ok = 0
    shed_by_status: dict[int, int] = {}
    ok_times: list[float] = []
    latencies: list[float] = []
    class_latencies: dict[str, list[float]] = {}
    completions: list[tuple] = []
    acked: dict[str, bytes] = {}
    carry = 0.0
    if telemetry.enabled:
        telemetry.tracer.set_virtual_clock(lambda: vnow)

    def shed(token: int, decision) -> None:
        nonlocal outcomes
        request, _fingerprint = workload[token]
        response = decision.to_response()
        shed_by_status[response.status] = (
            shed_by_status.get(response.status, 0) + 1
        )
        completions.append((token, "shed", response.status))
        outcomes += 1
        telemetry.record_request(
            request.method, False, max(0.0, vnow - arrivals[token]), vnow
        )

    def serve(token: int) -> None:
        nonlocal outcomes, served, ok
        request, fingerprint = workload[token]
        response = controller.handle(request, fingerprint, vnow)
        served += 1
        outcomes += 1
        if response.ok:
            ok += 1
            ok_times.append(vnow)
            if request.method == "put":
                acked[request.key] = request.value
        latency = vnow - arrivals[token]
        latencies.append(latency)
        class_latencies.setdefault(
            classify(request.method), []
        ).append(latency)
        completions.append((token, request.method, response.status))
        telemetry.record_request(request.method, response.ok, latency, vnow)

    for _ in range(config.max_rounds):
        if outcomes >= len(workload):
            break
        vnow += round_s
        while next_arrival < len(workload) and arrivals[next_arrival] <= vnow:
            token = next_arrival
            next_arrival += 1
            request, fingerprint = workload[token]
            decision = admission.offer(
                token, request, fingerprint, now=vnow, vnow=arrivals[token]
            )
            if not decision.admitted:
                shed(token, decision)
        queue_depth = len(admission.queue)
        effective = capacity / (1.0 + config.overload_drag * queue_depth)
        carry = min(carry + effective * round_s, 2.0 * config.round_services)
        budget = int(carry)
        before = len(latencies)
        width = min(budget, admission.limiter.limit)
        for token in admission.dispatch(vnow, max(0, width)):
            serve(token)
            carry -= 1.0
        for token, decision in admission.take_shed():
            shed(token, decision)
        fresh = latencies[before:]
        if fresh:
            admission.observe(sum(fresh) / len(fresh))
    else:
        raise RuntimeError(f"scenario {config.name} did not converge")

    lost = 0
    for key in sorted(acked):
        response = controller.handle(
            Request(method="get", key=key), "fp-verify", vnow
        )
        if not response.ok or response.value != acked[key]:
            lost += 1

    shed_total = sum(shed_by_status.values())
    duration = max(vnow, arrivals[-1]) if arrivals else vnow
    record = ["|".join(str(part) for part in entry) for entry in completions]
    record.append("--admission--")
    record.extend(admission.trace_lines())
    max_burn = 0.0
    worst = "healthy"
    if telemetry.slo is not None:
        worst = telemetry.slo.worst_state(vnow)
        for objective in telemetry.slo.objectives:
            if objective.events:
                max_burn = max(
                    max_burn,
                    objective.burn_rate(vnow, objective.spec.fast),
                )
    return ScenarioResult(
        name=config.name,
        curve=getattr(curve, "name", "custom"),
        operations=len(workload),
        served=served,
        ok=ok,
        shed_by_status=shed_by_status,
        shed_rate=shed_total / len(workload) if workload else 0.0,
        duration=duration,
        goodput=ok / duration if duration else 0.0,
        p99_by_class={
            cls: _p99(values) for cls, values in class_latencies.items()
        },
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        peak_queue_depth=admission.queue.peak_depth,
        final_limit=admission.limiter.limit,
        acked_writes=len(acked),
        acked_writes_lost=lost,
        worst_slo_state=worst,
        max_burn_rate=max_burn,
        trace_sha=hashlib.sha256("\n".join(record).encode()).hexdigest()[:16],
        ok_times=ok_times,
    )
